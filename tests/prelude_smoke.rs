//! Facade smoke test: everything a new user touches in the first five
//! minutes must work through `rmon::prelude` alone — the real-thread
//! runtime with a background checker, the deterministic simulator with
//! an injected fault, and the taxonomy metadata.

use rmon::prelude::*;
use std::time::Duration;

/// Clean end-to-end run on the real-thread substrate: runtime, bounded
/// buffer, periodic checker — and a clean bill of health.
#[test]
fn runtime_checker_clean_roundtrip() {
    let rt = Runtime::new(DetectorConfig::default());
    let buf = BoundedBuffer::new(&rt, "mailbox", 8);
    let checker = CheckerHandle::spawn(&rt, Duration::from_millis(5));

    let tx = buf.clone();
    let producer = std::thread::spawn(move || -> Result<(), MonitorError> {
        for i in 0..200u64 {
            tx.send(i)?;
        }
        Ok(())
    });
    let rx = buf.clone();
    let consumer = std::thread::spawn(move || -> Result<u64, MonitorError> {
        let mut sum = 0;
        for _ in 0..200 {
            sum += rx.receive()?.expect("correct buffer never yields holes");
        }
        Ok(sum)
    });

    producer.join().expect("producer thread").expect("sends succeed");
    let sum = consumer.join().expect("consumer thread").expect("receives succeed");
    assert_eq!(sum, (0..200).sum::<u64>());

    checker.stop();
    let report = rt.checkpoint_now();
    assert!(rt.is_clean() && report.is_clean(), "clean workload must stay clean");
    assert!(rt.events_recorded() > 0, "the recorder must have seen the traffic");
}

/// One detection on the real-thread substrate: a procedure-level bug
/// (receive proceeds although the buffer is empty) must be flagged.
#[test]
fn runtime_detects_injected_buffer_bug() {
    let rt = Runtime::new(DetectorConfig::without_timeouts());
    let buf = BoundedBuffer::<u32>::with_bug(&rt, "broken", 4, BufferBug::MissingReceiveDelay, 0);
    let hole = buf.receive().expect("the buggy call itself succeeds");
    assert!(hole.is_none(), "an empty buffer has nothing to deliver");
    let report = rt.checkpoint_now();
    assert!(!report.is_clean(), "the empty-receive must be detected");
}

/// One detection on the simulator substrate: an injected lost process
/// is caught by the entry-snapshot / timeout rules.
#[test]
fn sim_detects_injected_lost_process() {
    let mut b = SimBuilder::new();
    let buf = b.bounded_buffer("mailbox", 2);
    b.inject(InjectionPlan::once(FaultKind::EnterProcessLost, buf));
    b.process("prod", Script::builder().repeat(5, |s| s.send(buf)).build());
    b.process("cons", Script::builder().repeat(5, |s| s.receive(buf)).build());
    let mut sim = b.build().expect("valid scenario");

    let out = run_with_detection(&mut sim, DetectorConfig::default());
    assert!(
        out.combined.violates_any(&[RuleId::St1EntrySnapshot, RuleId::St6EntryTimeout]),
        "lost process must trip ST-1 or ST-6: {}",
        out.combined
    );
}

/// The clean counterpart on the simulator, via a prelude workload type.
#[test]
fn sim_workload_stays_clean() {
    let w = PcWorkload::randomized(42);
    let (mut sim, _) = w.build_sim(SimConfig::random_seeded(42));
    let out = run_with_detection(&mut sim, DetectorConfig::without_timeouts());
    assert!(out.finished, "balanced workload must finish");
    assert!(out.is_clean(), "balanced workload must stay clean: {}", out.combined);
}

/// Taxonomy metadata reaches through the facade.
#[test]
fn taxonomy_is_complete() {
    let classes = taxonomy();
    assert_eq!(classes.len(), 21, "the paper's taxonomy has 21 fault classes");
    assert!(classes.iter().all(|info| !info.detected_by.is_empty()));
}
