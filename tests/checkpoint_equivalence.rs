//! Checkpoint equivalence: the acceptance property of the
//! `SnapshotProvider` + first-class checkpoint API.
//!
//! For identical traces, the violation set produced by **backend-routed
//! checkpoints** — the scoped [`DetectionBackend::checkpoint`] driven
//! per shard through a registered snapshot provider, with no
//! caller-drained window — must match the seed synchronous path (the
//! explicit-window [`DetectionBackend::checkpoint_window`] /
//! `Runtime::checkpoint_now` barrier), on every backend: inline,
//! sharded at 1·2·4 shards, and scheduled. Where the snapshots come
//! from and which scope triggers the check changes nothing about *what*
//! is detected — including the ST-7a–d resource-consistency checks on a
//! communication-coordinator fleet.

use rmon::prelude::*;
use rmon::workloads::sweep::{
    allocator_fleet_trace, drive_fleet_backend, drive_fleet_checkpointed, FleetTrace,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn cfg() -> DetectorConfig {
    // strict_specs exercises the registration-time lint gate on every
    // backend: equivalence must hold with the gate armed.
    DetectorConfig { strict_specs: true, ..DetectorConfig::without_timeouts() }
}

/// The backends whose scoped checkpoints are under test, with the shard
/// count their `CheckpointScope::Shard` sweeps cover. The scheduled
/// backends use an hour-long tick so their background sweeps never race
/// the explicit per-shard checkpoints the driver issues — determinism
/// of the background-sweep path itself is covered by the scheduler's
/// own unit tests.
fn scoped_backends() -> Vec<(String, Box<dyn DetectionBackend>, usize)> {
    let mut out: Vec<(String, Box<dyn DetectionBackend>, usize)> =
        vec![("inline".into(), Box::new(InlineBackend::new(cfg())), 1)];
    for shards in SHARD_COUNTS {
        out.push((
            format!("sharded-{shards}"),
            Box::new(ShardedBackend::new(cfg(), ServiceConfig::new(shards)).with_batch(7)),
            shards,
        ));
        out.push((
            format!("scheduled-{shards}"),
            Box::new(
                ScheduledBackend::new(
                    cfg(),
                    ServiceConfig::new(shards),
                    SchedulerConfig::new(Duration::from_secs(3600)),
                )
                .with_batch(7),
            ),
            shards,
        ));
    }
    out
}

/// Per-monitor, order-sensitive violation signature (detection times
/// excluded — wall clock differs across runs by construction).
type Signature = BTreeMap<MonitorId, Vec<(Option<u64>, RuleId, Option<Pid>)>>;

fn signature(violations: &[Violation]) -> Signature {
    let mut sorted = violations.to_vec();
    sorted.sort_by_key(|v| (v.monitor, v.event_seq, v.rule, v.pid));
    let mut sig: Signature = BTreeMap::new();
    for v in &sorted {
        sig.entry(v.monitor).or_default().push((v.event_seq, v.rule, v.pid));
    }
    sig
}

/// Reference verdict: the seed synchronous path — one inline backend,
/// events ingested then checkpointed with the explicitly supplied
/// window and snapshot map.
fn window_reference(fleet: &FleetTrace) -> Signature {
    let backend = InlineBackend::new(cfg());
    let (report, _, _) = drive_fleet_backend(fleet, &backend);
    backend.shutdown();
    signature(&report.violations)
}

#[test]
fn faulty_allocator_fleet_matches_the_synchronous_path() {
    let fleet = allocator_fleet_trace(12, 6, 5);
    let want = window_reference(&fleet);
    assert!(want.len() >= 8, "faults must spread across monitors: {} hit", want.len());
    for (name, backend, shards) in scoped_backends() {
        let (report, stats, _) = drive_fleet_checkpointed(&fleet, backend.as_ref(), shards);
        assert_eq!(signature(&report.violations), want, "{name}");
        assert_eq!(stats.total_events(), fleet.events.len() as u64, "{name}");
        backend.shutdown();
    }
}

/// A deterministic faulty **communication-coordinator** fleet: five
/// bounded buffers, each carrying one class of resource-state fault,
/// plus interleaved clean traffic. The snapshots are the states a
/// sound observer would report — including the tampered `R#` on the
/// St7-b monitor.
fn coordinator_fleet() -> (FleetTrace, rmon::core::spec::BoundedBufferSpec) {
    let bb = MonitorSpec::bounded_buffer("buf", 1);
    let spec = Arc::new(bb.spec.clone());
    let mut specs = HashMap::new();
    let mut snapshots = HashMap::new();
    let mut events = Vec::new();
    let mut seq = 0u64;
    let mut push = |events: &mut Vec<Event>, e: Event| {
        seq += 1;
        let mut e = e;
        e.seq = seq;
        e.time = Nanos::new(seq * 10);
        events.push(e);
    };
    let z = Nanos::ZERO;

    // m0 — ST-7a (r > s): a receive completes before any send.
    let m0 = MonitorId::new(0);
    push(&mut events, Event::enter(0, z, m0, Pid::new(1), bb.receive, true));
    push(&mut events, Event::signal_exit(0, z, m0, Pid::new(1), bb.receive, None, false));
    snapshots.insert(m0, MonitorState::with_resources(2, 1));

    // m1 — ST-7a (s > r + Rmax): two sends complete into capacity 1.
    let m1 = MonitorId::new(1);
    for _ in 0..2 {
        push(&mut events, Event::enter(0, z, m1, Pid::new(2), bb.send, true));
        push(&mut events, Event::signal_exit(0, z, m1, Pid::new(2), bb.send, None, false));
    }
    snapshots.insert(m1, MonitorState::with_resources(2, 0));

    // m2 — ST-7c: a sender is delayed on buffer_full while free
    // capacity exists (Resource-No = 1 ≠ 0).
    let m2 = MonitorId::new(2);
    push(&mut events, Event::enter(0, z, m2, Pid::new(3), bb.send, true));
    push(&mut events, Event::wait(0, z, m2, Pid::new(3), bb.send, bb.full_cond));
    let mut s2 = MonitorState::with_resources(2, 1);
    s2.cond_queues[bb.full_cond.as_usize()].push(rmon::core::PidProc::new(Pid::new(3), bb.send));
    snapshots.insert(m2, s2);

    // m3 — ST-7d: a send fills the buffer, then a receiver is delayed
    // on buffer_empty although the buffer is not empty.
    let m3 = MonitorId::new(3);
    push(&mut events, Event::enter(0, z, m3, Pid::new(4), bb.send, true));
    push(&mut events, Event::signal_exit(0, z, m3, Pid::new(4), bb.send, None, false));
    push(&mut events, Event::enter(0, z, m3, Pid::new(5), bb.receive, true));
    push(&mut events, Event::wait(0, z, m3, Pid::new(5), bb.receive, bb.empty_cond));
    let mut s3 = MonitorState::with_resources(2, 0);
    s3.cond_queues[bb.empty_cond.as_usize()]
        .push(rmon::core::PidProc::new(Pid::new(5), bb.receive));
    snapshots.insert(m3, s3);

    // m4 — ST-7b: a clean send/receive cycle, but the observed R# is
    // tampered (reads 0, truth is 1): the checkpoint count equation
    // must flag it.
    let m4 = MonitorId::new(4);
    push(&mut events, Event::enter(0, z, m4, Pid::new(6), bb.send, true));
    push(&mut events, Event::signal_exit(0, z, m4, Pid::new(6), bb.send, None, false));
    push(&mut events, Event::enter(0, z, m4, Pid::new(7), bb.receive, true));
    push(&mut events, Event::signal_exit(0, z, m4, Pid::new(7), bb.receive, None, false));
    snapshots.insert(m4, MonitorState::with_resources(2, 0));

    for id in 0..5u32 {
        specs.insert(MonitorId::new(id), Arc::clone(&spec));
    }
    let end_time = Nanos::new((seq + 1) * 10);
    (FleetTrace { specs, events, snapshots, end_time }, bb)
}

#[test]
fn coordinator_fleet_st7_checks_match_the_synchronous_path() {
    let (fleet, _) = coordinator_fleet();
    let want = window_reference(&fleet);
    // The reference itself must exercise the whole ST-7 family.
    let all_rules: Vec<RuleId> = want.values().flatten().map(|(_, rule, _)| *rule).collect();
    for rule in [
        RuleId::St7CountInvariant,
        RuleId::St7WaitSendBufferFull,
        RuleId::St7WaitReceiveBufferEmpty,
    ] {
        assert!(all_rules.contains(&rule), "fixture must trigger {rule:?}: {all_rules:?}");
    }
    for (name, backend, shards) in scoped_backends() {
        let (report, _, _) = drive_fleet_checkpointed(&fleet, backend.as_ref(), shards);
        assert_eq!(signature(&report.violations), want, "{name}");
        backend.shutdown();
    }
}

/// The real-thread flavor: the same deterministic single-thread faulty
/// script on identical runtimes, one checked through the synchronous
/// `checkpoint_now` barrier, the others through provider-backed scoped
/// checkpoints (`Runtime::checkpoint_scope`, per-shard and all-at-once)
/// on every backend.
#[test]
fn rt_scoped_checkpoints_match_checkpoint_now() {
    fn make(label: &str, shards: usize) -> Runtime {
        let b = Runtime::builder(cfg()).park_timeout(Duration::from_millis(500));
        match label {
            "inline" => b.build(),
            "sharded" => b
                .backend_with(move |cfg, _clock| {
                    Arc::new(ShardedBackend::new(cfg, ServiceConfig::new(shards)).with_batch(3))
                })
                .build(),
            "scheduled" => b
                .backend_with(move |cfg, clock| {
                    Arc::new(
                        ScheduledBackend::with_clock(
                            cfg,
                            ServiceConfig::new(shards),
                            SchedulerConfig::new(Duration::from_secs(3600)),
                            clock,
                        )
                        .with_batch(3),
                    )
                })
                .build(),
            _ => unreachable!(),
        }
    }
    fn drive(rt: &Runtime) {
        let allocators: Vec<_> =
            (0..6).map(|i| rmon::rt::ResourceAllocator::new(rt, &format!("r{i}"), 2)).collect();
        for _ in 0..3 {
            for al in &allocators {
                al.request().unwrap();
                let _ = al.request(); // U3: duplicate request
                al.release().unwrap();
                let _ = al.release(); // U1: release without request
            }
        }
    }
    fn keys(mut vs: Vec<Violation>) -> Vec<(MonitorId, Option<Pid>, Option<u64>, RuleId)> {
        vs.sort_by_key(|v| (v.monitor, v.pid, v.event_seq, v.rule));
        vs.into_iter().map(|v| (v.monitor, v.pid, v.event_seq, v.rule)).collect()
    }

    // Seed path: the synchronous suspend-drain-compare barrier.
    let sync_rt = make("inline", 1);
    drive(&sync_rt);
    let _ = sync_rt.checkpoint_now();
    let want = keys(sync_rt.all_violations());
    assert!(!want.is_empty(), "the script injects U1/U3 faults");

    for (label, shards) in
        [("inline", 1), ("sharded", 1), ("sharded", 2), ("sharded", 4), ("scheduled", 2)]
    {
        // Backend-routed: one all-scope checkpoint.
        let rt = make(label, shards);
        drive(&rt);
        let _ = rt.checkpoint_scope(CheckpointScope::All);
        assert_eq!(keys(rt.all_violations()), want, "{label}-{shards} (All)");

        // Backend-routed: per-shard sweeps union to the same verdict.
        let rt = make(label, shards);
        drive(&rt);
        for shard in 0..shards {
            let _ = rt.checkpoint_scope(CheckpointScope::Shard(shard));
        }
        assert_eq!(keys(rt.all_violations()), want, "{label}-{shards} (per-shard)");
    }
}
