//! End-to-end fault detection on real threads: every fault class the
//! rt substrate can realize is injected and must be detected by the
//! runtime's own recorder + checker pipeline (the sim substrate covers
//! the remaining classes in the coverage campaign).

use rmon::prelude::*;
use rmon::rt::RtFault;
use std::time::Duration;

fn rt_fast() -> Runtime {
    Runtime::builder(
        DetectorConfig::builder()
            .t_max(Nanos::from_millis(60))
            .t_io(Nanos::from_millis(60))
            .t_limit(Nanos::from_millis(60))
            .check_interval(Nanos::from_millis(20))
            .build(),
    )
    .park_timeout(Duration::from_millis(150))
    .build()
}

/// Drives one producer/consumer pair over `buf` with error tolerance
/// (injected faults starve threads; timeouts are expected).
fn drive(buf: &BoundedBuffer<u64>, items: u64) {
    let tx = buf.clone();
    let producer = std::thread::spawn(move || {
        for i in 0..items {
            if tx.send(i).is_err() {
                break;
            }
        }
    });
    let rx = buf.clone();
    let consumer = std::thread::spawn(move || {
        for _ in 0..items {
            if rx.receive().is_err() {
                break;
            }
        }
    });
    producer.join().expect("producer");
    consumer.join().expect("consumer");
}

fn detected_after_drive(fault: RtFault) -> Vec<RuleId> {
    let rt = rt_fast();
    let buf = BoundedBuffer::new(&rt, "buf", 1);
    buf.arm_fault(fault);
    drive(&buf, 50);
    std::thread::sleep(Duration::from_millis(80));
    let mut report = rt.checkpoint_now();
    for r in rt.reports() {
        report.merge(r);
    }
    let mut rules: Vec<RuleId> = report.violations.iter().map(|v| v.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn e1_grant_while_busy_detected() {
    let rules = detected_after_drive(RtFault::GrantWhileBusy);
    assert!(
        rules.contains(&RuleId::St3RunningUnique)
            || rules.contains(&RuleId::St3RunningAtMostOne)
            || rules.contains(&RuleId::St3RunningIsCaller),
        "{rules:?}"
    );
}

#[test]
fn e3_block_while_free_detected() {
    let rules = detected_after_drive(RtFault::BlockWhileFree);
    assert!(
        rules.contains(&RuleId::St3BlockedWhileFree) || rules.contains(&RuleId::St6EntryTimeout),
        "{rules:?}"
    );
}

#[test]
fn e4_skip_enter_event_detected() {
    let rules = detected_after_drive(RtFault::SkipEnterEvent);
    assert!(rules.contains(&RuleId::St3RunningIsCaller), "{rules:?}");
}

#[test]
fn w3_skip_handoff_on_wait_detected() {
    use rmon::core::{CondId, ProcName};
    use rmon::rt::Monitor;

    let rt = rt_fast();
    let spec = rmon::core::monitor_spec! {
        name: "m",
        class: OperationManager,
        procedures: { op: Plain },
        conditions: { c: Plain },
    };
    let mon: Monitor<()> = Monitor::new(&rt, spec, ());
    let op = ProcName::new(0);
    mon.arm_fault(RtFault::SkipHandoffOnWait);

    // A enters, then waits — with B already parked on the entry queue,
    // so the armed fault fires at an effective site.
    let m_a = mon.clone();
    let a = std::thread::spawn(move || {
        let mut g = m_a.enter(op).expect("A enters the free monitor");
        std::thread::sleep(Duration::from_millis(60));
        let _ = g.wait(CondId::new(0)); // skipped hand-off strands B; A times out
    });
    std::thread::sleep(Duration::from_millis(20));
    let m_b = mon.clone();
    let b = std::thread::spawn(move || {
        if let Ok(g) = m_b.enter(op) {
            g.signal_exit(None);
        }
    });
    // A waited at ~t60 and B was not admitted although the monitor is
    // free; checkpoint while B is still stranded on EQ.
    std::thread::sleep(Duration::from_millis(90));
    let report = rt.checkpoint_now();
    a.join().expect("A");
    b.join().expect("B");
    assert!(
        report.violates_any(&[
            RuleId::St1EntrySnapshot,
            RuleId::St2CondSnapshot,
            RuleId::St6EntryTimeout
        ]),
        "{report}"
    );
}

#[test]
fn w6_stick_lock_on_wait_detected() {
    let rules = detected_after_drive(RtFault::StickLockOnWait);
    assert!(
        rules.contains(&RuleId::St6EntryTimeout) || rules.contains(&RuleId::St1EntrySnapshot),
        "{rules:?}"
    );
}

#[test]
fn x1_skip_resume_on_exit_detected() {
    let rules = detected_after_drive(RtFault::SkipResumeOnExit);
    assert!(!rules.is_empty(), "{rules:?}");
}

#[test]
fn x2_stick_lock_on_exit_detected() {
    let rules = detected_after_drive(RtFault::StickLockOnExit);
    assert!(
        rules.contains(&RuleId::St6EntryTimeout) || rules.contains(&RuleId::St1EntrySnapshot),
        "{rules:?}"
    );
}

#[test]
fn t1_abandon_detected() {
    let rt = rt_fast();
    let cell = OperationCell::new(&rt, "cell", 0u64);
    cell.operate_and_die(|n| *n += 1).expect("first operation");
    let report = rt.checkpoint_now();
    assert!(report.violates_any(&[RuleId::St5InsideTimeout]), "{report}");
}

#[test]
fn clean_driven_buffer_stays_clean() {
    let rt = rt_fast();
    let buf = BoundedBuffer::new(&rt, "buf", 4);
    drive(&buf, 500);
    let report = rt.checkpoint_now();
    assert!(report.is_clean(), "{report}");
    assert!(rt.is_clean());
}

#[test]
fn readers_writers_with_faulty_client_detected() {
    let rt = rt_fast();
    let rw = ReadersWriters::new(&rt, "store");
    rw.read(|| ()).expect("read section");
    rw.faulty_end_read().expect("faulty call proceeds under Report");
    let vs = rt.realtime_violations();
    assert!(
        vs.iter()
            .any(|v| v.rule == RuleId::St8ReleaseWithoutRequest || v.rule == RuleId::St8CallOrder),
        "{vs:?}"
    );
}
