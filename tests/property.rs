//! Property-based tests (proptest) over the detector's core
//! guarantees:
//!
//! * **No false positives** — randomly shaped, randomly scheduled
//!   *correct* workloads never trigger a violation, on either
//!   substrate.
//! * **Path expressions** — the compiled NFA agrees with the
//!   independent backtracking matcher on random expressions and
//!   random call strings.
//! * **Conservation** — replaying any recorded clean trace through the
//!   checking lists preserves the process population (nobody is
//!   created or lost by the bookkeeping itself).
//! * **Vector-clock lattice laws** — `merge` is the least upper bound
//!   of the stamp lattice, and `le` is exactly the componentwise
//!   order.
//! * **Witness legality** — every violation the predictive pass emits
//!   carries a witness that is a legal linearization of the recorded
//!   happens-before partial order, on arbitrarily scheduled allocator
//!   windows; schedules without contention predict nothing.

use proptest::prelude::*;
use rmon::core::detect::predict::{is_legal_linearization, predict_window, Annotation};
use rmon::core::{DetectorConfig, GeneralLists, Nanos, PathExpr, VClock};
use rmon::prelude::*;
use rmon::workloads::sweep;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any balanced producer/consumer workload, any seed, any
    /// scheduling policy: the detector stays silent.
    #[test]
    fn no_false_positives_on_random_pc_workloads(seed in 0u64..5_000) {
        let w = PcWorkload::randomized(seed);
        let (mut sim, _) = w.build_sim(SimConfig::random_seeded(seed));
        let out = run_with_detection(&mut sim, DetectorConfig::without_timeouts());
        prop_assert!(out.finished, "balanced workload must finish (seed {seed})");
        prop_assert!(out.is_clean(), "seed {seed}: {}", out.combined);
    }

    /// Ordered dining philosophers never trip the detector either —
    /// a multi-monitor, allocator-class workload.
    #[test]
    fn no_false_positives_on_random_philosophers(
        seed in 0u64..5_000,
        seats in 2usize..6,
        meals in 1usize..4,
    ) {
        let w = Philosophers {
            seats,
            meals,
            eat: Nanos::from_micros(2),
            ordered: true,
        };
        let (mut sim, _) = w.build_sim(SimConfig::random_seeded(seed));
        let out = run_with_detection(&mut sim, DetectorConfig::without_timeouts());
        prop_assert!(out.finished);
        prop_assert!(out.is_clean(), "seed {seed}: {}", out.combined);
    }

    /// Replaying a clean trace never loses or invents processes: at
    /// every point the population of the checking lists equals the
    /// number of processes whose Enter has been seen minus those whose
    /// exits completed.
    #[test]
    fn checking_lists_conserve_population(seed in 0u64..1_000, items in 1usize..15) {
        let trace = sweep::pc_trace(items, seed);
        let mut lists = GeneralLists::new(trace.monitor, trace.spec.cond_count());
        let mut out = Vec::new();
        let mut inside: i64 = 0;
        for e in &trace.events {
            match e.kind {
                rmon::core::EventKind::Enter { .. } => inside += 1,
                rmon::core::EventKind::SignalExit { .. } => inside -= 1,
                _ => {}
            }
            lists.apply(&trace.spec, e, &mut out);
            let population = lists.enter_q().len()
                + lists.wait_cond().iter().map(|q| q.len()).sum::<usize>()
                + lists.running().len();
            prop_assert_eq!(population as i64, inside, "at event {}", e.seq);
        }
        prop_assert!(out.is_empty(), "clean trace produced {:?}", out);
        prop_assert_eq!(inside, 0);
    }
}

// ---------------------------------------------------------------------
// Path expressions: NFA vs. naive matcher
// ---------------------------------------------------------------------

/// A tiny generator of random path expressions over a fixed alphabet.
fn arb_path_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![Just("a".to_string()), Just("b".to_string()), Just("c".to_string())];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} ; {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} | {y})")),
            inner.clone().prop_map(|x| format!("({x})*")),
            inner.clone().prop_map(|x| format!("({x})+")),
            inner.prop_map(|x| format!("({x})?")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Thompson NFA and the independent backtracking matcher agree
    /// on every (expression, input) pair.
    #[test]
    fn nfa_agrees_with_naive_matcher(
        src in arb_path_expr(),
        input in proptest::collection::vec(0u16..3, 0..8),
    ) {
        let expr = PathExpr::parse(&src).expect("generated expressions parse");
        let spec = MonitorSpec::builder("m", MonitorClass::OperationManager)
            .procedure("a", rmon::core::ProcRole::Plain)
            .procedure("b", rmon::core::ProcRole::Plain)
            .procedure("c", rmon::core::ProcRole::Plain)
            .build();
        let compiled = expr.compile(|n| spec.proc_by_name(n)).expect("compiles");
        let procs: Vec<rmon::core::ProcName> =
            input.iter().map(|&i| rmon::core::ProcName::new(i)).collect();
        let names: Vec<&str> = input
            .iter()
            .map(|&i| ["a", "b", "c"][i as usize])
            .collect();
        prop_assert_eq!(
            compiled.accepts(&procs),
            expr.accepts_names(&names),
            "expr {} on {:?}",
            src,
            names
        );
    }

    /// A tracker never accepts a call its lookahead refused, and
    /// always accepts one it allowed.
    #[test]
    fn tracker_lookahead_is_consistent(
        src in arb_path_expr(),
        input in proptest::collection::vec(0u16..3, 0..8),
    ) {
        let expr = PathExpr::parse(&src).expect("parses");
        let spec = MonitorSpec::builder("m", MonitorClass::OperationManager)
            .procedure("a", rmon::core::ProcRole::Plain)
            .procedure("b", rmon::core::ProcRole::Plain)
            .procedure("c", rmon::core::ProcRole::Plain)
            .build();
        let compiled = expr.compile(|n| spec.proc_by_name(n)).expect("compiles");
        let mut tracker = compiled.tracker();
        for &i in &input {
            let p = rmon::core::ProcName::new(i);
            let allowed = tracker.allows(p);
            let advanced = tracker.advance(p).is_ok();
            prop_assert_eq!(allowed, advanced, "lookahead vs advance on {}", src);
            if !advanced {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Vector clocks: lattice laws
// ---------------------------------------------------------------------

/// Arbitrary *set, unsaturated* clocks: any owner slot, any counters.
fn arb_vclock() -> impl Strategy<Value = VClock> {
    (0usize..VClock::CAPACITY, proptest::collection::vec(0u32..1_000, 8..9)).prop_map(
        |(owner, slots)| {
            let slots: [u32; VClock::CAPACITY] = slots.try_into().expect("exactly 8 counters");
            VClock::from_parts(owner, slots)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `merge` is idempotent, commutative and associative on the
    /// counters (ownership is the receiver's identity, not part of the
    /// lattice value).
    #[test]
    fn vclock_merge_is_a_semilattice(
        a in arb_vclock(),
        b in arb_vclock(),
        c in arb_vclock(),
    ) {
        prop_assert_eq!(VClock::merged(&a, &a).raw_slots(), a.raw_slots());
        prop_assert_eq!(
            VClock::merged(&a, &b).raw_slots(),
            VClock::merged(&b, &a).raw_slots()
        );
        prop_assert_eq!(
            VClock::merged(&VClock::merged(&a, &b), &c).raw_slots(),
            VClock::merged(&a, &VClock::merged(&b, &c)).raw_slots()
        );
    }

    /// `merge` computes the least upper bound of `le`: an upper bound
    /// of both operands, and below every other common upper bound.
    #[test]
    fn vclock_merge_is_the_least_upper_bound(
        a in arb_vclock(),
        b in arb_vclock(),
        c in arb_vclock(),
    ) {
        let lub = VClock::merged(&a, &b);
        prop_assert!(a.le(&lub));
        prop_assert!(b.le(&lub));
        if a.le(&c) && b.le(&c) {
            prop_assert!(lub.le(&c));
        }
    }

    /// `le` is exactly the componentwise order, and `partial_cmp` is
    /// consistent with it in both directions.
    #[test]
    fn vclock_le_is_the_componentwise_order(a in arb_vclock(), b in arb_vclock()) {
        let componentwise =
            a.raw_slots().iter().zip(b.raw_slots().iter()).all(|(x, y)| x <= y);
        prop_assert_eq!(a.le(&b), componentwise);
        use std::cmp::Ordering;
        match a.partial_cmp(&b) {
            Some(Ordering::Equal) => prop_assert!(a.le(&b) && b.le(&a)),
            Some(Ordering::Less) => prop_assert!(a.le(&b) && !b.le(&a)),
            Some(Ordering::Greater) => prop_assert!(!a.le(&b) && b.le(&a)),
            None => {
                prop_assert!(!a.le(&b) && !b.le(&a));
                prop_assert!(a.concurrent_with(&b));
            }
        }
    }

    /// The degenerate elements behave as lattice constants: a fresh
    /// [`VClock::UNSET`] is the identity of `merge`, the saturated
    /// clock is absorbing (and stays sticky through ticks).
    #[test]
    fn vclock_degenerates_are_identity_and_top(a in arb_vclock()) {
        prop_assert_eq!(VClock::merged(&a, &VClock::UNSET).raw_slots(), a.raw_slots());
        prop_assert!(VClock::merged(&a, &VClock::saturated()).is_saturated());
        prop_assert!(VClock::merged(&VClock::saturated(), &a).is_saturated());
        let mut s = VClock::saturated();
        s.tick();
        s.merge(&a);
        prop_assert!(s.is_saturated());
    }
}

// ---------------------------------------------------------------------
// Predictive detection: witness legality on random schedules
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every prediction the pass emits on an arbitrarily interleaved
    /// allocator window — whatever the rule and whatever `Tlimit` —
    /// carries a witness that is a legal linearization of the recorded
    /// partial order.
    #[test]
    fn every_predicted_witness_is_a_legal_linearization(
        seed in any::<u64>(),
        procs in 2usize..5,
        cycles in 1usize..4,
        t_limit_steps in 1u64..40,
    ) {
        let (al, w) = sweep::seeded_allocator_schedule(procs, cycles, seed);
        let ann = Annotation::over_window(&w);
        let cfg = DetectorConfig::builder()
            .t_limit(Nanos::new(t_limit_steps * 10))
            .predict(rmon::core::PredictMode::Checkpoint)
            .build();
        let now = Nanos::new((w.len() as u64 + 1) * 10);
        let mut out = Vec::new();
        predict_window(MonitorId::new(0), &al.spec, &cfg, &w, &ann, now, &mut out);
        for p in &out {
            prop_assert!(
                is_legal_linearization(&p.witness, &w, &ann),
                "seed {}: illegal witness {:?} for {}",
                seed,
                p.witness,
                p.violation
            );
        }
        // The executed schedule is always a legal linearization too.
        let executed: Vec<u64> = w.iter().map(|e| e.seq).collect();
        prop_assert!(is_legal_linearization(&executed, &w, &ann));
    }

    /// Contention-free schedules (one process, or any schedule that
    /// happened to record no blocked entry attempt) admit exactly one
    /// linearization: the pass must predict nothing.
    #[test]
    fn contention_free_schedules_predict_nothing(
        seed in any::<u64>(),
        cycles in 1usize..5,
        t_limit_steps in 1u64..40,
    ) {
        let (al, w) = sweep::seeded_allocator_schedule(1, cycles, seed);
        prop_assert!(
            w.iter().all(|e| !matches!(e.kind, rmon::core::EventKind::Enter { granted: false }))
        );
        let ann = Annotation::over_window(&w);
        let cfg = DetectorConfig::builder()
            .t_limit(Nanos::new(t_limit_steps * 10))
            .predict(rmon::core::PredictMode::Checkpoint)
            .build();
        let now = Nanos::new((w.len() as u64 + 1) * 10);
        let mut out = Vec::new();
        predict_window(MonitorId::new(0), &al.spec, &cfg, &w, &ann, now, &mut out);
        prop_assert!(out.is_empty(), "seed {}: {:?}", seed, out);
    }
}
