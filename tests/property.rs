//! Property-based tests (proptest) over the detector's core
//! guarantees:
//!
//! * **No false positives** — randomly shaped, randomly scheduled
//!   *correct* workloads never trigger a violation, on either
//!   substrate.
//! * **Path expressions** — the compiled NFA agrees with the
//!   independent backtracking matcher on random expressions and
//!   random call strings.
//! * **Conservation** — replaying any recorded clean trace through the
//!   checking lists preserves the process population (nobody is
//!   created or lost by the bookkeeping itself).

use proptest::prelude::*;
use rmon::core::{DetectorConfig, GeneralLists, Nanos, PathExpr};
use rmon::prelude::*;
use rmon::workloads::sweep;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any balanced producer/consumer workload, any seed, any
    /// scheduling policy: the detector stays silent.
    #[test]
    fn no_false_positives_on_random_pc_workloads(seed in 0u64..5_000) {
        let w = PcWorkload::randomized(seed);
        let (mut sim, _) = w.build_sim(SimConfig::random_seeded(seed));
        let out = run_with_detection(&mut sim, DetectorConfig::without_timeouts());
        prop_assert!(out.finished, "balanced workload must finish (seed {seed})");
        prop_assert!(out.is_clean(), "seed {seed}: {}", out.combined);
    }

    /// Ordered dining philosophers never trip the detector either —
    /// a multi-monitor, allocator-class workload.
    #[test]
    fn no_false_positives_on_random_philosophers(
        seed in 0u64..5_000,
        seats in 2usize..6,
        meals in 1usize..4,
    ) {
        let w = Philosophers {
            seats,
            meals,
            eat: Nanos::from_micros(2),
            ordered: true,
        };
        let (mut sim, _) = w.build_sim(SimConfig::random_seeded(seed));
        let out = run_with_detection(&mut sim, DetectorConfig::without_timeouts());
        prop_assert!(out.finished);
        prop_assert!(out.is_clean(), "seed {seed}: {}", out.combined);
    }

    /// Replaying a clean trace never loses or invents processes: at
    /// every point the population of the checking lists equals the
    /// number of processes whose Enter has been seen minus those whose
    /// exits completed.
    #[test]
    fn checking_lists_conserve_population(seed in 0u64..1_000, items in 1usize..15) {
        let trace = sweep::pc_trace(items, seed);
        let mut lists = GeneralLists::new(trace.monitor, trace.spec.cond_count());
        let mut out = Vec::new();
        let mut inside: i64 = 0;
        for e in &trace.events {
            match e.kind {
                rmon::core::EventKind::Enter { .. } => inside += 1,
                rmon::core::EventKind::SignalExit { .. } => inside -= 1,
                _ => {}
            }
            lists.apply(&trace.spec, e, &mut out);
            let population = lists.enter_q().len()
                + lists.wait_cond().iter().map(|q| q.len()).sum::<usize>()
                + lists.running().len();
            prop_assert_eq!(population as i64, inside, "at event {}", e.seq);
        }
        prop_assert!(out.is_empty(), "clean trace produced {:?}", out);
        prop_assert_eq!(inside, 0);
    }
}

// ---------------------------------------------------------------------
// Path expressions: NFA vs. naive matcher
// ---------------------------------------------------------------------

/// A tiny generator of random path expressions over a fixed alphabet.
fn arb_path_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![Just("a".to_string()), Just("b".to_string()), Just("c".to_string())];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} ; {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} | {y})")),
            inner.clone().prop_map(|x| format!("({x})*")),
            inner.clone().prop_map(|x| format!("({x})+")),
            inner.prop_map(|x| format!("({x})?")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Thompson NFA and the independent backtracking matcher agree
    /// on every (expression, input) pair.
    #[test]
    fn nfa_agrees_with_naive_matcher(
        src in arb_path_expr(),
        input in proptest::collection::vec(0u16..3, 0..8),
    ) {
        let expr = PathExpr::parse(&src).expect("generated expressions parse");
        let spec = MonitorSpec::builder("m", MonitorClass::OperationManager)
            .procedure("a", rmon::core::ProcRole::Plain)
            .procedure("b", rmon::core::ProcRole::Plain)
            .procedure("c", rmon::core::ProcRole::Plain)
            .build();
        let compiled = expr.compile(|n| spec.proc_by_name(n)).expect("compiles");
        let procs: Vec<rmon::core::ProcName> =
            input.iter().map(|&i| rmon::core::ProcName::new(i)).collect();
        let names: Vec<&str> = input
            .iter()
            .map(|&i| ["a", "b", "c"][i as usize])
            .collect();
        prop_assert_eq!(
            compiled.accepts(&procs),
            expr.accepts_names(&names),
            "expr {} on {:?}",
            src,
            names
        );
    }

    /// A tracker never accepts a call its lookahead refused, and
    /// always accepts one it allowed.
    #[test]
    fn tracker_lookahead_is_consistent(
        src in arb_path_expr(),
        input in proptest::collection::vec(0u16..3, 0..8),
    ) {
        let expr = PathExpr::parse(&src).expect("parses");
        let spec = MonitorSpec::builder("m", MonitorClass::OperationManager)
            .procedure("a", rmon::core::ProcRole::Plain)
            .procedure("b", rmon::core::ProcRole::Plain)
            .procedure("c", rmon::core::ProcRole::Plain)
            .build();
        let compiled = expr.compile(|n| spec.proc_by_name(n)).expect("compiles");
        let mut tracker = compiled.tracker();
        for &i in &input {
            let p = rmon::core::ProcName::new(i);
            let allowed = tracker.allows(p);
            let advanced = tracker.advance(p).is_ok();
            prop_assert_eq!(allowed, advanced, "lookahead vs advance on {}", src);
            if !advanced {
                break;
            }
        }
    }
}
