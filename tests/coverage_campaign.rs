//! Integration form of EXP-COV: the 21-class fault-injection campaign
//! reproduces the paper's robustness result end to end.

use rmon::prelude::*;
use rmon::workloads::faultset;

#[test]
fn full_campaign_detects_every_injected_fault() {
    let rows = faultset::run_campaign(&[0, 1, 2]);
    assert_eq!(rows.len(), 21);
    for row in &rows {
        assert!(
            row.injected >= 1,
            "{}: the perturbation never became eligible in any seed",
            row.fault.code()
        );
        assert_eq!(
            row.detected,
            row.injected,
            "{}: {} injected but only {} detected (rules seen: {:?})",
            row.fault.code(),
            row.injected,
            row.detected,
            row.rules
        );
    }
}

#[test]
fn campaign_rules_match_taxonomy_levels() {
    // Every user-process fault must have fired at least one ST-8 rule;
    // every procedure-level fault at least one ST-7 rule.
    let rows = faultset::run_campaign(&[0]);
    for row in rows {
        match row.fault.level() {
            FaultLevel::UserProcess => {
                assert!(
                    row.rules.iter().any(|r| r.code().starts_with("ST-8")),
                    "{}: {:?}",
                    row.fault.code(),
                    row.rules
                );
            }
            FaultLevel::MonitorProcedure => {
                assert!(
                    row.rules.iter().any(|r| r.code().starts_with("ST-7")),
                    "{}: {:?}",
                    row.fault.code(),
                    row.rules
                );
            }
            FaultLevel::Implementation => {
                assert!(!row.rules.is_empty());
            }
        }
    }
}

#[test]
fn primary_rule_mapping_holds_under_engineered_schedule() {
    // Under the engineered round-robin interleaving, each fault's
    // documented primary rules (DESIGN.md table) actually fire.
    for fault in FaultKind::ALL {
        let outcome = faultset::run_case(fault, 0);
        assert!(
            outcome.primary_rule_hit,
            "{}: primary rules {:?} not among fired {:?}",
            fault.code(),
            fault.detected_by(),
            outcome.rules_hit
        );
    }
}
