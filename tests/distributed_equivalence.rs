//! Distributed ≡ single-process: the central claim of `rmon-net`.
//!
//! A fleet trace driven through N remote workers into one
//! `DetectionService` must produce exactly the verdicts a
//! single-process run over the same trace produces — under clean,
//! partitioned, reordered and duplicated delivery, for both the inline
//! and the sharded service backend. Verdicts are compared by canonical
//! identity (monitor, pid, event seq, rule); detection timestamps are
//! wall-dependent in a distributed run and excluded.
//!
//! The last test is the degradation half of the contract: a worker
//! that stops answering is quarantined by the fleet checkpoint sweep
//! within its deadline — reported, not stalled on — while healthy
//! workers keep being checked.

use rmon::net::harness::ChaosConfig;
use rmon::net::{duplex, ServiceConfig as NetServiceConfig};
use rmon::net::{
    DetectionService, Msg, NodeClock, RemoteBackend, RemoteConfig, SessionTx, PROTO_VERSION,
};
use rmon::prelude::*;
use rmon::workloads::distributed::{drive_fleet_distributed, DistributedConfig};
use rmon::workloads::sweep::{allocator_fleet_trace, drive_fleet_backend, FleetTrace};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Key = (MonitorId, Option<u32>, Option<u64>, String);

/// Every backend in this suite runs with the registration-time lint
/// gate armed: distributed equivalence must hold under strict_specs.
fn strict_cfg() -> DetectorConfig {
    DetectorConfig { strict_specs: true, ..DetectorConfig::without_timeouts() }
}

/// Canonical verdict identity, order- and duplicate-insensitive.
fn keys(vs: &[Violation]) -> Vec<Key> {
    let mut out: Vec<Key> = vs
        .iter()
        .map(|v| (v.monitor, v.pid.map(|p| p.index()), v.event_seq, format!("{:?}", v.rule)))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The single-process ground truth: every verdict (real-time,
/// checkpoint, predicted) from one inline run over the trace.
fn reference_keys(fleet: &FleetTrace) -> Vec<Key> {
    let backend = InlineBackend::new(strict_cfg());
    let (report, _, _) = drive_fleet_backend(fleet, &backend);
    let mut all = report.violations.clone();
    all.extend(report.predicted.iter().map(|p| p.violation.clone()));
    all.extend(backend.drain_violations());
    assert!(!all.is_empty(), "the trace must contain faults for the comparison to mean anything");
    keys(&all)
}

/// Both service-side backends every scenario must hold for.
fn service_backends() -> Vec<(&'static str, Arc<dyn DetectionBackend>)> {
    let cfg = strict_cfg();
    vec![
        ("inline", Arc::new(InlineBackend::new(cfg))),
        ("sharded", Arc::new(ShardedBackend::new(cfg, ServiceConfig::new(2)))),
    ]
}

fn assert_equivalent(fleet: &FleetTrace, cfg: &DistributedConfig, scenario: &str) {
    let expected = reference_keys(fleet);
    for (label, backend) in service_backends() {
        let outcome = drive_fleet_distributed(fleet, backend, cfg);
        assert_eq!(
            keys(&outcome.verdicts),
            expected,
            "distributed verdicts diverged from the single-process reference \
             (scenario: {scenario}, service backend: {label})"
        );
        assert!(outcome.quarantined.is_empty(), "{scenario}/{label}: healthy run quarantined");
        for session in &outcome.sessions {
            assert!(session.alive, "{scenario}/{label}: healthy worker marked dead");
        }
    }
}

#[test]
fn clean_delivery_matches_single_process() {
    let fleet = allocator_fleet_trace(8, 6, 2);
    assert_equivalent(&fleet, &DistributedConfig::default(), "clean, 2 workers");
    assert_equivalent(
        &fleet,
        &DistributedConfig { workers: 3, batch: 5, ..DistributedConfig::default() },
        "clean, 3 workers, small batches",
    );
}

#[test]
fn partitioned_delivery_matches_single_process() {
    let fleet = allocator_fleet_trace(6, 8, 3);
    let n = fleet.events.len();
    let cfg = DistributedConfig {
        partition_window: Some((n / 3, 2 * n / 3)),
        ..DistributedConfig::default()
    };
    assert_equivalent(&fleet, &cfg, "mid-stream partition + heal");
}

#[test]
fn reordered_and_duplicated_delivery_matches_single_process() {
    let fleet = allocator_fleet_trace(6, 8, 4);
    let cfg = DistributedConfig {
        chaos: Some(ChaosConfig {
            seed: 11,
            hold_per_mille: 300,
            dup_per_mille: 200,
            reorder_window: 4,
        }),
        batch: 3, // small batches -> many frames -> many fault decisions
        ..DistributedConfig::default()
    };
    assert_equivalent(&fleet, &cfg, "reorder + duplicate");
}

#[test]
fn journaled_service_log_replays_equivalently() {
    // The durable half of the equivalence claim: a service teeing its
    // worker event frames into an oplog leaves a log from which a
    // fresh detector re-derives exactly the recorded verdicts — and
    // those verdicts are the single-process reference set.
    let fleet = allocator_fleet_trace(8, 6, 2);
    let expected = reference_keys(&fleet);
    let scenarios: Vec<(&str, DistributedConfig)> = vec![
        ("clean", DistributedConfig { workers: 2, ..DistributedConfig::default() }),
        (
            "chaotic",
            DistributedConfig {
                workers: 3,
                batch: 3,
                chaos: Some(ChaosConfig {
                    seed: 7,
                    hold_per_mille: 300,
                    dup_per_mille: 200,
                    reorder_window: 4,
                }),
                ..DistributedConfig::default()
            },
        ),
    ];
    for (scenario, mut cfg) in scenarios {
        let dir = std::env::temp_dir()
            .join(format!("rmon-dist-replay-{scenario}-{}", std::process::id()))
            .join(format!("{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sink = Arc::new(DurableSink::open(&dir, OplogConfig::default()).unwrap());
        cfg.journal = Some(Arc::clone(&sink));

        let backend = Arc::new(InlineBackend::new(strict_cfg()));
        let outcome = drive_fleet_distributed(&fleet, backend, &cfg);
        assert_eq!(keys(&outcome.verdicts), expected, "{scenario}: live run diverged");

        // Replay resolves the journaled global-id registrations by
        // declared monitor name, exactly like the service did —
        // capturing the global→name mapping on the way, so the
        // recorded verdicts can be translated back into the fleet
        // namespace for the reference comparison.
        let by_name: std::collections::HashMap<String, Arc<MonitorSpec>> =
            fleet.specs.values().map(|s| (s.name.clone(), Arc::clone(s))).collect();
        let registered = std::sync::Mutex::new(std::collections::HashMap::new());
        let resolve = |id: MonitorId, name: &str| {
            registered.lock().unwrap().insert(id, name.to_owned());
            by_name.get(name).cloned()
        };
        let (replayed, read) =
            replay_dir(&dir, OplogConfig::default().max_record_bytes, strict_cfg(), &resolve)
                .unwrap();
        assert!(!read.stopped_mid_log, "{scenario}: sealed segments must scan clean: {read:?}");
        assert!(replayed.matches(), "{scenario}: {:?}", replayed.mismatch());
        assert!(replayed.events_replayed > 0, "{scenario}: the log must hold the event stream");

        let fleet_id: std::collections::HashMap<&str, MonitorId> =
            fleet.specs.iter().map(|(&id, s)| (s.name.as_str(), id)).collect();
        let registered = registered.into_inner().unwrap();
        let mut recorded = replayed.recorded.clone();
        for v in &mut recorded {
            v.monitor = fleet_id[registered[&v.monitor].as_str()];
        }
        assert_eq!(
            keys(&recorded),
            expected,
            "{scenario}: journaled verdicts must be the single-process reference set"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn dead_worker_is_quarantined_without_stalling_healthy_workers() {
    for (label, backend) in service_backends() {
        let spec = Arc::new(MonitorSpec::allocator("res", 1).spec);
        let resolver_spec = Arc::clone(&spec);
        let service = DetectionService::new(
            backend,
            Arc::new(move |name: &str| (name == "res").then(|| Arc::clone(&resolver_spec))),
            NetServiceConfig { checkpoint_timeout: Duration::from_millis(200) },
        );

        // A live worker that answers checkpoint fan-outs...
        let (worker_end, service_end) = duplex(1024);
        service.attach(service_end);
        let live =
            RemoteBackend::connect(worker_end, RemoteConfig::named("live"), Nanos::ZERO).unwrap();
        live.register(MonitorId::new(0), Arc::clone(&spec), &spec.empty_state(), Nanos::ZERO);

        // ...and one that registers a monitor, then goes silent.
        let (silent_end, service_end) = duplex(1024);
        service.attach(service_end);
        let mut silent = SessionTx::new(silent_end.tx, NodeClock::new());
        silent
            .send(&Msg::Hello { proto: PROTO_VERSION, name: "silent".into() }, Nanos::ZERO)
            .unwrap();
        silent
            .send(
                &Msg::Register {
                    monitor: MonitorId::new(0),
                    name: "res".into(),
                    now: Nanos::ZERO,
                    initial: spec.empty_state(),
                },
                Nanos::ZERO,
            )
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while service.sessions().iter().map(|s| s.monitors).sum::<usize>() < 2 {
            assert!(Instant::now() < deadline, "registrations never arrived ({label})");
            std::thread::sleep(Duration::from_millis(1));
        }

        let started = Instant::now();
        let sweep = service.checkpoint_fleet(Nanos::new(1_000));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "{label}: the sweep must degrade on the dead worker, not stall"
        );
        assert_eq!(sweep.quarantined.len(), 1, "{label}: silent worker's monitor quarantined");
        assert_eq!(service.describe(sweep.quarantined[0]).unwrap().0, "silent");
        assert!(sweep.report.is_clean(), "{label}: the healthy worker was still checked");

        let sessions = service.sessions();
        assert!(sessions[0].alive, "{label}: healthy worker stays attached");
        assert!(!sessions[1].alive, "{label}: silent worker marked dead");

        live.shutdown();
        service.shutdown();
    }
}
