//! Backend equivalence: the acceptance property of the detection-API
//! redesign.
//!
//! [`InlineBackend`], [`ShardedBackend`], [`ScheduledBackend`] and
//! [`AsyncBackend`] (in every instrumentation mode, including mode
//! switches mid-run) must report the **same violation multiset,
//! order-sensitive per monitor**, on the `FleetTrace` workloads at
//! 1 / 2 / 4 shards — through a single producer handle and through
//! concurrent per-thread handles alike. Where the events run (inline
//! on the caller, on worker shards, under a background scheduler,
//! behind an asynchronous executor) and how hard the producer pushes
//! (blocking, fire-and-forget, bounded wait) change nothing about
//! *what* is detected.

use rmon::prelude::*;
use rmon::workloads::sweep::{
    allocator_fleet_trace, drive_fleet_backend, drive_fleet_multi, fleet_trace, FleetTrace,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn cfg() -> DetectorConfig {
    // strict_specs exercises the registration-time lint gate on every
    // backend: equivalence must hold with the gate armed.
    DetectorConfig { strict_specs: true, ..DetectorConfig::without_timeouts() }
}

fn cfg_with(mode: Mode) -> DetectorConfig {
    DetectorConfig { mode, ..cfg() }
}

/// The three instrumentation modes the async backend must be
/// equivalent under.
const MODES: [Mode; 3] = [Mode::Sync, Mode::Async, Mode::Hybrid(Nanos::from_micros(50))];

/// Every backend under test, paired with a diagnostic name. The batch
/// size is deliberately misaligned with the workloads' per-round event
/// counts so handle flush points drift relative to monitor boundaries.
fn backends() -> Vec<(String, Box<dyn DetectionBackend>)> {
    let mut out: Vec<(String, Box<dyn DetectionBackend>)> =
        vec![("inline".into(), Box::new(InlineBackend::new(cfg())))];
    for shards in SHARD_COUNTS {
        out.push((
            format!("sharded-{shards}"),
            Box::new(ShardedBackend::new(cfg(), ServiceConfig::new(shards)).with_batch(7)),
        ));
        out.push((
            format!("scheduled-{shards}"),
            Box::new(
                ScheduledBackend::new(
                    cfg(),
                    ServiceConfig::new(shards),
                    SchedulerConfig::new(Duration::from_millis(1)),
                )
                .with_batch(7),
            ),
        ));
        for mode in MODES {
            out.push((
                format!("async-{mode:?}-{shards}"),
                Box::new(
                    AsyncBackend::new(cfg_with(mode), ServiceConfig::new(shards)).with_batch(7),
                ),
            ));
        }
    }
    out
}

/// The per-monitor, order-sensitive violation signature of a drive:
/// for each monitor, its violations in event order (`event_seq` is the
/// monitor's FIFO position in the global stream). Two drives are
/// equivalent iff their signatures are equal.
type Signature = BTreeMap<MonitorId, Vec<(Option<u64>, RuleId, Option<Pid>)>>;

fn signature(report: &FaultReport) -> Signature {
    let mut sorted = report.violations.clone();
    sorted.sort_by_key(|v| (v.monitor, v.event_seq, v.rule, v.pid));
    let mut sig: Signature = BTreeMap::new();
    for v in &sorted {
        sig.entry(v.monitor).or_default().push((v.event_seq, v.rule, v.pid));
    }
    sig
}

#[test]
fn clean_fleet_is_clean_on_every_backend() {
    let fleet = fleet_trace(8, 3, 7);
    let mut events_checked = None;
    for (name, backend) in backends() {
        let (report, stats, _) = drive_fleet_backend(&fleet, backend.as_ref());
        assert!(report.is_clean(), "{name}: {report}");
        match events_checked {
            None => events_checked = Some(report.events_checked),
            Some(want) => assert_eq!(report.events_checked, want, "{name}"),
        }
        assert_eq!(stats.total_events(), fleet.events.len() as u64, "{name}");
        backend.shutdown();
    }
}

#[test]
fn faulty_fleet_signature_is_identical_across_backends() {
    let fleet = allocator_fleet_trace(12, 6, 5);
    let mut want: Option<Signature> = None;
    for (name, backend) in backends() {
        let (report, _, _) = drive_fleet_backend(&fleet, backend.as_ref());
        assert!(!report.is_clean(), "{name}: the fleet carries injected U1/U3 faults");
        let got = signature(&report);
        match &want {
            None => want = Some(got),
            Some(want) => assert_eq!(&got, want, "{name}"),
        }
        backend.shutdown();
    }
    let want = want.expect("at least one backend ran");
    assert!(want.len() >= 8, "faults must spread across monitors: {} hit", want.len());
}

#[test]
fn concurrent_producers_preserve_the_signature() {
    // The multi-producer front-end: N threads, each with its own
    // handle, monitor-partitioned streams, batches interleaving at the
    // shards. The per-monitor signature must equal the single-handle
    // inline drive.
    let fleet = allocator_fleet_trace(12, 6, 5);
    let inline = InlineBackend::new(cfg());
    let (want_report, _, _) = drive_fleet_backend(&fleet, &inline);
    let want = signature(&want_report);
    for shards in SHARD_COUNTS {
        for producers in [2usize, 4] {
            let backend = ShardedBackend::new(cfg(), ServiceConfig::new(shards)).with_batch(7);
            let (report, stats, _) = drive_fleet_multi(&fleet, &backend, producers);
            assert_eq!(signature(&report), want, "sharded shards={shards} producers={producers}");
            assert_eq!(stats.total_events(), fleet.events.len() as u64);
            backend.shutdown();
        }
        let backend = ScheduledBackend::new(
            cfg(),
            ServiceConfig::new(shards),
            SchedulerConfig::new(Duration::from_millis(1)),
        )
        .with_batch(7);
        let (report, _, _) = drive_fleet_multi(&fleet, &backend, 3);
        assert_eq!(signature(&report), want, "scheduled shards={shards} producers=3");
        backend.shutdown();
        for mode in MODES {
            let backend =
                AsyncBackend::new(cfg_with(mode), ServiceConfig::new(shards)).with_batch(7);
            let (report, stats, _) = drive_fleet_multi(&fleet, &backend, 3);
            assert_eq!(signature(&report), want, "async-{mode:?} shards={shards} producers=3");
            assert_eq!(stats.total_events(), fleet.events.len() as u64, "async-{mode:?}");
            backend.shutdown();
        }
    }
}

#[test]
fn mid_run_mode_switches_preserve_the_signature() {
    // The adaptive controller's claim, pinned directly: retuning a
    // monitor's instrumentation mode *while its stream is in flight*
    // changes only who waits, never what is detected. The whole fleet
    // is switched Async → Sync → Hybrid at the third points of the
    // stream, so every monitor crosses both transitions mid-window.
    let fleet = allocator_fleet_trace(12, 6, 5);
    let inline = InlineBackend::new(cfg());
    let (want_report, _, _) = drive_fleet_backend(&fleet, &inline);
    let want = signature(&want_report);
    for shards in SHARD_COUNTS {
        let backend =
            AsyncBackend::new(cfg_with(Mode::Async), ServiceConfig::new(shards)).with_batch(7);
        for (&id, spec) in &fleet.specs {
            backend.register_empty(id, Arc::clone(spec), Nanos::ZERO);
        }
        let mut producer = backend.producer();
        let n = fleet.events.len();
        for (i, event) in fleet.events.iter().enumerate() {
            if i == n / 3 {
                for &id in fleet.specs.keys() {
                    backend.set_mode(id, Mode::Sync);
                }
            } else if i == 2 * n / 3 {
                for &id in fleet.specs.keys() {
                    backend.set_mode(id, Mode::Hybrid(Nanos::from_micros(50)));
                }
            }
            producer.observe(*event);
        }
        producer.flush();
        let mut report = backend.checkpoint_window(fleet.end_time, &fleet.events, &fleet.snapshots);
        report.violations.extend(backend.drain_violations());
        assert_eq!(signature(&report), want, "shards={shards}");
        backend.shutdown();
    }
}

#[test]
fn clean_fleet_under_concurrent_producers_stays_clean() {
    let fleet: FleetTrace = fleet_trace(8, 3, 11);
    for shards in SHARD_COUNTS {
        let backend = ShardedBackend::new(cfg(), ServiceConfig::new(shards)).with_batch(32);
        let (report, _, _) = drive_fleet_multi(&fleet, &backend, 4);
        assert!(report.is_clean(), "shards={shards}: {report}");
        backend.shutdown();
    }
}

#[test]
fn trait_objects_share_one_driver_through_arc() {
    // The runtime-facing shape: Arc<dyn DetectionBackend> with handles
    // created from several threads at once.
    let fleet = allocator_fleet_trace(6, 4, 2);
    let inline = InlineBackend::new(cfg());
    let (want_report, _, _) = drive_fleet_backend(&fleet, &inline);
    let want = signature(&want_report);
    let backend: Arc<dyn DetectionBackend> =
        Arc::new(ShardedBackend::new(cfg(), ServiceConfig::new(2)).with_batch(5));
    let (report, _, _) = drive_fleet_multi(&fleet, backend.as_ref(), 3);
    assert_eq!(signature(&report), want);
    backend.shutdown();
}
