//! The seeded-schedule prediction campaign: the acceptance proof of
//! predictive detection over the happens-before partial order.
//!
//! Each seeded schedule below executes **clean** — Algorithms 1–3 and
//! every timer stay silent on the schedule as it ran — yet an
//! *equivalent reordering* (another legal linearization of the recorded
//! partial order) violates an ST rule. With
//! [`PredictMode::Checkpoint`] the detector must flag the hidden
//! violation and hand back a **witness** linearization, which the
//! campaign validates against the recorded partial order with
//! [`is_legal_linearization`]. Race-free control schedules (no blocked
//! entry attempt, hence a unique linearization) must predict nothing,
//! and prediction stays strictly opt-in: the default configuration
//! never runs it.
//!
//! The campaign runs at two levels: deterministic seeded windows driven
//! through `DetectionBackend::checkpoint_window` on every backend, and
//! a real-thread run on an rt [`Runtime`] whose recorder attaches the
//! vector clocks at segment publication.

use rmon::core::detect::predict::{is_legal_linearization, Annotation};
use rmon::core::oplog::Record;
use rmon::core::spec::AllocatorSpec;
use rmon::prelude::*;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const M: MonitorId = MonitorId::new(0);

/// Seeded schedule #1 — one unit, two processes, contended: P1
/// requests and releases; P2's entry attempt *blocks* while P1 is in
/// `release` (the window's only concurrency), then P2 acquires and
/// releases. Clean as executed; the blocked attempt commutes.
fn contended_schedule() -> (AllocatorSpec, Vec<Event>) {
    let al = MonitorSpec::allocator("res", 1);
    let p1 = Pid::new(1);
    let p2 = Pid::new(2);
    let t = Nanos::new;
    let w = vec![
        Event::enter(1, t(10), M, p1, al.request, true),
        Event::signal_exit(2, t(20), M, p1, al.request, None, false),
        Event::enter(3, t(30), M, p1, al.release, true),
        Event::enter(4, t(40), M, p2, al.request, false),
        Event::signal_exit(5, t(50), M, p1, al.release, Some(al.avail_cond), false),
        Event::signal_exit(6, t(60), M, p2, al.request, None, false),
        Event::enter(7, t(70), M, p2, al.release, true),
        Event::signal_exit(8, t(80), M, p2, al.release, None, false),
    ];
    (al, w)
}

/// Control schedule — the same calls without contention: P2 starts
/// after P1 fully finished and every entry is granted immediately, so
/// the recorded partial order is total and nothing commutes.
fn sequential_schedule() -> (AllocatorSpec, Vec<Event>) {
    let al = MonitorSpec::allocator("res", 1);
    let p1 = Pid::new(1);
    let p2 = Pid::new(2);
    let t = Nanos::new;
    let w = vec![
        Event::enter(1, t(10), M, p1, al.request, true),
        Event::signal_exit(2, t(20), M, p1, al.request, None, false),
        Event::enter(3, t(30), M, p1, al.release, true),
        Event::signal_exit(4, t(40), M, p1, al.release, None, false),
        Event::enter(5, t(50), M, p2, al.request, true),
        Event::signal_exit(6, t(60), M, p2, al.request, None, false),
        Event::enter(7, t(70), M, p2, al.release, true),
        Event::signal_exit(8, t(80), M, p2, al.release, None, false),
    ];
    (al, w)
}

/// Runs one seeded window through a backend's explicit-window
/// checkpoint, exactly as a synchronous barrier would.
fn run_window(backend: &dyn DetectionBackend, al: &AllocatorSpec, w: &[Event]) -> FaultReport {
    let conds = al.spec.cond_count();
    backend.register(
        M,
        Arc::new(al.spec.clone()),
        &MonitorState::with_resources(conds, 1),
        Nanos::ZERO,
    );
    let snapshots: HashMap<MonitorId, MonitorState> =
        [(M, MonitorState::with_resources(conds, 1))].into();
    backend.checkpoint_window(Nanos::new(90), w, &snapshots)
}

fn predict_cfg(t_limit: Nanos) -> DetectorConfig {
    DetectorConfig::builder()
        .t_max(Nanos::MAX)
        .t_io(Nanos::MAX)
        .t_limit(t_limit)
        .predict(PredictMode::Checkpoint)
        .build()
}

/// The executed contended schedule is clean, but commuting P2's blocked
/// request to the front of the window stretches its hold past `Tlimit`:
/// the checkpoint must predict the ST-8c violation with a legal
/// witness.
#[test]
fn hidden_hold_timeout_is_predicted_with_a_valid_witness() {
    let (al, w) = contended_schedule();
    // Executed holds are 40 ns each, under the 50 ns limit; the
    // feasible reordering holds for 70 ns.
    let backend = InlineBackend::new(predict_cfg(Nanos::new(50)));
    let report = run_window(&backend, &al, &w);
    assert!(report.violations.is_empty(), "executed run must be clean: {report}");
    assert!(report.has_predictions());

    let hold: Vec<&PredictedViolation> = report.predicted_by_rule(RuleId::St8HoldTimeout).collect();
    assert_eq!(hold.len(), 1, "{report}");
    assert_eq!(hold[0].violation.pid, Some(Pid::new(2)));
    assert_eq!(hold[0].violation.event_seq, Some(4), "the blocked request is the hold start");

    let ann = Annotation::over_window(&w);
    assert!(is_legal_linearization(&hold[0].witness, &w, &ann), "{:?}", hold[0].witness);
    assert_eq!(hold[0].witness[0], 4, "the witness schedules the blocked request first");
}

/// The same window under a lax `Tlimit`: the executed global call
/// sequence conforms to `path (request ; release)*`, but the blocked
/// request commutes before P1's release — `request · request` — and
/// the search must surface both feasible offenders, each with a legal
/// witness.
#[test]
fn hidden_call_order_violation_is_predicted_with_a_valid_witness() {
    let (al, w) = contended_schedule();
    let backend = InlineBackend::new(predict_cfg(Nanos::MAX));
    let report = run_window(&backend, &al, &w);
    assert!(report.violations.is_empty(), "executed run must be clean: {report}");

    let order: Vec<&PredictedViolation> = report.predicted_by_rule(RuleId::St8CallOrder).collect();
    let seqs: Vec<_> = order.iter().map(|p| p.violation.event_seq).collect();
    assert_eq!(seqs, vec![Some(1), Some(4)], "{report}");

    let ann = Annotation::over_window(&w);
    for p in &order {
        assert!(is_legal_linearization(&p.witness, &w, &ann), "{:?}", p.witness);
    }
    // The second witness realizes the commutation: the blocked request
    // (l4) overtakes P1's release call (l3).
    let witness = &order[1].witness;
    let pos = |s: u64| witness.iter().position(|&x| x == s).unwrap();
    assert!(pos(4) < pos(3), "{witness:?}");
}

/// Race-free control: the sequential schedule admits exactly one
/// linearization, so prediction must stay silent — both when the run
/// is entirely clean and when the *executed* schedule itself violates
/// (an executed violation is the real-time timer's finding and must
/// not be re-reported as a prediction).
#[test]
fn race_free_control_schedules_predict_nothing() {
    let (al, w) = sequential_schedule();

    // Entirely clean run.
    let backend = InlineBackend::new(predict_cfg(Nanos::new(50)));
    let report = run_window(&backend, &al, &w);
    assert!(report.violations.is_empty(), "{report}");
    assert!(!report.has_predictions(), "{report}");

    // A hold that is still open — and already over Tlimit — at
    // checkpoint time is the *executed* hold timer's finding, and
    // prediction must not re-report it.
    let held = &w[..2]; // P1 requested at t=10 and still holds at t=90.
    let backend = InlineBackend::new(predict_cfg(Nanos::new(15)));
    let conds = al.spec.cond_count();
    backend.register(
        M,
        Arc::new(al.spec.clone()),
        &MonitorState::with_resources(conds, 1),
        Nanos::ZERO,
    );
    let snapshots: HashMap<MonitorId, MonitorState> =
        [(M, MonitorState::with_resources(conds, 0))].into();
    let report = backend.checkpoint_window(Nanos::new(90), held, &snapshots);
    assert!(
        report.violations.iter().any(|v| v.rule == RuleId::St8HoldTimeout),
        "executed hold timer must fire: {report}"
    );
    assert!(!report.has_predictions(), "{report}");
}

/// Prediction is opt-in: the default configuration leaves it off, and
/// the contended schedule — which hides two predictable violations —
/// yields an empty predicted set.
#[test]
fn prediction_is_strictly_opt_in() {
    assert_eq!(DetectorConfig::default().predict, PredictMode::Off);
    let (al, w) = contended_schedule();
    let backend = InlineBackend::new(DetectorConfig::builder().t_limit(Nanos::new(50)).build());
    let report = run_window(&backend, &al, &w);
    assert!(report.violations.is_empty(), "{report}");
    assert!(!report.has_predictions(), "prediction must be off by default: {report}");
}

/// Every backend runs the same predictive pass: sharded and scheduled
/// checkpoints agree with the inline verdict on the seeded schedules.
#[test]
fn all_backends_agree_on_the_predicted_set() {
    type Signature = (RuleId, Option<Pid>, Option<u64>, Vec<u64>);
    fn signature(report: &FaultReport) -> Vec<Signature> {
        report
            .predicted
            .iter()
            .map(|p| (p.violation.rule, p.violation.pid, p.violation.event_seq, p.witness.clone()))
            .collect()
    }
    let (al, w) = contended_schedule();
    let inline = InlineBackend::new(predict_cfg(Nanos::new(50)));
    let want = signature(&run_window(&inline, &al, &w));
    assert!(!want.is_empty());
    inline.shutdown();

    let backends: Vec<(&str, Box<dyn DetectionBackend>)> = vec![
        (
            "sharded",
            Box::new(ShardedBackend::new(predict_cfg(Nanos::new(50)), ServiceConfig::new(2))),
        ),
        (
            "scheduled",
            Box::new(ScheduledBackend::new(
                predict_cfg(Nanos::new(50)),
                ServiceConfig::new(2),
                SchedulerConfig::new(Duration::from_secs(3600)),
            )),
        ),
    ];
    for (name, backend) in backends {
        let report = run_window(backend.as_ref(), &al, &w);
        assert_eq!(signature(&report), want, "{name}");
        backend.shutdown();
    }
}

// ---------------------------------------------------------------------
// Real threads: the recorder's carried clocks drive the same campaign
// ---------------------------------------------------------------------

/// Replays the contended schedule on real threads: thread A requests
/// and releases the single unit, holding the monitor open long enough
/// for thread B's entry attempt to block, and each hold is padded so
/// the *executed* holds stay under `Tlimit` while the feasible
/// reordering (B's blocked request commuted to the window's start)
/// exceeds it. The recorder attaches vector clocks at publication; the
/// checkpoint must predict the hidden ST-8c violation and its witness
/// must be a legal linearization of the durably journaled window.
#[test]
fn rt_campaign_predicts_across_real_threads() {
    const HOLD: Duration = Duration::from_millis(200);
    let t_limit = Nanos::from_millis(330);

    let sink = Arc::new(MemorySink::new());
    let rt = Runtime::builder(predict_cfg(t_limit))
        .park_timeout(Duration::from_secs(10))
        .event_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build();
    let al = MonitorSpec::allocator("res", 1);
    let mon = Arc::new(Monitor::new(&rt, al.spec.clone(), ()));
    let monitor = mon.id();

    // A: acquire the unit, keep it for HOLD without occupying the
    // monitor itself.
    let guard = mon.enter(al.request).expect("A requests");
    guard.signal_exit(None);
    std::thread::sleep(HOLD);

    // A enters `release` and keeps the monitor busy until B's entry
    // attempt has observably blocked.
    let guard = mon.enter(al.release).expect("A releases");
    let (started_tx, started_rx) = mpsc::channel();
    let b = std::thread::spawn({
        let mon = Arc::clone(&mon);
        let al = al.clone();
        move || {
            started_tx.send(()).unwrap();
            // Blocks: A is inside the monitor.
            let g = mon.enter(al.request).expect("B requests");
            g.signal_exit(None);
            std::thread::sleep(HOLD);
            let g = mon.enter(al.release).expect("B releases");
            g.signal_exit(None);
        }
    });
    started_rx.recv().unwrap();
    while mon.snapshot().entry_queue.is_empty() {
        std::thread::yield_now();
    }
    guard.signal_exit(Some(al.avail_cond));
    b.join().unwrap();

    let report = rt.checkpoint_now();

    // Executed holds are ~HOLD each — under Tlimit; the span of the
    // window is ~2·HOLD — over it. The executed run is clean of hold
    // timeouts, the prediction is not.
    assert!(
        report.violations.iter().all(|v| v.rule != RuleId::St8HoldTimeout),
        "executed holds must stay under Tlimit: {report}"
    );
    let hold: Vec<&PredictedViolation> = report.predicted_by_rule(RuleId::St8HoldTimeout).collect();
    assert_eq!(hold.len(), 1, "{report}");

    // Reconstruct the journaled window and validate the witness
    // against the partial order the recorder actually published.
    let window: Vec<Event> = sink
        .records()
        .iter()
        .filter_map(|r| match r {
            Record::Events(events) => Some(events.clone()),
            _ => None,
        })
        .flatten()
        .filter(|e| e.monitor == monitor)
        .collect();
    assert!(
        window.iter().all(|e| e.vc.is_set()),
        "the predict-enabled recorder must stamp every event"
    );
    assert!(
        window.iter().any(|e| matches!(e.kind, EventKind::Enter { granted: false })),
        "B's entry attempt must have blocked: {window:?}"
    );
    let ann = Annotation::over_window(&window);
    assert!(is_legal_linearization(&hold[0].witness, &window, &ann), "{:?}", hold[0].witness);
    // The witness front-runs B's blocked request.
    let blocked =
        window.iter().find(|e| matches!(e.kind, EventKind::Enter { granted: false })).unwrap();
    assert_eq!(hold[0].violation.event_seq, Some(blocked.seq));
    assert_eq!(hold[0].witness[0], blocked.seq);
}

/// Real-thread control: the same calls executed strictly one after the
/// other never block, the recorded order is total, and a
/// predict-enabled runtime reports nothing — executed or predicted.
#[test]
fn rt_race_free_run_predicts_nothing() {
    let rt = Runtime::builder(predict_cfg(Nanos::from_millis(330)))
        .park_timeout(Duration::from_secs(10))
        .build();
    let al = MonitorSpec::allocator("res", 1);
    let mon = Arc::new(Monitor::new(&rt, al.spec.clone(), ()));

    for _ in 0..2 {
        let handle = std::thread::spawn({
            let mon = Arc::clone(&mon);
            let al = al.clone();
            move || {
                let g = mon.enter(al.request).expect("requests");
                g.signal_exit(None);
                let g = mon.enter(al.release).expect("releases");
                g.signal_exit(None);
            }
        });
        handle.join().unwrap();
    }

    let report = rt.checkpoint_now();
    assert!(report.violations.is_empty(), "{report}");
    assert!(!report.has_predictions(), "{report}");
}
