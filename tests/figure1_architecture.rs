//! EXP-F1 — Figure 1 of the paper is the architecture of the augmented
//! monitor construct: four units — the monitor, the shared resource,
//! the data-gathering routine and the fault-detection routine — wired
//! so that the primitives feed events to the database and the checking
//! routine periodically validates them.
//!
//! The figure is structural, not quantitative; this test reproduces it
//! by exercising the full wiring end to end on both substrates and
//! asserting each unit observably participated.

use rmon::prelude::*;
use std::time::Duration;

#[test]
fn all_four_units_participate_on_real_threads() {
    // Unit 1+2: the monitor and its shared resource.
    let rt = Runtime::new(DetectorConfig::default());
    let buf = BoundedBuffer::new(&rt, "mailbox", 4);
    // Unit 4: the fault-detection routine (periodic checker).
    let checker = CheckerHandle::spawn(&rt, Duration::from_millis(10));

    let tx = buf.clone();
    let producer = std::thread::spawn(move || {
        for i in 0..300u64 {
            tx.send(i).expect("send");
        }
    });
    let rx = buf.clone();
    let consumer = std::thread::spawn(move || {
        let mut sum = 0u64;
        for _ in 0..300 {
            sum += rx.receive().expect("receive").expect("no holes");
        }
        sum
    });
    producer.join().expect("producer");
    let sum = consumer.join().expect("consumer");
    std::thread::sleep(Duration::from_millis(25));
    let checks = checker.stop();
    let final_report = rt.checkpoint_now();

    // Unit 3: the data-gathering routine recorded the primitives.
    assert_eq!(sum, (0..300).sum::<u64>());
    assert!(rt.events_recorded() >= 1200, "enter+exit per op: {}", rt.events_recorded());
    // Unit 4 ran periodically and found the execution consistent.
    assert!(checks >= 1, "the checking routine must have been invoked");
    assert!(!rt.reports().is_empty());
    assert!(final_report.is_clean(), "{final_report}");
    assert!(rt.is_clean());
}

#[test]
fn all_four_units_participate_in_the_simulator() {
    let mut b = SimBuilder::new();
    let buf = b.bounded_buffer("mailbox", 4);
    b.process("prod", Script::builder().repeat(50, |s| s.send(buf)).build());
    b.process("cons", Script::builder().repeat(50, |s| s.receive(buf)).build());
    let mut sim = b.build().expect("valid scripts");

    let out = run_with_detection(
        &mut sim,
        DetectorConfig::builder()
            .check_interval(Nanos::from_micros(100))
            .t_max(Nanos::from_millis(10))
            .t_io(Nanos::from_millis(10))
            .t_limit(Nanos::from_millis(10))
            .build(),
    );
    assert!(out.finished);
    assert!(out.events_recorded >= 200);
    assert!(out.reports.len() >= 2, "periodic checkpoints must have run");
    assert!(out.is_clean(), "{}", out.combined);
}

#[test]
fn detection_routine_suspends_monitor_operations() {
    // The paper: "all other running processes are suspended and are
    // resumed only after the checking has finished". Observable here:
    // a checkpoint issued while a workload runs never tears a
    // snapshot (the run stays violation-free under heavy checking).
    let rt = Runtime::new(DetectorConfig::without_timeouts());
    let buf = BoundedBuffer::new(&rt, "mailbox", 2);
    let tx = buf.clone();
    let producer = std::thread::spawn(move || {
        for i in 0..2_000u64 {
            tx.send(i).expect("send");
        }
    });
    let rx = buf.clone();
    let consumer = std::thread::spawn(move || {
        for _ in 0..2_000 {
            rx.receive().expect("receive");
        }
    });
    // Hammer checkpoints concurrently with the workload.
    for _ in 0..200 {
        let report = rt.checkpoint_now();
        assert!(report.is_clean(), "torn snapshot: {report}");
    }
    producer.join().expect("producer");
    consumer.join().expect("consumer");
    let report = rt.checkpoint_now();
    assert!(report.is_clean(), "{report}");
}
