//! Documentation hygiene: every internal markdown link in README.md and
//! docs/*.md must resolve to a file in the repository. CI's docs job
//! runs this alongside the rustdoc build, so a renamed doc or a stale
//! path fails the push that broke it.

use std::fs;
use std::path::{Path, PathBuf};

/// Extracts `[text](target)` link targets from markdown, skipping
/// fenced code blocks and inline code spans.
fn link_targets(md: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut fenced = false;
    for line in md.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            continue;
        }
        // Strip inline code spans so `[i](x)` inside backticks is text.
        let mut clean = String::with_capacity(line.len());
        let mut in_code = false;
        for ch in line.chars() {
            if ch == '`' {
                in_code = !in_code;
            } else if !in_code {
                clean.push(ch);
            }
        }
        let bytes = clean.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'[' {
                if let Some(close) = clean[i..].find("](") {
                    let start = i + close + 2;
                    if let Some(end) = clean[start..].find(')') {
                        out.push(clean[start..start + end].to_string());
                        i = start + end + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    out
}

fn check_file(repo: &Path, md_path: &Path, broken: &mut Vec<String>) {
    let text = fs::read_to_string(md_path).unwrap_or_else(|e| panic!("read {md_path:?}: {e}"));
    for target in link_targets(&text) {
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        // GitHub-relative links that climb out of the repository (the
        // CI badge) resolve server-side, not in the checkout.
        if target.starts_with("../../") {
            continue;
        }
        // Fragment-only links point within the same document.
        let path_part = target.split('#').next().unwrap_or("");
        if path_part.is_empty() {
            continue;
        }
        let resolved = if let Some(rooted) = path_part.strip_prefix('/') {
            repo.join(rooted)
        } else {
            md_path.parent().unwrap_or(repo).join(path_part)
        };
        if !resolved.exists() {
            broken.push(format!(
                "{}: broken link `{target}` (resolved to {})",
                md_path.display(),
                resolved.display()
            ));
        }
    }
}

#[test]
fn readme_and_docs_links_resolve() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![repo.join("README.md")];
    let docs = repo.join("docs");
    let mut entries: Vec<PathBuf> = fs::read_dir(&docs)
        .expect("docs/ directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "docs/ must contain markdown");
    files.extend(entries);

    let mut broken = Vec::new();
    for f in &files {
        check_file(&repo, f, &mut broken);
    }
    assert!(broken.is_empty(), "broken internal links:\n{}", broken.join("\n"));
}

#[test]
fn extractor_handles_code_and_fragments() {
    let md = "see [guide](docs/STORAGE.md#frames) and `[not](a-link.md)`\n\
              ```\n[also not](x.md)\n```\n[web](https://example.com) [frag](#local)";
    let targets = link_targets(md);
    assert_eq!(targets, vec!["docs/STORAGE.md#frames", "https://example.com", "#local"]);
}
