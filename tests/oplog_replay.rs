//! End-to-end differential replay: a real [`Runtime`] journals events
//! and verdicts through a [`DurableSink`] into an on-disk oplog; the
//! replayer re-runs detection over the persisted log and must
//! reproduce the live verdict sequence exactly — including after a
//! process "restart" (second epoch) and a crash torn into the journal
//! tail mid-write.

use rmon::prelude::*;
use rmon::storage::{replay_dir, DurableSink, OplogConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const UNITS: u64 = 3;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("rmon-oplog-replay-{tag}-{}", std::process::id()))
        .join(format!("{:?}", std::thread::current().id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// One journaled runtime epoch: allocator clients run the deny-trace
/// fault script (a correct cycle plus a U3 duplicate request and a U1
/// release-without-request), with a checkpoint barrier after each round.
fn run_epoch(dir: &Path, rounds: usize) -> Arc<DurableSink> {
    let sink = Arc::new(
        DurableSink::open(dir, OplogConfig { segment_bytes: 4 << 10, ..OplogConfig::default() })
            .expect("open oplog"),
    );
    let rt = Runtime::builder(DetectorConfig::without_timeouts())
        .journal(Arc::clone(&sink))
        .order_policy(OrderPolicy::Report)
        .build();
    let fleet: Vec<ResourceAllocator> =
        (0..4).map(|i| ResourceAllocator::new(&rt, &format!("res-{i}"), UNITS)).collect();
    for _ in 0..rounds {
        for al in &fleet {
            let _ = al.request();
            let _ = al.request(); // U3: duplicate request
            let _ = al.release();
            let _ = al.release(); // U1: release without request
        }
        let _ = rt.checkpoint_now();
    }
    assert_eq!(rt.journal_errors(), 0, "journal appends must succeed");
    sink
}

/// The same epoch script, but committed through **scoped** barriers:
/// odd rounds checkpoint one monitor at a time
/// ([`CheckpointScope::Monitor`]), even rounds sweep the single inline
/// pseudo-shard ([`CheckpointScope::Shard`]). Scoped checkpoints must
/// journal the same `Events → Realtime → Checkpoint` sequence the
/// global barrier writes, so the replayer needs no changes.
fn run_epoch_scoped(dir: &Path, rounds: usize) -> Arc<DurableSink> {
    let sink = Arc::new(
        DurableSink::open(dir, OplogConfig { segment_bytes: 4 << 10, ..OplogConfig::default() })
            .expect("open oplog"),
    );
    let rt = Runtime::builder(DetectorConfig::without_timeouts())
        .journal(Arc::clone(&sink))
        .order_policy(OrderPolicy::Report)
        .build();
    let fleet: Vec<ResourceAllocator> =
        (0..4).map(|i| ResourceAllocator::new(&rt, &format!("res-{i}"), UNITS)).collect();
    for round in 0..rounds {
        for al in &fleet {
            let _ = al.request();
            let _ = al.request(); // U3: duplicate request
            let _ = al.release();
            let _ = al.release(); // U1: release without request
        }
        if round % 2 == 0 {
            for al in &fleet {
                let _ = rt.checkpoint_scope(CheckpointScope::Monitor(al.id()));
            }
        } else {
            let _ = rt.checkpoint_scope(CheckpointScope::Shard(0));
        }
    }
    assert_eq!(rt.journal_errors(), 0, "scoped journal appends must succeed");
    sink
}

fn replay(dir: &Path) -> rmon::storage::ReplayOutcome {
    let resolve = move |_id, name: &str| Some(Arc::new(MonitorSpec::allocator(name, UNITS).spec));
    let (outcome, read) = replay_dir(
        dir,
        OplogConfig::default().max_record_bytes,
        DetectorConfig::without_timeouts(),
        &resolve,
    )
    .expect("replay_dir");
    assert!(!read.stopped_mid_log, "sealed segments must scan clean: {read:?}");
    outcome
}

#[test]
fn replay_reproduces_live_verdicts() {
    let dir = tmp_dir("clean");
    run_epoch(&dir, 8);
    let outcome = replay(&dir);
    assert_eq!(outcome.epochs, 1);
    assert!(outcome.checkpoints >= 8, "{outcome:?}");
    assert!(outcome.events_replayed > 0);
    assert!(!outcome.recorded.is_empty(), "fault script must produce verdicts");
    assert!(outcome.matches(), "diverged: {:?}", outcome.mismatch());
    let _ = fs::remove_dir_all(&dir);
}

/// ROADMAP item 5's durability gap, closed: scoped checkpoints commit
/// to the journal, and replaying the scoped-barrier log reproduces the
/// live verdicts exactly — including across a crash torn into the
/// journal tail between scoped epochs.
#[test]
fn scoped_checkpoints_commit_and_replay_equivalently() {
    let dir = tmp_dir("scoped");
    run_epoch_scoped(&dir, 6);
    let outcome = replay(&dir);
    assert_eq!(outcome.epochs, 1);
    assert!(outcome.checkpoints >= 6, "scoped barriers must commit: {outcome:?}");
    assert!(outcome.events_replayed > 0);
    assert!(!outcome.recorded.is_empty(), "fault script must produce verdicts");
    assert!(outcome.matches(), "diverged: {:?}", outcome.mismatch());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn scoped_checkpoint_crash_replay_equivalence() {
    let dir = tmp_dir("scoped-torn");
    run_epoch_scoped(&dir, 8);

    // Crash mid-write after the scoped epoch: tear into the newest
    // segment's last frame.
    let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segments.sort();
    let tail = segments.pop().expect("at least one segment");
    let len = fs::metadata(&tail).unwrap().len();
    fs::OpenOptions::new().write(true).open(&tail).unwrap().set_len(len - 5).unwrap();

    // A recovering reopen runs another scoped epoch on the same log.
    let sink = run_epoch_scoped(&dir, 4);
    assert!(sink.recovery().truncated_bytes > 0, "recovery must truncate the torn frame");

    let outcome = replay(&dir);
    assert_eq!(outcome.epochs, 2, "{outcome:?}");
    assert!(!outcome.recorded.is_empty());
    assert!(outcome.matches(), "diverged: {:?}", outcome.mismatch());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replay_spans_process_restarts() {
    let dir = tmp_dir("epochs");
    run_epoch(&dir, 4);
    run_epoch(&dir, 4); // second epoch appends to the same journal
    let outcome = replay(&dir);
    assert_eq!(outcome.epochs, 2, "{outcome:?}");
    assert!(outcome.matches(), "diverged: {:?}", outcome.mismatch());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replay_survives_crash_torn_tail() {
    let dir = tmp_dir("torn");
    run_epoch(&dir, 8);

    // Crash mid-write: tear into the newest segment's last frame. Frames
    // carry an 8-byte header, so a 5-byte cut always leaves a torn frame
    // for recovery to truncate.
    let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segments.sort();
    let tail = segments.pop().expect("at least one segment");
    let len = fs::metadata(&tail).unwrap().len();
    fs::OpenOptions::new().write(true).open(&tail).unwrap().set_len(len - 5).unwrap();

    // The next epoch's open must recover (truncate the torn frame) and
    // keep appending; the torn barrier disappears from both sides of
    // the differential comparison.
    let sink = run_epoch(&dir, 4);
    assert!(sink.recovery().truncated_bytes > 0, "recovery must truncate the torn frame");

    let outcome = replay(&dir);
    assert_eq!(outcome.epochs, 2, "{outcome:?}");
    assert!(!outcome.recorded.is_empty());
    assert!(outcome.matches(), "diverged: {:?}", outcome.mismatch());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_drops_only_uncommitted_suffix() {
    let dir = tmp_dir("suffix");
    run_epoch(&dir, 8);
    let full = replay(&dir);
    assert!(full.matches(), "baseline diverged: {:?}", full.mismatch());

    // Tear the tail *without* a recovering reopen: the replayer itself
    // must discard the trailing records not sealed by a Checkpoint and
    // still reproduce the committed prefix.
    let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segments.sort();
    let tail = segments.pop().expect("at least one segment");
    let len = fs::metadata(&tail).unwrap().len();
    fs::OpenOptions::new().write(true).open(&tail).unwrap().set_len(len - 5).unwrap();

    let torn = replay(&dir);
    assert!(torn.matches(), "diverged: {:?}", torn.mismatch());
    assert!(torn.recorded.len() <= full.recorded.len());
    assert!(torn.checkpoints <= full.checkpoints);
    let _ = fs::remove_dir_all(&dir);
}
