//! Differential testing: the paper claims the ST-Rules (incremental
//! checking lists) are equivalent to the FD-Rules (declarative
//! full-history rules). We hold both implementations against each
//! other on recorded traces: both must call clean runs clean, and both
//! must flag the same injected histories as faulty.

use rmon::core::detect::Detector;
use rmon::core::{reference, DetectorConfig, Event, EventKind, Nanos};
use rmon::prelude::*;
use rmon::workloads::sweep;
use std::collections::HashMap;
use std::sync::Arc;

fn st_clean(trace: &sweep::SynthTrace, events: &[Event]) -> bool {
    let mut det = Detector::new(DetectorConfig::without_timeouts());
    det.register_empty(trace.monitor, Arc::clone(&trace.spec), Nanos::ZERO);
    let mut snaps = HashMap::new();
    snaps.insert(trace.monitor, trace.final_state.clone());
    let report = det.checkpoint(trace.end_time, events, &snaps);
    report.is_clean()
}

fn fd_clean(trace: &sweep::SynthTrace, events: &[Event]) -> bool {
    reference::check_history(
        trace.monitor,
        &trace.spec,
        &DetectorConfig::without_timeouts(),
        events,
        Some(&trace.final_state),
        trace.end_time,
    )
    .is_empty()
}

#[test]
fn both_checkers_accept_clean_traces_across_seeds() {
    for seed in 0..25 {
        let trace = sweep::pc_trace(12, seed);
        assert!(st_clean(&trace, &trace.events), "ST flagged clean trace, seed {seed}");
        assert!(fd_clean(&trace, &trace.events), "FD flagged clean trace, seed {seed}");
    }
}

/// Event-level mutations that provably violate the model: both
/// checkers must reject every mutant.
#[test]
fn both_checkers_reject_mutated_traces() {
    let trace = sweep::pc_trace(15, 3);
    let n = trace.events.len();
    assert!(n > 20, "trace long enough to mutate");

    type Mutation = Box<dyn Fn(&mut Vec<Event>)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        (
            "drop an exit event",
            Box::new(|ev: &mut Vec<Event>| {
                let idx = ev.iter().position(|e| e.is_signal_exit()).expect("has exits");
                ev.remove(idx);
            }),
        ),
        (
            "duplicate a granted enter",
            Box::new(|ev: &mut Vec<Event>| {
                let idx = ev
                    .iter()
                    .position(|e| matches!(e.kind, EventKind::Enter { granted: true }))
                    .expect("has grants");
                let mut dup = ev[idx];
                dup.seq = ev.last().expect("non-empty").seq + 1;
                dup.time = ev.last().expect("non-empty").time + Nanos::new(1);
                ev.push(dup);
            }),
        ),
        (
            "flip a blocked enter into a grant",
            Box::new(|ev: &mut Vec<Event>| {
                for e in ev.iter_mut() {
                    if matches!(e.kind, EventKind::Enter { granted: false }) {
                        e.kind = EventKind::Enter { granted: true };
                        return;
                    }
                }
                // Fallback: duplicate a grant (always faulty too).
                let dup_idx = ev
                    .iter()
                    .position(|e| matches!(e.kind, EventKind::Enter { granted: true }))
                    .expect("has grants");
                let mut dup = ev[dup_idx];
                dup.seq = ev.last().expect("non-empty").seq + 1;
                ev.push(dup);
            }),
        ),
        (
            "forge a terminate inside",
            Box::new(|ev: &mut Vec<Event>| {
                let idx = ev
                    .iter()
                    .position(|e| matches!(e.kind, EventKind::Enter { granted: true }))
                    .expect("has grants");
                let owner = ev[idx];
                let seq = ev[idx].seq + 1;
                // Insert right after the grant: the owner dies inside.
                ev.insert(
                    idx + 1,
                    Event::terminate(
                        seq,
                        owner.time + Nanos::new(1),
                        owner.monitor,
                        owner.pid,
                        owner.proc_name,
                    ),
                );
            }),
        ),
    ];

    for (name, mutate) in mutations {
        let mut events = trace.events.clone();
        mutate(&mut events);
        let st = st_clean(&trace, &events);
        let fd = fd_clean(&trace, &events);
        assert!(!st, "ST missed mutation: {name}");
        assert!(!fd, "FD missed mutation: {name}");
    }
}

#[test]
fn checkers_agree_on_simulator_fault_injections() {
    // For every kernel-injectable fault class, record the full trace
    // and final state, then ask both checkers. The ST engine sees the
    // same evidence (events + final snapshot); the FD reference runs on
    // identical inputs — their clean/faulty verdicts must agree on
    // faults that are event-visible (timer-based classes excluded: the
    // two implementations interpret mid-wait timers differently by
    // design, see module docs).
    use rmon::workloads::faultset;
    let event_visible = [
        FaultKind::EnterMutualExclusion,
        FaultKind::EnterNoResponse,
        FaultKind::EnterNotObserved,
        FaultKind::WaitNotBlocked,
        FaultKind::SendDelayViolation,
        FaultKind::ReceiveDelayViolation,
        FaultKind::ReceiveExceedsSend,
        FaultKind::SendExceedsCapacity,
    ];
    for fault in event_visible {
        let mut sim = faultset::build_case(fault, 0);
        let out = run_with_detection(&mut sim, faultset::campaign_det_config_for(fault));
        assert!(!out.is_clean(), "{}: campaign must detect", fault.code());
    }
}
