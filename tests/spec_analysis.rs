//! Static spec-analysis campaign over the `RML0xx` diagnostics engine:
//!
//! * **Catalogue coverage** — every diagnostic code has a minimal
//!   trigger (a spec that fires exactly this finding) and a near-miss
//!   (the smallest correction, which must silence it). A completeness
//!   check keeps the table honest against `DiagCode::all()`.
//! * **No false positives** — randomly shaped *well-formed* specs of
//!   every class lint clean, and survive a round-trip through the
//!   `.mspec` text format unchanged.
//! * **Seeded mutations** — one seeded defect injected into a clean
//!   allocator must surface as the expected code (no false negatives).
//! * **Fleet laws** — distinct clean specs form a clean fleet; shared
//!   registrations dedup to at most a lint; colliding names are errors.
//!
//! `RML012` (trap states) is absent from the table by design: the
//! Thompson construction behind `PathExpr::compile` is trim, so no
//! parsable spec can trigger it — it is exercised against a hand-built
//! automaton in the core unit tests.

use proptest::prelude::*;
use rmon::core::spec::textfmt;
use rmon::core::{
    analyze, analyze_fleet, CondId, CondRole, CondSpec, DiagCode, MonitorClass, MonitorSpec,
    PathExpr, Pid, ProcRole, ProcedureSpec, StateAssertion,
};
use rmon::prelude::analyze_all;
use std::sync::Arc;

/// Assembles a spec directly (no builder), so malformed shapes the
/// builder rejects are still constructible — the analyzer's job is
/// exactly to describe those.
fn raw(
    class: MonitorClass,
    procs: &[(&str, ProcRole)],
    conds: &[(&str, CondRole)],
    capacity: Option<u64>,
    order: Option<&str>,
    assertions: Vec<StateAssertion>,
) -> MonitorSpec {
    MonitorSpec {
        name: "m".into(),
        class,
        procedures: procs
            .iter()
            .map(|(n, r)| ProcedureSpec { name: n.to_string(), role: *r })
            .collect(),
        conditions: conds.iter().map(|(n, r)| CondSpec { name: n.to_string(), role: *r }).collect(),
        capacity,
        call_order: order.map(|s| PathExpr::parse(s).expect("table orders parse")),
        assertions,
    }
}

fn codes(spec: &MonitorSpec) -> Vec<DiagCode> {
    analyze(spec).diagnostics.iter().map(|d| d.code).collect()
}

/// A minimal clean allocator — the base most triggers mutate away from.
fn clean_allocator() -> MonitorSpec {
    raw(
        MonitorClass::ResourceAllocator,
        &[("request", ProcRole::Request), ("release", ProcRole::Release)],
        &[("unit_available", CondRole::UnitAvailable)],
        Some(2),
        Some("path (request ; release)* end"),
        vec![],
    )
}

/// A minimal clean coordinator.
fn clean_coordinator() -> MonitorSpec {
    raw(
        MonitorClass::CommunicationCoordinator,
        &[("send", ProcRole::Send), ("receive", ProcRole::Receive)],
        &[("full", CondRole::BufferFull), ("empty", CondRole::BufferEmpty)],
        Some(4),
        None,
        vec![],
    )
}

/// The catalogue table: for each single-spec code, the minimal spec
/// that triggers it and the near-miss that must not.
fn catalogue() -> Vec<(DiagCode, MonitorSpec, MonitorSpec)> {
    use DiagCode::*;
    use MonitorClass::*;
    vec![
        (
            DuplicateProc,
            raw(
                OperationManager,
                &[("op", ProcRole::Plain), ("op", ProcRole::Plain)],
                &[],
                None,
                None,
                vec![],
            ),
            raw(
                OperationManager,
                &[("op", ProcRole::Plain), ("op2", ProcRole::Plain)],
                &[],
                None,
                None,
                vec![],
            ),
        ),
        (
            DuplicateCond,
            raw(
                OperationManager,
                &[("op", ProcRole::Plain)],
                &[("c", CondRole::Plain), ("c", CondRole::Plain)],
                None,
                None,
                vec![],
            ),
            raw(
                OperationManager,
                &[("op", ProcRole::Plain)],
                &[("c", CondRole::Plain), ("d", CondRole::Plain)],
                None,
                None,
                vec![],
            ),
        ),
        (
            PathUnknownProc,
            {
                let mut s = clean_allocator();
                s.call_order = Some(PathExpr::parse("path (request ; free)* end").unwrap());
                s
            },
            clean_allocator(),
        ),
        (
            PathUnreachableProc,
            {
                let mut s = clean_allocator();
                s.procedures.push(ProcedureSpec { name: "status".into(), role: ProcRole::Plain });
                s
            },
            {
                let mut s = clean_allocator();
                s.procedures.push(ProcedureSpec { name: "status".into(), role: ProcRole::Plain });
                s.call_order =
                    Some(PathExpr::parse("path ((request ; release) | status)* end").unwrap());
                s
            },
        ),
        (
            PathUnreleasedCompletion,
            {
                let mut s = clean_allocator();
                s.call_order = Some(PathExpr::parse("path (request ; release?)* end").unwrap());
                s
            },
            clean_allocator(),
        ),
        (
            PathReleaseBeforeRequest,
            {
                let mut s = clean_allocator();
                s.call_order = Some(PathExpr::parse("path (release ; request) end").unwrap());
                s
            },
            clean_allocator(),
        ),
        (
            PathDuplicateAlt,
            {
                let mut s = clean_allocator();
                s.call_order = Some(
                    PathExpr::parse("path ((request ; release) | (request ; release))* end")
                        .unwrap(),
                );
                s
            },
            {
                // Two structurally different (both balanced) branches.
                let mut s = clean_allocator();
                s.call_order = Some(
                    PathExpr::parse(
                        "path ((request ; release) | (request ; release ; request ; release))* end",
                    )
                    .unwrap(),
                );
                s
            },
        ),
        (
            CoordinatorRoles,
            raw(
                CommunicationCoordinator,
                &[("send", ProcRole::Send)],
                &[("full", CondRole::BufferFull)],
                Some(4),
                None,
                vec![],
            ),
            clean_coordinator(),
        ),
        (
            CoordinatorCapacity,
            {
                let mut s = clean_coordinator();
                s.capacity = Some(0);
                s
            },
            clean_coordinator(),
        ),
        (
            AllocatorRoles,
            raw(
                MonitorClass::ResourceAllocator,
                &[("request", ProcRole::Request)],
                &[],
                Some(2),
                None,
                vec![],
            ),
            clean_allocator(),
        ),
        (
            AllocatorBufferCond,
            {
                let mut s = clean_allocator();
                s.conditions.push(CondSpec { name: "full".into(), role: CondRole::BufferFull });
                s
            },
            clean_allocator(),
        ),
        (
            AllocatorNoCapacity,
            {
                let mut s = clean_allocator();
                s.capacity = None;
                s
            },
            clean_allocator(),
        ),
        (
            ManagerMachinery,
            raw(OperationManager, &[("op", ProcRole::Request)], &[], None, None, vec![]),
            raw(OperationManager, &[("op", ProcRole::Plain)], &[], None, None, vec![]),
        ),
        (
            CoordinatorNoWaitConds,
            raw(
                CommunicationCoordinator,
                &[("send", ProcRole::Send), ("receive", ProcRole::Receive)],
                &[],
                Some(4),
                None,
                vec![],
            ),
            clean_coordinator(),
        ),
        (
            AssertUnsatisfiable,
            {
                let mut s = clean_allocator();
                s.assertions.push(StateAssertion::AvailableAtLeast(3));
                s
            },
            {
                let mut s = clean_allocator();
                s.assertions.push(StateAssertion::AvailableAtLeast(2));
                s
            },
        ),
        (
            AssertVacuous,
            {
                let mut s = clean_allocator();
                s.assertions.push(StateAssertion::AvailableAtMost(2));
                s
            },
            {
                let mut s = clean_allocator();
                s.assertions.push(StateAssertion::AvailableAtMost(1));
                s
            },
        ),
        (
            AssertUnknownCond,
            {
                let mut s = clean_allocator();
                s.assertions
                    .push(StateAssertion::CondQueueAtMost { cond: CondId::new(7), at_most: 1 });
                s
            },
            {
                let mut s = clean_allocator();
                s.assertions
                    .push(StateAssertion::CondQueueAtMost { cond: CondId::new(0), at_most: 1 });
                s
            },
        ),
        (
            AssertNoCounter,
            {
                let mut s = clean_allocator();
                s.capacity = None;
                s.conditions.clear(); // avoid the RML024 overlap
                s.assertions.push(StateAssertion::AvailableAtLeast(1));
                s
            },
            {
                let mut s = clean_allocator();
                s.assertions.push(StateAssertion::AvailableAtLeast(1));
                s
            },
        ),
    ]
}

#[test]
fn every_code_has_a_minimal_trigger() {
    for (code, trigger, _) in catalogue() {
        let found = codes(&trigger);
        assert!(found.contains(&code), "{code:?}: expected in {found:?}\nspec: {trigger:?}");
    }
}

#[test]
fn every_near_miss_stays_silent_on_its_code() {
    for (code, _, near) in catalogue() {
        let found = codes(&near);
        assert!(!found.contains(&code), "{code:?}: near-miss still fires: {found:?}");
    }
}

#[test]
fn catalogue_covers_every_single_spec_code() {
    let covered: std::collections::BTreeSet<&str> =
        catalogue().iter().map(|(c, _, _)| c.as_str()).collect();
    // RML012: unreachable from parsable input (trim construction) —
    // unit-tested in core. RML016: a front-end code, tested below.
    // RML04x: fleet-level, tested below.
    let excluded = ["RML012", "RML016", "RML040", "RML041", "RML042", "RML043"];
    for code in DiagCode::all() {
        if excluded.contains(&code.as_str()) {
            continue;
        }
        assert!(covered.contains(code.as_str()), "{code:?} has no catalogue entry");
    }
}

#[test]
fn unparsable_order_in_text_format_is_rml016() {
    let file = textfmt::parse_specs(
        "monitor m\n  class manager\n  proc op plain\n  order path (op* end\nend\n",
    )
    .expect("structurally fine");
    assert_eq!(
        file.diagnostics.diagnostics.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![DiagCode::PathSyntax]
    );
    // The near-miss: the parenthesis closed.
    let ok = textfmt::parse_specs(
        "monitor m\n  class manager\n  proc op plain\n  order path (op)* end\nend\n",
    )
    .expect("structurally fine");
    assert!(ok.diagnostics.is_clean());
}

#[test]
fn fleet_codes_have_triggers_and_near_misses() {
    let a = Arc::new(clean_allocator());
    let b = Arc::new(clean_coordinator());

    // RML040: one name, two structurally different specs.
    let r = analyze_fleet(vec![
        ("m".to_string(), Some(Arc::clone(&a))),
        ("m".to_string(), Some(Arc::clone(&b))),
    ]);
    assert!(r.diagnostics.iter().any(|d| d.code == DiagCode::FleetNameCollision), "{r}");

    // RML041: coordinators differing only in capacity — a softer
    // mismatch than RML040.
    let mut b2 = clean_coordinator();
    b2.capacity = Some(8);
    let r = analyze_fleet(vec![
        ("m".to_string(), Some(Arc::clone(&b))),
        ("m".to_string(), Some(Arc::new(b2))),
    ]);
    assert!(r.diagnostics.iter().any(|d| d.code == DiagCode::FleetCapacityMismatch), "{r}");
    assert!(!r.diagnostics.iter().any(|d| d.code == DiagCode::FleetNameCollision), "{r}");

    // RML042: a name that resolved to no spec.
    let r = analyze_fleet(vec![("ghost".to_string(), None)]);
    assert!(r.diagnostics.iter().any(|d| d.code == DiagCode::FleetUnresolved), "{r}");

    // RML043: the same declaration registered twice under one name.
    let r = analyze_fleet(vec![
        ("m".to_string(), Some(Arc::clone(&a))),
        ("m".to_string(), Some(Arc::clone(&a))),
    ]);
    assert!(r.diagnostics.iter().any(|d| d.code == DiagCode::FleetDuplicateRegistration), "{r}");

    // Near-miss for all four: distinct names, all resolved, no dups.
    let r = analyze_fleet(vec![("a".to_string(), Some(a)), ("b".to_string(), Some(b))]);
    assert!(r.is_clean(), "{r}");
}

// ---------------------------------------------------------------------
// Properties: clean shapes lint clean; seeded mutations are caught
// ---------------------------------------------------------------------

/// Randomly shaped *well-formed* specs of every class.
fn arb_clean_spec() -> impl Strategy<Value = MonitorSpec> {
    prop_oneof![
        // Coordinator: canonical roles, positive capacity, optional
        // auxiliary Plain procedures and a queue-depth assertion.
        (1u64..32, 0usize..3, any::<bool>()).prop_map(|(cap, extra, with_assert)| {
            let mut s = clean_coordinator();
            s.capacity = Some(cap);
            for i in 0..extra {
                s.procedures.push(ProcedureSpec { name: format!("aux{i}"), role: ProcRole::Plain });
            }
            if with_assert {
                s.assertions.push(StateAssertion::EntryQueueAtMost(64));
            }
            s
        }),
        // Allocator: optional declared order, satisfiable assertions.
        (1u64..32, any::<bool>(), any::<bool>()).prop_map(|(cap, with_order, with_assert)| {
            let mut s = clean_allocator();
            s.capacity = Some(cap);
            if !with_order {
                s.call_order = None;
            }
            if with_assert {
                s.assertions.push(StateAssertion::AvailableAtLeast(cap));
                s.assertions.push(StateAssertion::PopulationAtMost(16));
            }
            s
        }),
        // Manager: any number of distinct Plain procedures/conditions.
        (1usize..6, 0usize..3).prop_map(|(nproc, ncond)| {
            let procs: Vec<(String, ProcRole)> =
                (0..nproc).map(|i| (format!("op{i}"), ProcRole::Plain)).collect();
            let conds: Vec<(String, CondRole)> =
                (0..ncond).map(|i| (format!("c{i}"), CondRole::Plain)).collect();
            MonitorSpec {
                name: "mgr".into(),
                class: MonitorClass::OperationManager,
                procedures: procs
                    .into_iter()
                    .map(|(name, role)| ProcedureSpec { name, role })
                    .collect(),
                conditions: conds.into_iter().map(|(name, role)| CondSpec { name, role }).collect(),
                capacity: None,
                call_order: None,
                assertions: vec![StateAssertion::ExcludesPid(Pid::new(0))],
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Well-formed specs produce no findings at all, and survive the
    /// `.mspec` round-trip both structurally and under the analyzer.
    #[test]
    fn clean_specs_lint_clean_and_round_trip(spec in arb_clean_spec()) {
        let report = analyze(&spec);
        prop_assert!(report.is_clean(), "{report}\nspec: {spec:?}");

        let text = textfmt::to_text([&spec]);
        let file = textfmt::parse_specs(&text).expect("writer output re-parses");
        prop_assert!(file.diagnostics.is_clean());
        prop_assert_eq!(&file.specs, &vec![spec]);
        let fleet = file.specs.into_iter().map(|s| (s.name.clone(), Some(Arc::new(s))));
        prop_assert!(analyze_all(fleet).is_clean());
    }

    /// One seeded defect injected into a clean allocator always
    /// surfaces, and as the expected code.
    #[test]
    fn seeded_mutations_are_reported(mutation in 0usize..12, cap in 1u64..16) {
        let mut s = clean_allocator();
        s.capacity = Some(cap);
        let expect = match mutation {
            0 => { s.procedures.push(ProcedureSpec { name: "request".into(), role: ProcRole::Plain }); DiagCode::DuplicateProc }
            1 => { s.conditions.push(CondSpec { name: "unit_available".into(), role: CondRole::Plain }); DiagCode::DuplicateCond }
            2 => { s.call_order = Some(PathExpr::parse("path (request ; ghost)* end").unwrap()); DiagCode::PathUnknownProc }
            3 => { s.procedures.push(ProcedureSpec { name: "extra".into(), role: ProcRole::Plain }); DiagCode::PathUnreachableProc }
            4 => { s.call_order = Some(PathExpr::parse("path request+ end").unwrap()); DiagCode::PathUnreleasedCompletion }
            5 => { s.call_order = Some(PathExpr::parse("path (release ; request) end").unwrap()); DiagCode::PathReleaseBeforeRequest }
            6 => { s.call_order = Some(PathExpr::parse("path (request | request) end").unwrap()); DiagCode::PathDuplicateAlt }
            7 => { s.procedures[0].role = ProcRole::Plain; s.procedures[1].role = ProcRole::Plain; DiagCode::AllocatorRoles }
            8 => { s.conditions[0].role = CondRole::BufferFull; DiagCode::AllocatorBufferCond }
            9 => { s.capacity = None; DiagCode::AllocatorNoCapacity }
            10 => { s.assertions.push(StateAssertion::AvailableAtLeast(cap + 1)); DiagCode::AssertUnsatisfiable }
            _ => { s.assertions.push(StateAssertion::CondQueueAtMost { cond: CondId::new(9), at_most: 0 }); DiagCode::AssertUnknownCond }
        };
        let report = analyze(&s);
        prop_assert!(!report.is_clean(), "mutation {mutation} went unnoticed: {s:?}");
        prop_assert!(
            report.diagnostics.iter().any(|d| d.code == expect),
            "mutation {mutation}: expected {expect:?} in {report}"
        );
    }

    /// Fleets of distinct clean specs are clean; duplicating one shared
    /// registration adds at most the RML043 lint, never an error.
    #[test]
    fn clean_fleets_lint_clean(n in 1usize..6, dups in 0usize..3) {
        let specs: Vec<Arc<MonitorSpec>> = (0..n)
            .map(|i| {
                let mut s = clean_allocator();
                s.name = format!("alloc{i}");
                Arc::new(s)
            })
            .collect();
        let mut entries: Vec<(String, Option<Arc<MonitorSpec>>)> =
            specs.iter().map(|s| (s.name.clone(), Some(Arc::clone(s)))).collect();
        for _ in 0..dups {
            entries.push((specs[0].name.clone(), Some(Arc::clone(&specs[0]))));
        }
        let report = analyze_fleet(entries);
        if dups == 0 {
            prop_assert!(report.is_clean(), "{report}");
        } else {
            prop_assert!(report.worst() <= Some(rmon::core::Severity::Lint), "{report}");
        }
    }
}
