//! # rmon — run-time fault detection for monitor-based concurrent
//! programs
//!
//! A comprehensive Rust reproduction of *"Run-time Fault Detection in
//! Monitor Based Concurrent Programming"* (Jiannong Cao, Nick K.C.
//! Cheung, Alvin T.S. Chan — DSN 2001): the augmented monitor
//! construct, the 21-class concurrency-control fault taxonomy, the
//! FD/ST detection rules, the three detection algorithms, and the
//! paper's full evaluation (fault-injection coverage and
//! checking-interval overhead).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`rmon-core`) — the execution-agnostic detector: events,
//!   states, taxonomy, rules, checking lists, algorithms, path
//!   expressions, reference checker;
//! * [`sim`] (`rmon-sim`) — a deterministic monitor-kernel simulator
//!   whose protocol can be fault-injected (all 21 classes);
//! * [`rt`] (`rmon-rt`) — the robust monitor runtime for real threads
//!   (hand-off monitor, recorder, periodic checker, overhead harness);
//! * [`storage`] (`rmon-storage`) — the durable operations layer: an
//!   append-only, CRC-framed, segmented oplog for events and verdicts,
//!   crash recovery, and the differential replayer;
//! * [`workloads`] (`rmon-workloads`) — evaluation workloads, the
//!   canonical fault-injection campaign, and the soak/chaos driver;
//! * [`net`] (`rmon-net`) — distributed detection: multi-process
//!   runtimes streaming monitor events over framed transports to one
//!   logical detection service (sessions, HLC merge, checkpoint
//!   fan-out with per-worker quarantine).
//!
//! ## Quickstart
//!
//! ```
//! use rmon::prelude::*;
//! use std::time::Duration;
//!
//! // A robust bounded buffer with a background checker.
//! let rt = Runtime::new(DetectorConfig::default());
//! let buf = BoundedBuffer::new(&rt, "mailbox", 8);
//! let checker = CheckerHandle::spawn(&rt, Duration::from_millis(20));
//!
//! buf.send("hello")?;
//! assert_eq!(buf.receive()?, Some("hello"));
//!
//! checker.stop();
//! assert!(rt.is_clean());
//! # Ok::<(), rmon::rt::MonitorError>(())
//! ```
//!
//! See `examples/` for fault-detection walkthroughs,
//! `docs/ARCHITECTURE.md` for the crate map and data flow, and
//! `docs/PAPER_MAP.md` for where each paper concept lives in the code.

#![warn(missing_docs)]

pub use rmon_core as core;
pub use rmon_net as net;
pub use rmon_rt as rt;
pub use rmon_sim as sim;
pub use rmon_storage as storage;
pub use rmon_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use rmon_core::detect::{
        AsyncBackend, Backpressure, CheckpointScope, DetectionBackend, InlineBackend,
        ModeController, ModePolicy, Observe, ProducerHandle, ScheduledBackend, SchedulerConfig,
        ServiceConfig, ServiceStats, ShardedBackend, ShardedDetector, SnapshotProvider,
        SnapshotTable,
    };
    pub use rmon_core::{
        analyze, analyze_all, analyze_fleet, monitor_spec, taxonomy, DetectorConfig, DiagCode,
        Diagnostic, Event, EventKind, EventSink, FaultKind, FaultLevel, FaultReport, LintReport,
        MemorySink, Mode, MonitorClass, MonitorId, MonitorSpec, MonitorState, Nanos, PathExpr, Pid,
        PredictMode, PredictedViolation, RuleId, Severity, VClock, Violation, ViolationSink,
    };
    pub use rmon_net::{DetectionService, RemoteBackend, RemoteConfig};
    pub use rmon_rt::{
        BoundedBuffer, BufferBug, CheckerHandle, Monitor, MonitorError, OperationCell, OrderPolicy,
        ResourceAllocator, RtFault, Runtime, RuntimeSnapshotProvider,
    };
    pub use rmon_sim::{
        run_plain, run_with_backend, run_with_backend_checkpointed, run_with_detection,
        InjectionPlan, Script, Sim, SimBuilder, SimConfig,
    };
    pub use rmon_storage::{replay_dir, DurableSink, FsyncPolicy, OplogConfig, ReplayOutcome};
    pub use rmon_workloads::{
        run_soak, AllocatorMix, PcWorkload, Philosophers, ReadersWriters, SoakConfig,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_compile() {
        use crate::prelude::*;
        let _ = DetectorConfig::default();
        assert_eq!(taxonomy().len(), 21);
    }
}
