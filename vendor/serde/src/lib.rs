//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no registry access, so this crate provides
//! just enough of serde's trait vocabulary for the `rmon` workspace to
//! compile: `Serialize`/`Deserialize` traits, the `Serializer`/
//! `Deserializer` driver traits with the handful of methods the
//! workspace calls (`serialize_str`, `collect_debug`,
//! `deserialize_string`), and error traits with `custom`. No real data
//! format ships in-tree, so none of the run-time paths are exercised.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization-side error vocabulary.
pub mod ser {
    use std::fmt;

    /// Trait for serializer errors, mirroring `serde::ser::Error`.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error vocabulary.
pub mod de {
    use std::fmt;

    /// Trait for deserializer errors, mirroring `serde::de::Error`.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A type that can be serialized through a [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format driver, mirroring the subset of `serde::Serializer`
/// the workspace uses.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serializes any `Debug` value via its debug representation; the
    /// shim derive lowers every `#[derive(Serialize)]` to this call.
    fn collect_debug<T: fmt::Debug + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be deserialized through a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data-format driver, mirroring the subset of `serde::Deserializer`
/// the workspace uses.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Deserializes a string.
    fn deserialize_string(self) -> Result<String, Self::Error>;

    /// Rejects the request; the shim derive lowers every
    /// `#[derive(Deserialize)]` to this call.
    fn unsupported<T>(self) -> Result<T, Self::Error> {
        Err(<Self::Error as de::Error>::custom(
            "deserialization is not supported by the offline serde shim",
        ))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}
