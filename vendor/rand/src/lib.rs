//! Offline stand-in for `rand`.
//!
//! A SplitMix64 generator behind the `rand 0.8` names the workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer ranges. Determinism under a fixed
//! seed is the property the simulator relies on; statistical quality
//! beyond SplitMix64 is not required.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive integer range.
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(1u16..=4);
            assert!((1..=4).contains(&y));
        }
        let z = rng.gen_range(5u32..=5);
        assert_eq!(z, 5);
    }
}
