//! Offline stand-in for `serde_derive`.
//!
//! Emits trivial trait impls: `Serialize` forwards to the type's
//! `Debug` representation via `Serializer::collect_debug`, and
//! `Deserialize` reports "unsupported". This is enough for the `rmon`
//! workspace, which annotates types for future wire formats but never
//! round-trips them through a real serializer in-tree.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union`
/// keyword. Attribute groups and visibility modifiers are skipped
/// naturally because their contents never appear as top-level idents.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            if p.as_char() == '<' {
                                panic!("serde shim derive does not support generic type `{name}`");
                            }
                        }
                        return name;
                    }
                    other => panic!("serde shim derive: expected type name, found {other:?}"),
                }
            }
        }
    }
    panic!("serde shim derive: no struct/enum/union found")
}

/// Derives the shim `Serialize` (delegates to `Debug`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\
                 -> ::core::result::Result<S::Ok, S::Error> {{\
                 serializer.collect_debug(self)\
             }}\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Derives the shim `Deserialize` (always errors at run time).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\
                 -> ::core::result::Result<Self, D::Error> {{\
                 deserializer.unsupported()\
             }}\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}
