//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! That narrows crossbeam's multi-consumer channels to the
//! single-consumer shape the workspace actually uses (one checker
//! thread draining one report stream).

/// Multi-producer channels over `std::sync::mpsc`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half; cloneable across threads.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterates over received values until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41u32).unwrap();
            tx.clone().send(1).unwrap();
            assert_eq!(rx.try_recv().unwrap() + rx.try_recv().unwrap(), 42);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            drop(tx);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }
    }
}
