//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! That narrows crossbeam's multi-consumer channels to the
//! single-consumer shape the workspace actually uses (worker inboxes
//! and report streams, each drained by exactly one thread).

/// Multi-producer channels over `std::sync::mpsc`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderImpl::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel with capacity `cap`: once `cap`
    /// messages are in flight, `send` blocks until the receiver drains
    /// one — the backpressure shape crossbeam's bounded channels give.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(SenderImpl::Bounded(tx)), Receiver(rx))
    }

    /// The sending half; cloneable across threads. Like crossbeam (and
    /// unlike raw `std::sync::mpsc`), the same type serves bounded and
    /// unbounded channels.
    #[derive(Debug)]
    pub struct Sender<T>(SenderImpl<T>);

    #[derive(Debug)]
    enum SenderImpl<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderImpl::Unbounded(tx) => SenderImpl::Unbounded(tx.clone()),
                SenderImpl::Bounded(tx) => SenderImpl::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; on a bounded channel this blocks while the
        /// channel is full. Fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderImpl::Unbounded(tx) => tx.send(value),
                SenderImpl::Bounded(tx) => tx.send(value),
            }
        }

        /// Attempts to send without blocking: `Full` reports channel
        /// pressure on a bounded channel (an unbounded channel is never
        /// full), `Disconnected` that the receiver is gone. Mirrors
        /// crossbeam's `Sender::try_send`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderImpl::Unbounded(tx) => {
                    tx.send(value).map_err(|SendError(v)| TrySendError::Disconnected(v))
                }
                SenderImpl::Bounded(tx) => tx.try_send(value),
            }
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterates over received values until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41u32).unwrap();
            tx.clone().send(1).unwrap();
            assert_eq!(rx.try_recv().unwrap() + rx.try_recv().unwrap(), 42);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            drop(tx);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }

        #[test]
        fn bounded_holds_capacity_then_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1u32).unwrap();
            tx.clone().send(2).unwrap();
            // Capacity reached: drain from another thread while a third
            // value is being pushed.
            let t = std::thread::spawn(move || tx.send(3));
            assert_eq!(rx.recv().unwrap(), 1);
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }

        #[test]
        fn bounded_zero_capacity_is_clamped_to_one() {
            let (tx, rx) = bounded(0);
            // With a true rendezvous channel this send would deadlock;
            // the clamp makes capacity-0 behave as capacity-1.
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }
    }
}
