//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — groups,
//! throughput annotation, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a plain wall-clock loop instead of criterion's
//! statistical machinery. Each benchmark warms up briefly, sizes its
//! batches from the warm-up estimate, runs for a bounded budget
//! (`measurement_time`, capped by `RMON_BENCH_BUDGET_MS`, default
//! 1000 ms), and prints mean/min per-iteration timings.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        self.benchmark_group("ungrouped").bench_function(id, f);
    }
}

/// Volume processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted; the shim uses it to split
    /// the time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput volume.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget(), self.sample_size);
        f(&mut b);
        b.report(&id.into().id, self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.budget(), self.sample_size);
        f(&mut b, input);
        b.report(&id.id, self.throughput);
        self
    }

    /// Ends the group (no-op beyond the API contract).
    pub fn finish(self) {}

    fn budget(&self) -> Duration {
        let cap = std::env::var("RMON_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1_000);
        self.measurement_time.min(Duration::from_millis(cap.max(10)))
    }
}

/// Runs and times the measured closure.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(budget: Duration, sample_size: usize) -> Self {
        Bencher { budget, sample_size, samples: Vec::new(), iters_per_sample: 0 }
    }

    /// Times `f`, called repeatedly; the return value is black-boxed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate per-iteration cost on ~10% of the budget.
        let warmup_budget = self.budget / 10;
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;

        // Size each sample so `sample_size` samples fill the budget.
        let sample_budget = (self.budget - warmup_budget) / self.sample_size as u32;
        let iters =
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        self.iters_per_sample = iters;

        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
            if run_start.elapsed() > self.budget * 2 {
                break; // the estimate was off; stop rather than overrun
            }
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            println!("  {id:<40} (no samples — Bencher::iter never called)");
            return;
        }
        let per_iter = |d: &Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
        let rate = match throughput {
            Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
            Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / mean),
            None => String::new(),
        };
        println!(
            "  {id:<40} mean {:>10}  min {:>10}  ({} samples x {} iters){rate}",
            fmt_time(mean),
            fmt_time(min),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("RMON_BENCH_BUDGET_MS", "30");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
