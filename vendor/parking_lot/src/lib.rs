//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! ergonomics: guard-returning `lock`/`read`/`write` without poison
//! `Result`s, and a `Condvar` that takes `&mut MutexGuard`. Poisoned
//! locks are transparently recovered (`into_inner`), matching
//! parking_lot's "no poisoning" semantics closely enough for the
//! workspace's monitors, whose invariants are re-validated by the
//! detector anyway.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (parking_lot-style API over std).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)))
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]; the inner `Option` lets [`Condvar::wait`]
/// temporarily take the std guard by value.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock (parking_lot-style API over std).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }
}

/// RAII shared-read guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive-write guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] in place
/// (parking_lot-style `&mut guard` API).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, releasing the guard's mutex while asleep.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, res) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_guard_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(0u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
