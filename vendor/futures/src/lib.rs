//! Offline shim for the slice of `futures` 0.3 the `rmon` workspace
//! uses: [`executor::block_on`] and a small fixed-size
//! [`executor::ThreadPool`] with `spawn_ok`.
//!
//! The build environment has no crates-registry access, so this crate
//! hand-rolls the two executor entry points over `std` only:
//!
//! * `block_on(fut)` drives a future to completion on the calling
//!   thread with a thread-parking waker — the synchronous bridge the
//!   blocking instrumentation modes use to await delivery.
//! * `ThreadPool` runs `'static + Send` futures to completion on a
//!   fixed set of worker threads. Tasks that return `Pending` park in
//!   the task itself; their waker re-enqueues them on the pool's
//!   injector queue. This is a plain work-queue executor (one global
//!   queue, no work stealing) — exactly enough to drive the
//!   `AsyncBackend` shard drainers, and nothing more.
//!
//! Keep this shim minimal: grow it only when workspace code actually
//! needs more of the upstream surface.

#![warn(missing_docs)]

/// Future executors: [`block_on`](executor::block_on) and
/// [`ThreadPool`](executor::ThreadPool).
pub mod executor {
    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
    use std::thread::{self, JoinHandle, Thread};

    /// Runs `fut` to completion on the calling thread, parking between
    /// polls until the future's waker fires.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        // Pinning on the stack: the future never moves after this.
        let mut fut = fut;
        // SAFETY: `fut` is a local that is never moved again; the
        // pinned reference does not outlive it.
        let mut fut = unsafe { Pin::new_unchecked(&mut fut) };
        let parker = Arc::new(ThreadParker::current());
        let waker = thread_waker(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        loop {
            if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
                return out;
            }
            parker.park();
        }
    }

    /// Unpark-token parker for [`block_on`]: a wake that lands before
    /// the park is not lost.
    struct ThreadParker {
        thread: Thread,
        notified: AtomicBool,
    }

    impl ThreadParker {
        fn current() -> Self {
            ThreadParker { thread: thread::current(), notified: AtomicBool::new(false) }
        }

        fn park(&self) {
            while !self.notified.swap(false, Ordering::Acquire) {
                thread::park();
            }
        }

        fn unpark(&self) {
            self.notified.store(true, Ordering::Release);
            self.thread.unpark();
        }
    }

    fn thread_waker(parker: Arc<ThreadParker>) -> Waker {
        unsafe fn clone(data: *const ()) -> RawWaker {
            unsafe { Arc::increment_strong_count(data as *const ThreadParker) };
            RawWaker::new(data, &VTABLE)
        }
        unsafe fn wake(data: *const ()) {
            let parker = unsafe { Arc::from_raw(data as *const ThreadParker) };
            parker.unpark();
        }
        unsafe fn wake_by_ref(data: *const ()) {
            unsafe { (*(data as *const ThreadParker)).unpark() };
        }
        unsafe fn drop_waker(data: *const ()) {
            unsafe { drop(Arc::from_raw(data as *const ThreadParker)) };
        }
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);
        // SAFETY: the vtable functions uphold the RawWaker contract —
        // clone bumps the Arc, wake/drop consume exactly one count.
        unsafe { Waker::from_raw(RawWaker::new(Arc::into_raw(parker) as *const (), &VTABLE)) }
    }

    type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

    /// One spawned task: the future plus the bookkeeping its waker
    /// needs to re-enqueue it.
    struct Task {
        /// `None` once the future has completed.
        fut: Mutex<Option<BoxFuture>>,
        pool: Arc<PoolShared>,
        /// Wake-coalescing flag: set while the task is queued or being
        /// polled, so concurrent wakes enqueue it at most once.
        queued: AtomicBool,
    }

    impl Task {
        /// Re-enqueues the task unless it is already queued.
        fn schedule(self: &Arc<Self>) {
            if !self.queued.swap(true, Ordering::AcqRel) {
                self.pool.push(Arc::clone(self));
            }
        }
    }

    fn task_waker(task: Arc<Task>) -> Waker {
        unsafe fn clone(data: *const ()) -> RawWaker {
            unsafe { Arc::increment_strong_count(data as *const Task) };
            RawWaker::new(data, &VTABLE)
        }
        unsafe fn wake(data: *const ()) {
            let task = unsafe { Arc::from_raw(data as *const Task) };
            task.schedule();
        }
        unsafe fn wake_by_ref(data: *const ()) {
            let task = unsafe { &*(data as *const Task) };
            // Temporarily reconstruct an Arc without consuming the
            // caller's reference count.
            unsafe { Arc::increment_strong_count(data as *const Task) };
            let task_arc = unsafe { Arc::from_raw(task as *const Task) };
            task_arc.schedule();
        }
        unsafe fn drop_waker(data: *const ()) {
            unsafe { drop(Arc::from_raw(data as *const Task)) };
        }
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);
        // SAFETY: same contract as `thread_waker`.
        unsafe { Waker::from_raw(RawWaker::new(Arc::into_raw(task) as *const (), &VTABLE)) }
    }

    /// State shared between the pool handle, its workers, and task
    /// wakers.
    struct PoolShared {
        queue: Mutex<VecDeque<Arc<Task>>>,
        available: Condvar,
        shutdown: AtomicBool,
        /// Tasks spawned but not yet run to completion (for
        /// `Drop`-time accounting only; completion is not awaitable).
        live: AtomicUsize,
    }

    impl PoolShared {
        fn push(&self, task: Arc<Task>) {
            let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push_back(task);
            drop(queue);
            self.available.notify_one();
        }

        fn pop(&self) -> Option<Arc<Task>> {
            let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(task) = queue.pop_front() {
                    return Some(task);
                }
                if self.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                queue = self.available.wait(queue).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    /// A fixed-size thread-pool executor for `'static + Send` futures.
    ///
    /// Mirrors the `futures::executor::ThreadPool` surface the
    /// workspace uses: [`new`](ThreadPool::new) and
    /// [`spawn_ok`](ThreadPool::spawn_ok). Dropping the pool stops the
    /// workers after the tasks currently in the queue finish their
    /// in-progress poll; still-pending tasks are dropped.
    pub struct ThreadPool {
        shared: Arc<PoolShared>,
        workers: Vec<JoinHandle<()>>,
    }

    impl std::fmt::Debug for ThreadPool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ThreadPool")
                .field("workers", &self.workers.len())
                .field("live_tasks", &self.live_tasks())
                .finish()
        }
    }

    impl ThreadPool {
        /// Creates a pool with one worker per available hardware
        /// thread (minimum one).
        pub fn new() -> std::io::Result<ThreadPool> {
            let n = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            Ok(ThreadPool::with_workers(n))
        }

        /// Creates a pool with exactly `workers` worker threads
        /// (clamped to at least one).
        pub fn with_workers(workers: usize) -> ThreadPool {
            let shared = Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
                live: AtomicUsize::new(0),
            });
            let workers = (0..workers.max(1))
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    thread::Builder::new()
                        .name(format!("rmon-exec-{i}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn executor worker")
                })
                .collect();
            ThreadPool { shared, workers }
        }

        /// Spawns `fut` onto the pool, to be polled to completion.
        pub fn spawn_ok<F>(&self, fut: F)
        where
            F: Future<Output = ()> + Send + 'static,
        {
            self.shared.live.fetch_add(1, Ordering::AcqRel);
            let task = Arc::new(Task {
                fut: Mutex::new(Some(Box::pin(fut))),
                pool: Arc::clone(&self.shared),
                queued: AtomicBool::new(false),
            });
            task.schedule();
        }

        /// Tasks spawned and not yet completed (observability only —
        /// racy by nature).
        pub fn live_tasks(&self) -> usize {
            self.shared.live.load(Ordering::Acquire)
        }
    }

    fn worker_loop(shared: &Arc<PoolShared>) {
        while let Some(task) = shared.pop() {
            // Clear the queued flag *before* polling: a wake that
            // arrives during the poll must re-enqueue the task.
            task.queued.store(false, Ordering::Release);
            let waker = task_waker(Arc::clone(&task));
            let mut cx = Context::from_waker(&waker);
            let mut slot = task.fut.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(fut) = slot.as_mut() {
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {
                        *slot = None;
                        shared.live.fetch_sub(1, Ordering::AcqRel);
                    }
                    Poll::Pending => {}
                }
            }
        }
    }

    impl Drop for ThreadPool {
        fn drop(&mut self) {
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.available.notify_all();
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicU32;
        use std::time::Duration;

        #[test]
        fn block_on_returns_a_ready_value() {
            assert_eq!(block_on(async { 40 + 2 }), 42);
        }

        #[test]
        fn block_on_survives_pending_then_wake() {
            struct Twice {
                polls: u32,
            }
            impl Future for Twice {
                type Output = u32;
                fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                    self.polls += 1;
                    if self.polls < 3 {
                        cx.waker().wake_by_ref();
                        Poll::Pending
                    } else {
                        Poll::Ready(self.polls)
                    }
                }
            }
            assert_eq!(block_on(Twice { polls: 0 }), 3);
        }

        #[test]
        fn block_on_waits_for_a_cross_thread_wake() {
            struct Flagged {
                flag: Arc<(Mutex<bool>, AtomicBool)>,
            }
            impl Future for Flagged {
                type Output = ();
                fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                    if self.flag.1.load(Ordering::Acquire) {
                        Poll::Ready(())
                    } else {
                        let waker = cx.waker().clone();
                        let flag = Arc::clone(&self.flag);
                        thread::spawn(move || {
                            thread::sleep(Duration::from_millis(10));
                            flag.1.store(true, Ordering::Release);
                            waker.wake();
                        });
                        Poll::Pending
                    }
                }
            }
            let flag = Arc::new((Mutex::new(false), AtomicBool::new(false)));
            block_on(Flagged { flag });
        }

        #[test]
        fn pool_runs_tasks_to_completion() {
            let pool = ThreadPool::with_workers(2);
            let count = Arc::new(AtomicU32::new(0));
            for _ in 0..64 {
                let count = Arc::clone(&count);
                pool.spawn_ok(async move {
                    count.fetch_add(1, Ordering::AcqRel);
                });
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while count.load(Ordering::Acquire) < 64 {
                assert!(std::time::Instant::now() < deadline, "pool never finished");
                thread::yield_now();
            }
        }

        #[test]
        fn pool_reschedules_pending_tasks_on_wake() {
            struct YieldOnce {
                yielded: bool,
                done: Arc<AtomicBool>,
            }
            impl Future for YieldOnce {
                type Output = ();
                fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                    if self.yielded {
                        self.done.store(true, Ordering::Release);
                        Poll::Ready(())
                    } else {
                        self.yielded = true;
                        cx.waker().wake_by_ref();
                        Poll::Pending
                    }
                }
            }
            let pool = ThreadPool::with_workers(1);
            let done = Arc::new(AtomicBool::new(false));
            pool.spawn_ok(YieldOnce { yielded: false, done: Arc::clone(&done) });
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while !done.load(Ordering::Acquire) {
                assert!(std::time::Instant::now() < deadline, "task never rescheduled");
                thread::yield_now();
            }
            assert_eq!(pool.live_tasks(), 0);
        }
    }
}
