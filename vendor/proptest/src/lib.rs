//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` runner used
//! by the `rmon` test suites: integer-range and tuple strategies,
//! `Just`, `any`, `prop_oneof!`, `prop_map`, `prop_recursive`,
//! `collection::vec`, and regex-string strategies (via a small
//! generator in [`regex_gen`]). Cases are generated from a
//! deterministic per-test PRNG; there is no shrinking — a failing case
//! panics with the offending values via `prop_assert!` messages.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod regex_gen;

/// Deterministic SplitMix64 stream used by the runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for a named test, deterministically.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Runner configuration (`cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for
    /// sub-terms and returns the strategy for composite terms. `depth`
    /// bounds nesting; the size/branch hints of upstream proptest are
    /// accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth.max(1) {
            cur = Union::new(vec![leaf.clone(), f(cur).boxed()]).boxed();
        }
        cur
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Strategy producing a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized + 'static {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for an [`Arbitrary`] type; created by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Regex-string strategy: a `&'static str` pattern generates matching
/// strings through [`regex_gen`].
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors of `element` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports of a property-test file.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// One uniform choice among the given strategies (boxed internally).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn oneof_maps_and_tuples(v in prop_oneof![
            (0u16..5).prop_map(|n| n as u64),
            Just(99u64),
        ], pair in (any::<bool>(), 0u16..3)) {
            prop_assert!(v < 5 || v == 99);
            prop_assert!(pair.1 < 3);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u16..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        let leaf = prop_oneof![Just("a".to_string()), Just("b".to_string())];
        let expr = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(x, y)| format!("({x};{y})"))
        });
        let mut rng = crate::TestRng::deterministic("recursion");
        for _ in 0..200 {
            let s = expr.generate(&mut rng);
            assert!(s.contains('a') || s.contains('b'));
            assert!(s.matches('(').count() <= 15);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0u32..1000, 1..8);
        let mut r1 = crate::TestRng::deterministic("same");
        let mut r2 = crate::TestRng::deterministic("same");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
