//! A tiny regex-driven string *generator* (not matcher) backing the
//! `&str` strategy, covering the pattern subset the test suites use:
//! literals, `( … )` groups, `|` alternation, `[ … ]` classes (with
//! `a-z` ranges), the postfix operators `* + ? {m} {m,} {m,n}`, `.`,
//! and the escapes `\d` `\w` `\s` `\Px`/`\P{x}` (complement category —
//! generated as arbitrary printable text) plus escaped literals.

use crate::TestRng;

/// Unbounded repetitions (`*`, `+`, `{m,}`) draw counts up to this.
const MAX_UNBOUNDED_REPEAT: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// One uniform choice from a non-empty set.
    Class(Vec<char>),
    /// Any printable char (used for `.` and `\PC`-style escapes).
    AnyPrintable,
    Seq(Vec<Node>),
    Alt(Vec<Node>),
    Rep(Box<Node>, u32, u32),
}

/// Generates one string matching `pattern`.
///
/// Panics on syntax outside the supported subset — a property test
/// with an unsupported pattern should fail loudly, not silently
/// generate garbage.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let node = Parser { chars: pattern.chars().collect(), pos: 0 }.parse();
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn parse(mut self) -> Node {
        let node = self.parse_alt();
        assert!(
            self.pos == self.chars.len(),
            "regex_gen: trailing input at {} in {:?}",
            self.pos,
            self.chars.iter().collect::<String>()
        );
        node
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn parse_alt(&mut self) -> Node {
        let mut arms = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            arms.push(self.parse_seq());
        }
        if arms.len() == 1 {
            arms.pop().expect("one arm")
        } else {
            Node::Alt(arms)
        }
    }

    fn parse_seq(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == ')' || c == '|' {
                break;
            }
            items.push(self.parse_repeated());
        }
        if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Node::Seq(items)
        }
    }

    fn parse_repeated(&mut self) -> Node {
        let mut node = self.parse_atom();
        while let Some(c) = self.peek() {
            let (min, max) = match c {
                '*' => (0, MAX_UNBOUNDED_REPEAT),
                '+' => (1, MAX_UNBOUNDED_REPEAT),
                '?' => (0, 1),
                '{' => {
                    self.bump();
                    let min = self.parse_int();
                    let max = match self.peek() {
                        Some(',') => {
                            self.bump();
                            if self.peek() == Some('}') {
                                min + MAX_UNBOUNDED_REPEAT
                            } else {
                                self.parse_int()
                            }
                        }
                        _ => min,
                    };
                    assert!(self.bump() == '}', "regex_gen: unclosed {{m,n}}");
                    node = Node::Rep(Box::new(node), min, max);
                    continue;
                }
                _ => break,
            };
            self.bump();
            node = Node::Rep(Box::new(node), min, max);
        }
        node
    }

    fn parse_int(&mut self) -> u32 {
        let mut n = 0u32;
        let mut any = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n * 10 + d;
                any = true;
                self.bump();
            } else {
                break;
            }
        }
        assert!(any, "regex_gen: expected integer in repetition");
        n
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump() {
            '(' => {
                // Non-capturing group marker `?:` is accepted and ignored.
                if self.peek() == Some('?') && self.chars.get(self.pos + 1) == Some(&':') {
                    self.bump();
                    self.bump();
                }
                let inner = self.parse_alt();
                assert!(self.bump() == ')', "regex_gen: unclosed group");
                inner
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::AnyPrintable,
            c => Node::Lit(c),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut set = Vec::new();
        loop {
            let c = self.bump();
            match c {
                ']' => break,
                '\\' => set.push(self.bump()),
                _ => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&e| e != ']')
                    {
                        self.bump();
                        let end = self.bump();
                        assert!(c <= end, "regex_gen: inverted class range");
                        for x in c..=end {
                            set.push(x);
                        }
                    } else {
                        set.push(c);
                    }
                }
            }
        }
        assert!(!set.is_empty(), "regex_gen: empty character class");
        Node::Class(set)
    }

    fn parse_escape(&mut self) -> Node {
        match self.bump() {
            'd' => Node::Class(('0'..='9').collect()),
            'w' => {
                let mut set: Vec<char> = ('a'..='z').collect();
                set.extend('A'..='Z');
                set.extend('0'..='9');
                set.push('_');
                Node::Class(set)
            }
            's' => Node::Class(vec![' ', '\t']),
            // Complement Unicode category (`\PC`, `\P{C}` …): the suites
            // only use "not control", so generate arbitrary printable text.
            'P' | 'p' => {
                if self.peek() == Some('{') {
                    while self.bump() != '}' {}
                } else {
                    self.bump();
                }
                Node::AnyPrintable
            }
            c => Node::Lit(c),
        }
    }
}

/// A few multi-byte printable characters mixed into `AnyPrintable`
/// output so parsers under test see non-ASCII input.
const NON_ASCII: [char; 8] = ['é', 'λ', 'ß', '中', '→', '∀', '𝕏', '🦀'];

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(set) => out.push(set[rng.below(set.len())]),
        Node::AnyPrintable => {
            if rng.below(8) == 0 {
                out.push(NON_ASCII[rng.below(NON_ASCII.len())]);
            } else {
                out.push(char::from(b' ' + rng.below(95) as u8));
            }
        }
        Node::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Alt(arms) => emit(&arms[rng.below(arms.len())], rng, out),
        Node::Rep(inner, min, max) => {
            let n = min + rng.below((max - min + 1) as usize) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("regex_gen")
    }

    #[test]
    fn literal_sequences() {
        assert_eq!(generate("abc", &mut rng()), "abc");
    }

    #[test]
    fn class_and_repetition() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[abc]{2,4}", &mut r);
            assert!((2..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
    }

    #[test]
    fn optional_groups_and_alternation() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("(foo|bar)?x", &mut r);
            assert!(["x", "foox", "barx"].contains(&s.as_str()));
        }
    }

    #[test]
    fn printable_star_never_emits_control() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("\\PC*", &mut r);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn path_expression_pattern_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("(path )?[abc]([;|][abc]){0,4}[*+?]{0,2}( end)?", &mut r);
            assert!(s.contains('a') || s.contains('b') || s.contains('c'), "{s:?}");
        }
    }

    #[test]
    fn class_ranges_and_digit_escape() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("[a-f]\\d", &mut r);
            let mut it = s.chars();
            assert!(('a'..='f').contains(&it.next().expect("letter")));
            assert!(it.next().expect("digit").is_ascii_digit());
        }
    }
}
