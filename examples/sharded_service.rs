//! Sharded detection backend: many monitors, per-thread ingestion
//! handles, batched checking.
//!
//! Run with: `cargo run --example sharded_service`
//!
//! The paper's prototype funnels every monitor through one checking
//! routine. This example hosts a *fleet* — eight single-unit resource
//! allocators — on a runtime whose detection backend is the sharded
//! service (`ShardedBackend` behind the `DetectionBackend` trait):
//! monitors partition across worker shards by a stable hash of their
//! id, each observing thread ingests through its own `ProducerHandle`
//! (a private batch buffer — no mutex shared between the threads), and
//! violations aggregate through the per-shard collector.
//!
//! The walkthrough shows (1) a clean fleet staying clean under two
//! concurrent producer threads, (2) the per-shard ingestion counters,
//! and (3) a user-process fault — a duplicate request — surfacing
//! through the batched path exactly as it would inline.

use rmon::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MonitorError> {
    // 1. A runtime whose detector is the sharded service: 4 worker
    //    shards, per-thread handles flushing batches of 16 events.
    let rt = Runtime::builder(DetectorConfig::without_timeouts())
        .backend_with(|cfg, _clock| {
            Arc::new(ShardedBackend::new(cfg, ServiceConfig::new(4)).with_batch(16))
        })
        // The injected double request self-deadlocks by design; a short
        // park timeout keeps the walkthrough snappy.
        .park_timeout(std::time::Duration::from_millis(200))
        .build();
    println!("backend               : {}", rt.backend_label());

    // 2. The fleet: 8 resource allocators, each its own monitor,
    //    spread across the shards by MonitorId hash.
    let fleet: Vec<ResourceAllocator> =
        (0..8).map(|i| ResourceAllocator::new(&rt, &format!("printer-{i}"), 1)).collect();

    // 3. Clean traffic from two worker threads over disjoint halves —
    //    each thread observes through its own producer handle.
    let (left, right) = fleet.split_at(4);
    let l: Vec<_> = left.to_vec();
    let r: Vec<_> = right.to_vec();
    let t1 = std::thread::spawn(move || -> Result<(), MonitorError> {
        for _ in 0..50 {
            for al in &l {
                al.request()?;
                al.release()?;
            }
        }
        Ok(())
    });
    let t2 = std::thread::spawn(move || -> Result<(), MonitorError> {
        for _ in 0..50 {
            for al in &r {
                al.request()?;
                al.release()?;
            }
        }
        Ok(())
    });
    t1.join().expect("left worker")?;
    t2.join().expect("right worker")?;

    let clean = rt.checkpoint_now();
    let stats = rt.service_stats();
    println!("events recorded       : {}", rt.events_recorded());
    println!("clean fleet verdict   : {}", if clean.is_clean() { "CLEAN" } else { "FAULTY" });
    for (i, s) in stats.shards.iter().enumerate() {
        println!(
            "shard {i}               : {} monitors, {} batches, {} events",
            s.monitors, s.batches, s.events_observed
        );
    }
    assert!(clean.is_clean());
    assert_eq!(stats.shards.iter().map(|s| s.monitors).sum::<u64>(), 8);

    // 4. Fault U3: request a right this thread already holds. The event
    //    flows through the batched sharded path and comes back as an
    //    ST-8a violation from the collector.
    fleet[3].request()?;
    let _ = fleet[3].request(); // duplicate — self-deadlocks after report
    let vs = rt.realtime_violations();
    println!("injected fault        : duplicate request on printer-3");
    for v in &vs {
        println!("  detected            : {v}");
    }
    assert!(vs.iter().any(|v| v.rule == RuleId::St8DuplicateRequest));
    println!("verdict               : FAULT DETECTED (as intended)");
    Ok(())
}
