# A small, well-formed fleet in the offline spec text format.
# Lint it with:
#   cargo run --release -p rmon-bench --bin rmon-lint examples/specs/fleet.mspec

monitor mailbox
  class coordinator
  capacity 8
  proc send send
  proc receive receive
  cond buffer_full buffer_full
  cond buffer_empty buffer_empty
  assert entry_queue_at_most 64
end

monitor printer
  class allocator
  capacity 2
  proc acquire request
  proc done release
  cond free unit_available
  order path (acquire ; done)* end
  assert available_at_least 1
  assert cond_queue_at_most free 16
end

monitor ledger
  class manager
  proc operate plain
end
