# A deliberately defective fleet: CI lints this file *expecting*
# failure, pinning the linter's non-zero exit path.
#
#   RML016 - the call order below does not parse
#   RML020 - a coordinator without a Receive procedure
#   RML021 - no declared capacity
#   RML033 - reserve assertion over an R# counter that does not exist

monitor broken_channel
  class coordinator
  proc send send
  order path (send ; ghost* end
  assert available_at_least 3
end

# RML040 - the same name bound to a structurally different declaration.
monitor broken_channel
  class manager
  proc operate plain
end
