//! The fault-injection coverage experiment, in miniature: inject every
//! one of the paper's 21 concurrency-control fault classes into the
//! deterministic simulator and show that each is detected (the paper's
//! robustness evaluation; the full campaign is
//! `cargo run -p rmon-bench --bin coverage --release`).
//!
//! Run with: `cargo run --example sim_injection`

use rmon::prelude::*;
use rmon::workloads::faultset;

fn main() {
    println!("{:<4} {:<18} {:<9} {:<9} rules triggered", "id", "level", "injected", "detected");
    println!("{}", "-".repeat(78));
    let mut all_detected = true;
    for fault in FaultKind::ALL {
        let outcome = faultset::run_case(fault, 0);
        let rules: Vec<String> = outcome.rules_hit.iter().map(|r| r.to_string()).collect();
        println!(
            "{:<4} {:<18} {:<9} {:<9} {}",
            fault.code(),
            fault.level().to_string(),
            outcome.injected,
            outcome.detected,
            rules.join(", ")
        );
        all_detected &= outcome.injected && outcome.detected;
    }
    println!("{}", "-".repeat(78));
    println!(
        "paper claim \"all injected faults are detected\": {}",
        if all_detected { "REPRODUCED" } else { "NOT reproduced" }
    );
    assert!(all_detected);
}
