//! Scheduled detection backend: sharding plus a per-shard checkpoint
//! scheduler that catches timer faults *without* anyone calling the
//! checking routine.
//!
//! Run with: `cargo run --example scheduled_service`
//!
//! The paper's prototype detects non-termination and starvation through
//! timers — but only when the periodically-invoked checking routine
//! runs, suspending every monitor operation while it does. The
//! `ScheduledBackend` moves that responsibility into the detection
//! layer itself: a ticker thread sweeps the worker shards round-robin,
//! and each visit checks one shard's timers against its shard-local
//! checking lists. No global pause, no caller in the loop.
//!
//! The walkthrough runs a clean fleet, then parks a thread holding an
//! access right past `Tlimit` — and the *background sweeps alone*
//! surface the ST-8c hold-timeout violation, before any
//! `checkpoint_now` is invoked.

use rmon::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), MonitorError> {
    // 1. Tight timer bounds on the event clock; the scheduler visits a
    //    shard every millisecond (full sweep = shards × 1 ms). The
    //    backend factory receives the runtime recorder's clock, so
    //    sweep timestamps and event timestamps share one axis.
    let cfg = DetectorConfig::builder()
        .t_max(Nanos::from_secs(100))
        .t_io(Nanos::from_secs(100))
        .t_limit(Nanos::from_millis(5))
        .build();
    let rt = Runtime::builder(cfg)
        .backend_with(|cfg, clock| {
            Arc::new(ScheduledBackend::with_clock(
                cfg,
                ServiceConfig::new(4),
                SchedulerConfig::new(Duration::from_millis(1)),
                clock,
            ))
        })
        .park_timeout(Duration::from_millis(200))
        .build();
    println!("backend               : {}", rt.backend_label());

    // 2. Clean traffic over a small fleet stays clean under the sweeps.
    let fleet: Vec<ResourceAllocator> =
        (0..4).map(|i| ResourceAllocator::new(&rt, &format!("scanner-{i}"), 1)).collect();
    for _ in 0..25 {
        for al in &fleet {
            al.request()?;
            al.release()?;
        }
    }
    assert!(rt.checkpoint_now().is_clean());
    println!("clean fleet verdict   : CLEAN ({} events)", rt.events_recorded());

    // 3. Fault: hold an access right past Tlimit. Nobody calls the
    //    checking routine — the per-shard scheduler must catch it.
    fleet[1].request()?;
    println!("injected fault        : scanner-1 held past Tlimit = 5 ms");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut vs = rt.realtime_violations();
    while !vs.iter().any(|v| v.rule == RuleId::St8HoldTimeout)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
        vs = rt.realtime_violations();
    }
    for v in vs.iter().filter(|v| v.rule == RuleId::St8HoldTimeout).take(1) {
        println!("  detected            : {v}");
    }
    assert!(
        vs.iter().any(|v| v.rule == RuleId::St8HoldTimeout),
        "background sweeps must flag the expired hold: {vs:?}"
    );
    println!("verdict               : FAULT DETECTED by the scheduler (as intended)");
    fleet[1].release()?;
    Ok(())
}
