//! Procedure-level faults: a bounded buffer whose guards are wrong
//! (§2.2 II of the paper), detected by Algorithm-2 (ST-7).
//!
//! Run with: `cargo run --example buggy_buffer`
//!
//! Four buggy buffers are exercised, one per fault class:
//!
//! * P1 — `send` delayed although the buffer is not full   → ST-7c
//! * P2 — `receive` delayed although it is not empty       → ST-7d
//! * P3 — `receive` proceeds although it is empty          → ST-7ab
//! * P4 — `send` proceeds although it is full              → ST-7ab

use rmon::prelude::*;
use std::time::Duration;

fn runtime() -> Runtime {
    // Short park timeout: spuriously delayed calls give up quickly.
    Runtime::builder(DetectorConfig::without_timeouts())
        .park_timeout(Duration::from_millis(200))
        .build()
}

fn report(tag: &str, rt: &Runtime) {
    let report = rt.checkpoint_now();
    let rules: Vec<String> = report.violations.iter().map(|v| v.rule.to_string()).collect();
    println!("{tag:<28} detected: {:<5} rules: {:?}", !report.is_clean(), rules);
    assert!(!report.is_clean(), "{tag}: the fault must be detected");
}

fn main() {
    // P3: receive from an empty buffer.
    let rt = runtime();
    let buf = BoundedBuffer::<u32>::with_bug(&rt, "b3", 4, BufferBug::MissingReceiveDelay, 0);
    let hole = buf.receive().expect("call itself succeeds");
    println!("P3 receive from empty yielded: {hole:?}");
    report("P3 missing receive delay", &rt);

    // P4: send into a full buffer.
    let rt = runtime();
    let buf = BoundedBuffer::with_bug(&rt, "b4", 1, BufferBug::MissingSendDelay, 0);
    buf.send(1).expect("fills the buffer");
    buf.send(2).expect("proceeds despite full buffer (the bug)");
    report("P4 missing send delay", &rt);

    // P1: spurious send delay (the sender waits although space is
    // free; it times out since nothing will signal it).
    let rt = runtime();
    let buf = BoundedBuffer::with_bug(&rt, "b1", 4, BufferBug::SpuriousSendDelay, 0);
    let b = buf.clone();
    let h = std::thread::spawn(move || b.send(7));
    let _ = h.join().expect("sender thread");
    report("P1 spurious send delay", &rt);

    // P2: spurious receive delay.
    let rt = runtime();
    let buf = BoundedBuffer::with_bug(&rt, "b2", 4, BufferBug::SpuriousReceiveDelay, 0);
    buf.send(9).expect("one item in");
    let b = buf.clone();
    let h = std::thread::spawn(move || b.receive());
    let _ = h.join().expect("receiver thread");
    report("P2 spurious receive delay", &rt);

    println!("all four procedure-level fault classes detected");
}
