//! Static spec analysis: catching declaration faults before a single
//! event is recorded.
//!
//! Run with: `cargo run --example spec_lint`
//!
//! 1. `monitor_spec!` declarations are conflict-checked at compile
//!    time (duplicate names, role typos) and vetted by the analyzer at
//!    first use — a well-formed one lints clean.
//! 2. The analyzer turns a malformed hand-assembled declaration into
//!    coded, severity-ranked `RML0xx` diagnostics.
//! 3. `DetectorConfig::strict_specs` arms the same analysis as a
//!    registration gate: `try_register` rejects Error-level specs.
//! 4. The `.mspec` text format lints whole fleet files offline — the
//!    same path the `rmon-lint` CLI drives.

use rmon::core::detect::Detector;
use rmon::core::spec::textfmt;
use rmon::core::{MonitorId, MonitorState, Nanos, StateAssertion};
use rmon::prelude::*;
use std::sync::Arc;

fn main() {
    // ----- 1. a vetted declaration ------------------------------------
    let pool = monitor_spec! {
        name: "pool",
        class: ResourceAllocator,
        capacity: 2,
        procedures: { request: Request, release: Release },
        conditions: { unit_available: UnitAvailable },
        call_order: "path (request ; release)* end",
        assertions: [StateAssertion::AvailableAtLeast(1)],
    };
    let report = analyze(&pool);
    println!("pool: {report}");
    assert!(report.is_clean());

    // ----- 2. the analyzer describing a broken declaration ------------
    let mut broken = pool.clone();
    broken.name = "broken_pool".into();
    broken.capacity = None; // UnitAvailable now counts nothing (RML024)
    broken.assertions.push(StateAssertion::AvailableAtLeast(3)); // RML033
    let report = analyze(&broken);
    println!("{report}");
    assert!(!report.is_clean());

    // ----- 3. the strict registration gate ----------------------------
    let cfg = DetectorConfig::builder().strict_specs(true).build();
    let mut det = Detector::new(cfg);
    let bad = monitor_spec! {
        name: "sink",
        class: OperationManager,
        procedures: { operate: Plain },
    };
    // Sabotage after construction: managers carry no capacity (RML025).
    let mut bad = bad;
    bad.capacity = Some(4);
    let rejected =
        det.try_register(MonitorId::new(0), Arc::new(bad), &MonitorState::new(0), Nanos::ZERO);
    // RML025 is Lint-level: vetted, reported, but not an Error — the
    // registration goes through. Error-level findings would not.
    println!("manager with capacity registered: {}", rejected.is_ok());
    assert!(rejected.is_ok());
    let mailbox = MonitorSpec { capacity: None, ..MonitorSpec::bounded_buffer("mailbox", 8).spec };
    let rejected =
        det.try_register(MonitorId::new(1), Arc::new(mailbox), &MonitorState::new(2), Nanos::ZERO);
    match rejected {
        Err(report) => println!("capacity-less coordinator rejected:\n{report}"),
        Ok(()) => unreachable!("RML021 is an Error; strict gate must reject"),
    }

    // ----- 4. fleet files, offline ------------------------------------
    let file = textfmt::parse_specs(include_str!("specs/fleet.mspec"))
        .expect("shipped fleet file is structurally well-formed");
    let mut report = file.diagnostics;
    report
        .merge(analyze_all(file.specs.iter().map(|s| (s.name.clone(), Some(Arc::new(s.clone()))))));
    println!("examples/specs/fleet.mspec: {report}");
    assert!(report.is_clean());

    let bad = textfmt::parse_specs(include_str!("specs/bad.mspec"))
        .expect("structural shape is fine; the *content* is broken");
    let mut report = bad.diagnostics;
    report
        .merge(analyze_all(bad.specs.iter().map(|s| (s.name.clone(), Some(Arc::new(s.clone()))))));
    println!("examples/specs/bad.mspec: {report}");
    assert!(report.has_errors(), "the bad fleet must fail the lint");
    println!("spec lint: faults caught before any event was recorded");
}
