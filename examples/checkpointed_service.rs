//! Checkpointed detection service: per-shard Algorithm-1/2 sweeps with
//! no stop-the-world barrier.
//!
//! Run with: `cargo run --example checkpointed_service`
//!
//! The paper's checking routine suspends every monitor while it
//! compares a live state snapshot `s_t` against the replayed window
//! (§3.3.2). This walkthrough shows the same comparison as a *backend
//! capability*: the runtime registers itself as the backend's
//! `SnapshotProvider` at build time, and from then on
//! `CheckpointScope`-addressed checkpoints — one monitor, one shard, or
//! everything — run the full Algorithm-1/2/timer check by reading
//! monitor state under each monitor's own lock. The `ScheduledBackend`
//! ticker does the same thing in the background, shard by shard, so
//! faults visible in the observed state are caught without anyone
//! calling the checking routine.

use rmon::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), MonitorError> {
    // 1. A scheduled backend over 4 shards, sweeping one shard per
    //    millisecond. `Tlimit` is tight so a held access right is a
    //    demonstrable fault; the runtime's snapshot provider is
    //    registered automatically at build time.
    let cfg = DetectorConfig::builder()
        .t_max(Nanos::from_secs(100))
        .t_io(Nanos::from_secs(100))
        .t_limit(Nanos::from_millis(5))
        .build();
    let rt = Runtime::builder(cfg)
        .backend_with(|cfg, clock| {
            Arc::new(ScheduledBackend::with_clock(
                cfg,
                ServiceConfig::new(4),
                SchedulerConfig::new(Duration::from_millis(1)),
                clock,
            ))
        })
        .park_timeout(Duration::from_millis(200))
        .build();
    println!("backend               : {} (4 shards, snapshot sweeps)", rt.backend_label());

    // 2. Clean traffic over a fleet of single-unit allocators.
    let fleet: Vec<ResourceAllocator> =
        (0..8).map(|i| ResourceAllocator::new(&rt, &format!("scanner-{i}"), 1)).collect();
    for _ in 0..25 {
        for al in &fleet {
            al.request()?;
            al.release()?;
        }
    }

    // 3. Per-shard checkpoints on demand: each sweep replays only that
    //    shard's pending events and compares its monitors' live states
    //    through the provider — no other shard is touched, nothing is
    //    suspended globally.
    for shard in 0..4 {
        let report = rt.checkpoint_scope(CheckpointScope::Shard(shard));
        println!(
            "shard {shard} sweep         : {} events checked, {}",
            report.events_checked,
            if report.is_clean() { "CLEAN" } else { "FAULTY" }
        );
    }
    let stats = rt.service_stats();
    for (shard, s) in stats.shards.iter().enumerate() {
        println!(
            "shard {shard} stats         : {} monitors, {} events in {} batches, {} violations",
            s.monitors, s.events_observed, s.batches, s.violations
        );
    }
    assert!(rt.is_clean(), "clean fleet must stay clean under per-shard sweeps");
    println!("fleet verdict         : CLEAN ({} events recorded)", rt.events_recorded());

    // 4. Fault: hold an access right past Tlimit. Nobody calls the
    //    checking routine — the background per-shard sweeps (timer +
    //    snapshot comparison through the provider) must catch it.
    fleet[3].request()?;
    println!("injected fault        : scanner-3 held past Tlimit = 5 ms");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut vs = rt.realtime_violations();
    while !vs.iter().any(|v| v.rule == RuleId::St8HoldTimeout)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
        vs = rt.realtime_violations();
    }
    for v in vs.iter().filter(|v| v.rule == RuleId::St8HoldTimeout).take(1) {
        println!("  detected            : {v}");
    }
    assert!(
        vs.iter().any(|v| v.rule == RuleId::St8HoldTimeout),
        "background sweeps must flag the expired hold: {vs:?}"
    );
    println!("verdict               : FAULT DETECTED by the background sweeps");

    // 5. On-demand full-scope checkpoint: the held right is a
    //    *consistent* state (replayed lists match the observed queues),
    //    so the sweep reports nothing beyond the expired hold timer the
    //    scheduler already flagged.
    let report = rt.checkpoint_scope(CheckpointScope::All);
    let beyond_timer =
        report.violations.iter().filter(|v| v.rule != RuleId::St8HoldTimeout).count();
    assert_eq!(beyond_timer, 0, "held-right state must compare consistent: {report}");
    println!(
        "final sweep           : {} events checked, state consistent ({} expired hold re-flagged)",
        report.events_checked,
        report.violations.len()
    );
    fleet[3].release()?;
    Ok(())
}
