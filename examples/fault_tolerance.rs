//! The §5 extensions in action: user-supplied assertions and error
//! recovery on top of detection — the paper's fault-tolerance roadmap.
//!
//! Run with: `cargo run --example fault_tolerance`
//!
//! 1. A monitor declares a state assertion (`R# ≥ 1`: keep one unit in
//!    reserve) that the periodic checker evaluates at every checkpoint.
//! 2. A worker crashes inside a monitor (fault T1). Detection reports
//!    it; the recovery checker force-releases the stuck monitor and the
//!    system resumes normal operation — detection first, recovery
//!    second, exactly as §5 prescribes.

use rmon::core::StateAssertion;
use rmon::prelude::*;
use rmon::rt::RecoveryChecker;
use std::time::Duration;

fn main() {
    // ----- 1. user-supplied assertions --------------------------------
    // A correct buffer satisfies its declared bounds at every checkpoint.
    let rt = Runtime::new(DetectorConfig::without_timeouts());
    let buf = BoundedBuffer::new(&rt, "tank", 4);
    for i in 0..4 {
        buf.send(i).expect("fill the tank");
    }
    let report = rt.checkpoint_now();
    println!("tank filled, checkpoint clean: {}", report.is_clean());

    // A runtime demonstrating a *failing* assertion: declare an
    // `R# ≥ 1` reserve on a monitor whose counter gets drained to 0.
    let rt2 = Runtime::new(DetectorConfig::without_timeouts());
    let spec = rmon::core::monitor_spec! {
        name: "pool",
        class: ResourceAllocator,
        capacity: 2,
        procedures: { request: Request, release: Release },
        conditions: { unit_available: UnitAvailable },
        call_order: "path (request ; release)* end",
        assertions: [StateAssertion::AvailableAtLeast(1)],
    };
    let pool = rmon::rt::Monitor::new(&rt2, spec, ());
    let request = pool.spec().proc_by_name("request").expect("declared");
    for _ in 0..2 {
        let g = pool.enter(request).expect("acquire");
        g.signal_exit_adjust(None, -1); // drain the reserve
    }
    let report = rt2.checkpoint_now();
    let asserts: Vec<String> = report
        .violations
        .iter()
        .filter(|v| v.rule == RuleId::UserAssertion)
        .map(|v| v.message.clone())
        .collect();
    println!("reserve assertion violations: {asserts:?}");
    assert!(!asserts.is_empty(), "draining the reserve must trip the assertion");

    // ----- 2. detection + recovery ------------------------------------
    let rt3 = Runtime::builder(
        DetectorConfig::builder()
            .t_max(Nanos::from_millis(30))
            .t_io(Nanos::from_millis(30))
            .t_limit(Nanos::from_millis(60))
            .check_interval(Nanos::from_millis(10))
            .build(),
    )
    .park_timeout(Duration::from_millis(800))
    .build();
    let cell = OperationCell::new(&rt3, "ledger", 0u64);
    let recovery = RecoveryChecker::spawn(&rt3, vec![cell.core_weak()], Duration::from_millis(10));

    cell.operate(|n| *n += 1).expect("normal operation");
    cell.operate_and_die(|n| *n += 1).expect("worker crashes inside the monitor");
    // Without recovery the next operation would time out; with the
    // recovery checker the stuck monitor is force-released.
    let value = cell.operate(|n| *n).expect("recovered operation");
    let checks = recovery.stop();

    println!("ledger value after crash + recovery : {value}");
    println!("recovery checks run                 : {checks}");
    println!(
        "termination fault still reported    : {}",
        rt3.all_violations().iter().any(|v| v.rule == RuleId::St5InsideTimeout)
    );
    assert_eq!(value, 2);
    assert!(!rt3.is_clean(), "recovery never hides the detected fault");
    println!("fault tolerated: detection first, recovery second");
}
