//! Distributed detection across real OS processes: two child worker
//! processes stream monitor events over a Unix socket into one
//! detection service in the parent.
//!
//! Run with: `cargo run --example distributed_service`
//!
//! The paper's detector assumes every monitor's events reach one
//! checking routine. This example keeps that true across process
//! boundaries: the parent hosts a `DetectionService` over an ordinary
//! inline backend and listens on a Unix socket; each child re-executes
//! this same binary in worker mode, connects a `RemoteBackend` (the
//! same `DetectionBackend` trait the in-process backends implement),
//! registers two single-unit allocators, and streams a few rounds of
//! traffic. Worker `w1` misbehaves — a release without a preceding
//! request — and gets its verdict pushed back over the wire, while the
//! parent's fleet checkpoint sweep fans out to both live workers and
//! comes back clean (the fault was already caught in real time).
//!
//! The walkthrough shows (1) monitor-id renaming — both workers call
//! their monitors 0 and 1; the service renames them into one fleet
//! namespace — (2) verdict push-back to the owning worker only, and
//! (3) the checkpoint fan-out / graceful-shutdown handshake.

#[cfg(unix)]
fn main() -> std::io::Result<()> {
    unix::run()
}

#[cfg(not(unix))]
fn main() {
    println!("distributed_service: this walkthrough needs Unix sockets; skipping.");
}

#[cfg(unix)]
mod unix {
    use rmon::net::{unix_endpoint, DetectionService, RemoteBackend, RemoteConfig, ServiceConfig};
    use rmon::prelude::*;
    use std::io;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::process::Command;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const WORKERS: usize = 2;
    const MONITORS_PER_WORKER: usize = 2;
    const ROUNDS: u64 = 3;
    /// request + exit + release + exit, per monitor per round.
    const CLEAN_EVENTS_PER_WORKER: u64 = MONITORS_PER_WORKER as u64 * ROUNDS * 4;
    /// Worker 1 adds one faulty release.
    const TOTAL_EVENTS: u64 = WORKERS as u64 * CLEAN_EVENTS_PER_WORKER + 1;

    fn wait_until(mut pred: impl FnMut() -> bool, what: &str) -> io::Result<()> {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !pred() {
            if Instant::now() >= deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, format!("waiting for {what}")));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(())
    }

    pub fn run() -> io::Result<()> {
        let mut args = std::env::args().skip(1);
        match (args.next().as_deref(), args.next(), args.next()) {
            (Some("--worker"), Some(index), Some(path)) => {
                worker(index.parse().expect("worker index"), &path)
            }
            _ => parent(),
        }
    }

    fn parent() -> io::Result<()> {
        let sock = std::env::temp_dir().join(format!("rmon-dist-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let listener = UnixListener::bind(&sock)?;

        // 1. One logical detection service over an ordinary inline
        //    backend; any monitor name resolves to a single-unit
        //    allocator spec.
        let service = DetectionService::new(
            Arc::new(InlineBackend::new(DetectorConfig::without_timeouts())),
            Arc::new(|name: &str| Some(Arc::new(MonitorSpec::allocator(name, 1).spec))),
            ServiceConfig { checkpoint_timeout: Duration::from_secs(2) },
        );

        // 2. Two real child processes, each this same binary in worker
        //    mode, connecting back over the socket.
        let exe = std::env::current_exe()?;
        let children: Vec<_> = (0..WORKERS)
            .map(|w| Command::new(&exe).arg("--worker").arg(w.to_string()).arg(&sock).spawn())
            .collect::<io::Result<_>>()?;
        for _ in 0..WORKERS {
            let (stream, _) = listener.accept()?;
            service.attach(unix_endpoint(stream)?);
        }

        // 3. Wait until every streamed event has been ingested, then
        //    fan a fleet checkpoint out to both live workers.
        wait_until(
            || service.sessions().iter().map(|s| s.events).sum::<u64>() >= TOTAL_EVENTS,
            "full stream ingestion",
        )?;
        let sweep = service.checkpoint_fleet(Nanos::new(1_000_000));
        println!(
            "fleet sweep           : clean={} quarantined={}",
            sweep.report.is_clean(),
            sweep.quarantined.len()
        );
        assert!(sweep.report.is_clean(), "the fault was already caught in real time");
        assert!(sweep.quarantined.is_empty(), "both workers answered the fan-out");

        for s in service.sessions() {
            println!(
                "session {:<13} : alive={} events={} monitors={}",
                s.name, s.alive, s.events, s.monitors
            );
        }

        // 4. The faulty release surfaced as a real-time verdict, owned
        //    by worker w1 — in the *fleet* namespace the service logs,
        //    translated back to the worker's own id by describe().
        wait_until(|| !service.verdict_log().is_empty(), "the w1 verdict")?;
        for v in service.verdict_log() {
            let (owner, remote) = service.describe(v.monitor).expect("known monitor");
            println!("verdict               : {v} [owner {owner}, its monitor {remote:?}]");
            assert_eq!(owner, "w1", "only w1 misbehaves");
        }

        // 5. Graceful teardown: Shutdown frames to both workers, then
        //    reap the children.
        service.shutdown();
        for child in children {
            let status = child.wait_with_output()?.status;
            assert!(status.success(), "worker exited with {status}");
        }
        let _ = std::fs::remove_file(&sock);
        println!(
            "\nBoth workers checked by one logical service; \
                  distributed run complete."
        );
        Ok(())
    }

    fn worker(index: u32, sock: &str) -> io::Result<()> {
        let stream = UnixStream::connect(sock)?;
        let backend = RemoteBackend::connect(
            unix_endpoint(stream)?,
            RemoteConfig::named(format!("w{index}")),
            Nanos::ZERO,
        )?;

        // Every worker names its monitors 0 and 1 — the service
        // renames them apart.
        let mut specs = Vec::new();
        for m in 0..MONITORS_PER_WORKER as u32 {
            let al = MonitorSpec::allocator(format!("w{index}-alloc{m}"), 1);
            backend.register(
                MonitorId::new(m),
                Arc::new(al.spec.clone()),
                &al.spec.empty_state(),
                Nanos::ZERO,
            );
            specs.push(al);
        }

        // Clean rounds: request / exit / release / exit per monitor.
        let mut producer = backend.producer();
        let mut seq = 0u64;
        let mut push =
            |producer: &mut Box<dyn ProducerHandle>, m: u32, pid: Pid, proc_name, granted| {
                seq += 1;
                producer.observe(Event::enter(
                    seq,
                    Nanos::new(seq * 10),
                    MonitorId::new(m),
                    pid,
                    proc_name,
                    granted,
                ));
                seq += 1;
                producer.observe(Event::signal_exit(
                    seq,
                    Nanos::new(seq * 10),
                    MonitorId::new(m),
                    pid,
                    proc_name,
                    None,
                    false,
                ));
            };
        for _ in 0..ROUNDS {
            for (m, al) in specs.iter().enumerate() {
                let pid = Pid::new(index * 10 + m as u32 + 1);
                push(&mut producer, m as u32, pid, al.request, true);
                push(&mut producer, m as u32, pid, al.release, true);
            }
        }
        if index == 1 {
            // The fault: a process releasing a unit it never requested.
            seq += 1;
            producer.observe(Event::enter(
                seq,
                Nanos::new(seq * 10),
                MonitorId::new(0),
                Pid::new(99),
                specs[0].release,
                false,
            ));
        }
        producer.flush();

        // A worker-initiated checkpoint: snapshots gathered locally,
        // verdicts computed by the service, report returned in this
        // worker's own id namespace.
        let report = backend.checkpoint(CheckpointScope::All, Nanos::new(seq * 10 + 10));
        println!("[w{index}] checkpoint       : clean={}", report.is_clean());

        if index == 1 {
            // The real-time verdict for the faulty release is pushed
            // back to this worker (and only this worker).
            let mut got = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(10);
            while got.is_empty() && Instant::now() < deadline {
                got = backend.drain_violations();
                std::thread::sleep(Duration::from_millis(2));
            }
            for v in &got {
                println!("[w1] pushed verdict   : {v}");
            }
            assert!(!got.is_empty(), "w1 must receive its verdict");
        }

        // Wait for the service's Shutdown frame, then exit cleanly.
        let deadline = Instant::now() + Duration::from_secs(30);
        while backend.is_connected() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(())
    }
}
