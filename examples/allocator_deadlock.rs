//! User-process-level faults on a resource allocator (§2.2 III),
//! detected **in real time** by Algorithm-3 — and optionally
//! *prevented* with the `Deny` policy extension.
//!
//! Run with: `cargo run --example allocator_deadlock`

use rmon::prelude::*;
use std::time::Duration;

fn main() {
    // ----- Report policy: the paper's semantics -----------------------
    let rt = Runtime::builder(DetectorConfig::without_timeouts())
        .park_timeout(Duration::from_millis(200))
        .order_policy(OrderPolicy::Report)
        .build();

    // U1: release without request — recorded, reported, allowed.
    let scanner = ResourceAllocator::new(&rt, "scanner", 1);
    scanner.release().expect("allowed under Report policy");

    // U3: double request — reported at call time; the second request
    // then genuinely self-deadlocks (it times out here).
    let printer = ResourceAllocator::new(&rt, "printer", 1);
    printer.request().expect("first request fine");
    let second = printer.request();
    println!("second request under Report policy: {second:?}");
    assert_eq!(second, Err(MonitorError::Timeout));

    let vs = rt.realtime_violations();
    println!("real-time violations ({}):", vs.len());
    for v in &vs {
        println!("  {v}");
    }
    assert!(vs.iter().any(|v| v.rule == RuleId::St8ReleaseWithoutRequest));
    assert!(vs.iter().any(|v| v.rule == RuleId::St8DuplicateRequest));

    // ----- Deny policy: prevention as an extension --------------------
    let rt = Runtime::builder(DetectorConfig::without_timeouts())
        .order_policy(OrderPolicy::Deny)
        .build();
    let plotter = ResourceAllocator::new(&rt, "plotter", 1);

    let e = plotter.release().expect_err("denied before executing");
    println!("\nDeny policy refused U1: {e}");
    plotter.request().expect("correct request");
    let e = plotter.request().expect_err("denied before deadlocking");
    println!("Deny policy refused U3: {e}");
    plotter.release().expect("correct release");

    // The denied calls never executed: the allocator is consistent.
    assert!(rt.checkpoint_now().is_clean());
    println!("\nallocator state consistent after prevention: CLEAN");
}
