//! Dining philosophers in the deterministic simulator: the ordered
//! protocol completes cleanly; the naive protocol deadlocks and the
//! detector flags the deadlock through its timers — no single process
//! violated its own call order, yet the fault is caught.
//!
//! Run with: `cargo run --example philosophers`

use rmon::prelude::*;
use rmon::workloads::Philosophers;

fn det_cfg() -> DetectorConfig {
    DetectorConfig::builder()
        .t_max(Nanos::from_millis(5))
        .t_io(Nanos::from_millis(5))
        .t_limit(Nanos::from_millis(5))
        .check_interval(Nanos::from_millis(1))
        .build()
}

fn main() {
    // Ordered fork acquisition: provably deadlock-free.
    let ordered = Philosophers { seats: 5, meals: 4, ordered: true, ..Default::default() };
    let (mut sim, _) = ordered.build_sim(SimConfig::default());
    let out = run_with_detection(&mut sim, det_cfg());
    println!("ordered protocol:");
    println!("  finished : {}", out.finished);
    println!("  events   : {}", out.events_recorded);
    println!("  verdict  : {}", if out.is_clean() { "CLEAN" } else { "FAULTY" });
    assert!(out.finished && out.is_clean());

    // Naive left-then-right: circular wait under round-robin.
    let naive = Philosophers { seats: 5, meals: 1, ordered: false, ..Default::default() };
    let cfg = SimConfig { max_time: Nanos::from_millis(50), ..SimConfig::default() };
    let (mut sim, _) = naive.build_sim(cfg);
    let out = run_with_detection(&mut sim, det_cfg());
    println!("\nnaive protocol:");
    println!("  finished : {}", out.finished);
    let mut rules: Vec<String> =
        out.combined.violations.iter().map(|v| v.rule.to_string()).collect();
    rules.sort();
    rules.dedup();
    println!("  rules    : {rules:?}");
    assert!(!out.finished, "the circular wait must deadlock");
    assert!(
        out.combined.violates_any(&[RuleId::St8HoldTimeout, RuleId::St5InsideTimeout]),
        "the deadlock must be flagged by the timers"
    );
    println!("  verdict  : DEADLOCK DETECTED");
}
