//! Quickstart: a robust bounded buffer with a background checker.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Wires all four units of the paper's Figure 1 — the monitor, the
//! shared resource, the data-gathering routine (event recorder) and the
//! fault-detection routine (periodic checker) — around a plain
//! producer/consumer workload, and shows the clean bill of health.

use rmon::prelude::*;
use std::time::Duration;

fn main() -> Result<(), MonitorError> {
    // 1. The runtime hosts the recorder + detector; monitors created
    //    against it are automatically registered.
    let rt = Runtime::new(DetectorConfig::default());

    // 2. A communication-coordinator monitor: bounded buffer, cap 8.
    let buf = BoundedBuffer::new(&rt, "mailbox", 8);

    // 3. The periodic checking routine (the paper's detection routine),
    //    invoked every 25 ms.
    let checker = CheckerHandle::spawn(&rt, Duration::from_millis(25));

    // 4. A producer/consumer workload.
    let tx = buf.clone();
    let producer = std::thread::spawn(move || -> Result<(), MonitorError> {
        for i in 0..1_000u64 {
            tx.send(i)?;
        }
        Ok(())
    });
    let rx = buf.clone();
    let consumer = std::thread::spawn(move || -> Result<u64, MonitorError> {
        let mut sum = 0;
        for _ in 0..1_000 {
            sum += rx.receive()?.expect("correct buffer never yields holes");
        }
        Ok(sum)
    });

    producer.join().expect("producer thread")?;
    let sum = consumer.join().expect("consumer thread")?;
    let checks = checker.stop();
    let final_report = rt.checkpoint_now();

    println!("transferred sum       : {sum}");
    println!("scheduling events     : {}", rt.events_recorded());
    println!("periodic checks run   : {}", checks + 1);
    println!("violations            : {}", rt.all_violations().len());
    println!(
        "verdict               : {}",
        if rt.is_clean() && final_report.is_clean() { "CLEAN" } else { "FAULTY" }
    );
    assert!(rt.is_clean() && final_report.is_clean());
    Ok(())
}
