//! The background checking routine: periodically invokes the detection
//! algorithms, suspending monitor operations for the duration (§4 of
//! the paper).

use crate::runtime::Runtime;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rmon_core::FaultReport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to the background checker thread.
///
/// Reports are pushed both into the runtime (see
/// [`Runtime::reports`]) and onto the channel returned by
/// [`CheckerHandle::reports_rx`].
///
/// Dropping the handle stops the thread; the blocking join is bounded
/// by one checking interval. Call [`CheckerHandle::stop`] for an
/// explicit, inspectable shutdown.
#[derive(Debug)]
pub struct CheckerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<u64>>,
    rx: Receiver<FaultReport>,
}

impl CheckerHandle {
    /// Spawns a checker over `rt`, waking every `interval`.
    pub fn spawn(rt: &Runtime, interval: Duration) -> CheckerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let rt = rt.clone();
        let (tx, rx): (Sender<FaultReport>, Receiver<FaultReport>) = unbounded();
        let thread = std::thread::Builder::new()
            .name("rmon-checker".into())
            .spawn(move || {
                let mut checks = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let report = rt.checkpoint_now();
                    checks += 1;
                    let _ = tx.send(report);
                }
                checks
            })
            .expect("spawn checker thread");
        CheckerHandle { stop, thread: Some(thread), rx }
    }

    /// Spawns the **paper-faithful** (§3.1, unoptimized) checking
    /// routine: the entire history recorded so far is re-checked
    /// against the declarative FD-Rules on every invocation, with all
    /// monitor operations suspended for the duration. This is the
    /// Table-1 ablation baseline; production use wants
    /// [`CheckerHandle::spawn`], whose checking lists make each
    /// invocation incremental.
    pub fn spawn_full_history(rt: &Runtime, interval: Duration) -> CheckerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let rt = rt.clone();
        let (_tx, rx): (Sender<FaultReport>, Receiver<FaultReport>) = unbounded();
        let thread = std::thread::Builder::new()
            .name("rmon-checker-full".into())
            .spawn(move || {
                let mut checks = 0u64;
                let mut history = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    rt.inner.checkpoint_full_history(&mut history);
                    checks += 1;
                }
                checks
            })
            .expect("spawn full-history checker thread");
        CheckerHandle { stop, thread: Some(thread), rx }
    }

    /// Receiver of checkpoint reports, in order.
    pub fn reports_rx(&self) -> &Receiver<FaultReport> {
        &self.rx
    }

    /// Stops the checker and returns how many checks it ran.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.take().map(|t| t.join().unwrap_or(0)).unwrap_or(0)
    }
}

impl Drop for CheckerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundedBuffer, Runtime};
    use rmon_core::DetectorConfig;

    #[test]
    fn checker_runs_periodically_and_stays_clean() {
        let rt = Runtime::new(DetectorConfig::without_timeouts());
        let buf = BoundedBuffer::new(&rt, "b", 2);
        let checker = CheckerHandle::spawn(&rt, Duration::from_millis(10));
        for i in 0..200 {
            buf.send(i).unwrap();
            assert_eq!(buf.receive().unwrap(), Some(i));
        }
        std::thread::sleep(Duration::from_millis(30));
        let checks = checker.stop();
        assert!(checks >= 1, "checker must have run");
        assert!(rt.is_clean(), "{:?}", rt.all_violations());
        assert!(!rt.reports().is_empty());
    }

    #[test]
    fn checker_reports_flow_on_channel() {
        let rt = Runtime::new(DetectorConfig::without_timeouts());
        let _buf = BoundedBuffer::<u32>::new(&rt, "b", 2);
        let checker = CheckerHandle::spawn(&rt, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(25));
        let mut received = 0;
        while checker.reports_rx().try_recv().is_ok() {
            received += 1;
        }
        checker.stop();
        assert!(received >= 1);
    }

    #[test]
    fn drop_stops_the_thread() {
        let rt = Runtime::new(DetectorConfig::without_timeouts());
        {
            let _checker = CheckerHandle::spawn(&rt, Duration::from_millis(5));
            std::thread::sleep(Duration::from_millis(12));
        }
        // No panic, no hang: dropping joined the thread.
        assert!(rt.is_clean());
    }
}
