//! The communication-coordinator monitor type: a bounded buffer with
//! `send`/`receive` procedures (§2.1 of the paper).

use crate::error::MonitorError;
use crate::monitor::Monitor;
use crate::runtime::Runtime;
use rmon_core::{CondId, MonitorId, MonitorSpec, ProcName};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Deliberate guard bugs for the procedure-level fault classes
/// (§2.2 II): each breaks one direction of the "delayed iff" integrity
/// constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferBug {
    /// P1 — `send` waits although the buffer is not full.
    SpuriousSendDelay,
    /// P2 — `receive` waits although the buffer is not empty.
    SpuriousReceiveDelay,
    /// P3 — `receive` proceeds although the buffer is empty
    /// (`r` overtakes `s`).
    MissingReceiveDelay,
    /// P4 — `send` proceeds although the buffer is full
    /// (`s` overtakes `r + Rmax`).
    MissingSendDelay,
}

#[derive(Debug)]
struct BufInner<T> {
    queue: VecDeque<T>,
    capacity: usize,
}

/// A robust bounded buffer: the canonical communication-coordinator
/// monitor, instrumented for run-time fault detection.
///
/// # Examples
///
/// ```
/// use rmon_core::DetectorConfig;
/// use rmon_rt::{BoundedBuffer, Runtime};
///
/// let rt = Runtime::new(DetectorConfig::default());
/// let buf = BoundedBuffer::new(&rt, "mailbox", 4);
/// buf.send(7)?;
/// assert_eq!(buf.receive()?, Some(7));
/// assert!(rt.checkpoint_now().is_clean());
/// # Ok::<(), rmon_rt::MonitorError>(())
/// ```
#[derive(Debug)]
pub struct BoundedBuffer<T> {
    mon: Monitor<BufInner<T>>,
    send_proc: ProcName,
    recv_proc: ProcName,
    full_cond: CondId,
    empty_cond: CondId,
    /// Armed guard bug and how many calls to skip before it triggers
    /// (shared across clones).
    bug: Option<BufferBug>,
    bug_after: Arc<AtomicU32>,
}

impl<T: Send + 'static> BoundedBuffer<T> {
    /// Creates a correct bounded buffer of the given capacity.
    pub fn new(rt: &Runtime, name: &str, capacity: usize) -> Self {
        Self::build(rt, name, capacity, None, 0)
    }

    /// Creates a buffer whose guard carries `bug`, triggering on the
    /// first eligible call after `skip` eligible calls.
    pub fn with_bug(rt: &Runtime, name: &str, capacity: usize, bug: BufferBug, skip: u32) -> Self {
        Self::build(rt, name, capacity, Some(bug), skip)
    }

    fn build(rt: &Runtime, name: &str, capacity: usize, bug: Option<BufferBug>, skip: u32) -> Self {
        let bb = MonitorSpec::bounded_buffer(name, capacity as u64);
        let mon = Monitor::new(
            rt,
            bb.spec,
            BufInner { queue: VecDeque::with_capacity(capacity), capacity },
        );
        BoundedBuffer {
            mon,
            send_proc: bb.send,
            recv_proc: bb.receive,
            full_cond: bb.full_cond,
            empty_cond: bb.empty_cond,
            bug,
            bug_after: Arc::new(AtomicU32::new(skip)),
        }
    }

    /// The underlying monitor id.
    pub fn id(&self) -> MonitorId {
        self.mon.id()
    }

    /// Arms a one-shot protocol fault on the underlying monitor.
    pub fn arm_fault(&self, fault: crate::inject::RtFault) {
        self.mon.arm_fault(fault);
    }

    /// A weak handle to the protocol core (for the recovery checker).
    pub fn core_weak(&self) -> std::sync::Weak<crate::RawCore> {
        self.mon.core_weak()
    }

    /// Whether the armed bug should perturb this call.
    fn bug_fires(&self, which: BufferBug) -> bool {
        if self.bug != Some(which) {
            return false;
        }
        // Trigger once the skip counter reaches zero.
        loop {
            let cur = self.bug_after.load(Ordering::Relaxed);
            if cur == 0 {
                return true;
            }
            if self
                .bug_after
                .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return false;
            }
        }
    }

    /// The `send` procedure: deposits one item, waiting while the
    /// buffer is full.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] if starved past the runtime's park
    /// timeout (only under injected faults or overload).
    pub fn send(&self, item: T) -> Result<(), MonitorError> {
        let mut g = self.mon.enter(self.send_proc)?;
        // Guard check and deposit share one data-lock acquisition on
        // the no-wait fast path; `item` survives in the `Option` when
        // the guard decides to delay.
        let mut item = Some(item);
        let deposited = g.with(|d| {
            let wait = if d.queue.len() >= d.capacity {
                // P4: skip the delay although full.
                !self.bug_fires(BufferBug::MissingSendDelay)
            } else {
                // P1: delay although not full.
                self.bug_fires(BufferBug::SpuriousSendDelay)
            };
            if wait {
                false
            } else {
                d.queue.push_back(item.take().expect("item not yet deposited"));
                true
            }
        });
        if !deposited {
            g.wait(self.full_cond)?;
            g.with(|d| d.queue.push_back(item.take().expect("item not yet deposited")));
        }
        // A send is "successful" at its completion: one slot consumed.
        g.signal_exit_adjust(Some(self.empty_cond), -1);
        Ok(())
    }

    /// The `receive` procedure: removes one item, waiting while the
    /// buffer is empty.
    ///
    /// Returns `None` only when an injected bug made an empty receive
    /// proceed (the detector flags it; the caller sees the hole).
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] if starved past the runtime's park
    /// timeout.
    pub fn receive(&self) -> Result<Option<T>, MonitorError> {
        let mut g = self.mon.enter(self.recv_proc)?;
        // Guard check and removal share one data-lock acquisition on
        // the no-wait fast path; the outer `None` means the guard
        // decided to delay (the inner `Option` is the removed item,
        // absent only when an injected bug let an empty receive
        // proceed).
        let fast = g.with(|d| {
            let wait = if d.queue.is_empty() {
                // P3: skip the delay although empty.
                !self.bug_fires(BufferBug::MissingReceiveDelay)
            } else {
                // P2: delay although not empty.
                self.bug_fires(BufferBug::SpuriousReceiveDelay)
            };
            if wait {
                None
            } else {
                Some(d.queue.pop_front())
            }
        });
        let item = match fast {
            Some(item) => item,
            None => {
                g.wait(self.empty_cond)?;
                g.with(|d| d.queue.pop_front())
            }
        };
        // A receive is "successful" at its completion: one slot freed.
        g.signal_exit_adjust(Some(self.full_cond), 1);
        Ok(item)
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        let g = self.mon.enter(self.send_proc);
        match g {
            Ok(g) => {
                let n = g.with(|d| d.queue.len());
                g.signal_exit(None);
                n
            }
            Err(_) => 0,
        }
    }

    /// Whether the buffer is empty (see [`BoundedBuffer::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for BoundedBuffer<T> {
    fn clone(&self) -> Self {
        BoundedBuffer {
            mon: self.mon.clone(),
            send_proc: self.send_proc,
            recv_proc: self.recv_proc,
            full_cond: self.full_cond,
            empty_cond: self.empty_cond,
            bug: self.bug,
            bug_after: Arc::clone(&self.bug_after),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::{DetectorConfig, RuleId};
    use std::time::Duration;

    fn rt() -> Runtime {
        Runtime::builder(DetectorConfig::without_timeouts())
            .park_timeout(Duration::from_millis(300))
            .build()
    }

    #[test]
    fn send_receive_round_trip() {
        let rt = rt();
        let buf = BoundedBuffer::new(&rt, "b", 2);
        buf.send(1).unwrap();
        buf.send(2).unwrap();
        assert_eq!(buf.receive().unwrap(), Some(1));
        assert_eq!(buf.receive().unwrap(), Some(2));
        assert!(rt.checkpoint_now().is_clean());
    }

    #[test]
    fn producer_consumer_threads_are_clean() {
        let rt = rt();
        let buf = BoundedBuffer::new(&rt, "b", 3);
        let tx = buf.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let rx = buf.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.receive().unwrap().unwrap());
            }
            got
        });
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "FIFO order preserved");
        let report = rt.checkpoint_now();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn p1_spurious_send_delay_is_detected() {
        let rt = rt();
        let buf = BoundedBuffer::with_bug(&rt, "b", 2, BufferBug::SpuriousSendDelay, 0);
        let b2 = buf.clone();
        // The buggy send waits although the buffer is empty; a receiver
        // signal never matches, so it times out — acceptable.
        let h = std::thread::spawn(move || {
            let _ = b2.send(1);
        });
        std::thread::sleep(Duration::from_millis(50));
        let report = rt.checkpoint_now();
        assert!(report.violates_any(&[RuleId::St7WaitSendBufferFull]), "{report}");
        h.join().unwrap();
    }

    #[test]
    fn p3_receive_from_empty_is_detected() {
        let rt = rt();
        let buf = BoundedBuffer::<u32>::with_bug(&rt, "b", 2, BufferBug::MissingReceiveDelay, 0);
        assert_eq!(buf.receive().unwrap(), None);
        let report = rt.checkpoint_now();
        assert!(report.violates_any(&[RuleId::St7CountInvariant]), "{report}");
    }

    #[test]
    fn p4_send_into_full_is_detected() {
        let rt = rt();
        let buf = BoundedBuffer::with_bug(&rt, "b", 1, BufferBug::MissingSendDelay, 0);
        buf.send(1).unwrap();
        buf.send(2).unwrap(); // proceeds despite full buffer
        let report = rt.checkpoint_now();
        assert!(report.violates_any(&[RuleId::St7CountInvariant]), "{report}");
    }

    #[test]
    fn bug_skip_counter_delays_trigger() {
        let rt = rt();
        let buf = BoundedBuffer::with_bug(&rt, "b", 4, BufferBug::MissingReceiveDelay, 2);
        buf.send(1).unwrap();
        // A non-empty receive is not eligible, so it leaves the skip
        // budget alone; only *eligible* calls (empty buffer) consume
        // it — force two eligible calls next.
        assert_eq!(buf.receive().unwrap(), Some(1));
        let b = buf.clone();
        let h = std::thread::spawn(move || {
            // These two receives block on empty (skip budget 2 → wait),
            // then time out.
            let _ = b.receive();
        });
        h.join().unwrap();
        // Next empty receive fires the bug.
        // skip budget is per *eligible* call; after two eligible empty
        // receives the third proceeds without waiting.
        let _ = buf.receive();
        let r = buf.receive().unwrap();
        assert_eq!(r, None);
    }

    #[test]
    fn len_and_is_empty() {
        let rt = rt();
        let buf = BoundedBuffer::new(&rt, "b", 2);
        assert!(buf.is_empty());
        buf.send(9).unwrap();
        assert_eq!(buf.len(), 1);
    }
}
