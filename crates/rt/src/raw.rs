//! The raw monitor core: explicit entry/condition queues with direct
//! hand-off over `parking_lot` primitives.
//!
//! Unlike a plain `Mutex`+`Condvar` encoding, the discipline here is a
//! faithful implementation of the paper's monitor: a released monitor
//! is handed directly to the popped waiter *before* it wakes (no
//! barging), so the recorded `Enter`/`Wait`/`Signal-Exit` flags are
//! exact, Mesa-style spurious races cannot produce false positives, and
//! injected protocol perturbations reproduce the paper's
//! implementation-level faults on real threads.
//!
//! Memory safety under injected faults: the monitor protocol only
//! guards *scheduling*; the shared data of [`crate::Monitor`] sits
//! behind its own small mutex, so even a violated mutual exclusion
//! cannot cause undefined behaviour — it is visible in the recorded
//! history instead, which is exactly where the detector looks.

use crate::inject::{RtFault, RtInjector};
use crate::runtime::RtInner;
use crate::sync::{FastMutex, FastMutexGuard};
use parking_lot::{Condvar, Mutex};
use rmon_core::{
    CondId, EventKind, MonitorId, MonitorSpec, MonitorState, Pid, PidProc, ProcName, ProcRole,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A per-waiter hand-off gate.
#[derive(Debug, Default)]
pub(crate) struct Gate {
    opened: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn open(&self) {
        let mut g = self.opened.lock();
        *g = true;
        self.cv.notify_one();
    }

    /// Waits until the gate opens or the deadline passes; returns
    /// whether the gate is open.
    fn wait_until(&self, deadline: Instant) -> bool {
        let mut g = self.opened.lock();
        while !*g {
            if self.cv.wait_until(&mut g, deadline).timed_out() {
                return *g;
            }
        }
        true
    }
}

#[derive(Debug)]
struct Waiter {
    pp: PidProc,
    gate: Arc<Gate>,
}

#[derive(Debug, Default)]
pub(crate) struct RawState {
    owner: Vec<PidProc>,
    eq: VecDeque<Waiter>,
    cqs: Vec<VecDeque<Waiter>>,
    /// Injected stuck lock (W6/X2): while set nobody is admitted.
    stuck: bool,
    /// The observable resource counter `R#`, updated **atomically with
    /// the `Signal-Exit` recording** — the paper counts an operation as
    /// successful when its call completes, so the counter sampled at a
    /// checkpoint is always consistent with the exits replayed from the
    /// event window (a counter read from the data structure itself
    /// would transiently disagree mid-procedure).
    resource_no: Option<i64>,
}

impl RawState {
    fn admit_head(&mut self) {
        if self.stuck {
            return;
        }
        if let Some(w) = self.eq.pop_front() {
            self.owner.push(w.pp);
            w.gate.open();
        }
    }
}

/// The monitor protocol core shared by [`crate::Monitor`] and the
/// background checker.
#[derive(Debug)]
pub struct RawCore {
    id: MonitorId,
    spec: Arc<MonitorSpec>,
    state: FastMutex<RawState>,
    rt: Arc<RtInner>,
    injector: RtInjector,
    /// Whether this monitor has calling-order concerns (a declared
    /// path expression or Request/Release-role procedures). Computed
    /// once at construction so the per-event hot path decides with a
    /// plain field read whether to stream into the real-time
    /// (Algorithm-3) pipeline; all other events are covered by the
    /// periodic checkpoint catch-up.
    needs_order: bool,
    /// Events recorded for this monitor so far, incremented under the
    /// state lock as part of recording — the runtime half of the
    /// snapshot consistency gate
    /// ([`rmon_core::detect::SnapshotProvider::events_recorded`]): an
    /// unchanged count bracketing a [`Self::snapshot_queues`] read
    /// proves the observation is consistent with exactly that many
    /// recorded events.
    recorded: AtomicU64,
}

impl RawCore {
    /// Creates a core, registering it with the runtime's detector and
    /// snapshot registry.
    pub(crate) fn new(rt: Arc<RtInner>, spec: Arc<MonitorSpec>) -> Arc<RawCore> {
        let id = rt.allocate_monitor_id();
        let needs_order = spec.call_order.is_some()
            || spec
                .procedures
                .iter()
                .any(|p| matches!(p.role, ProcRole::Request | ProcRole::Release));
        let core = Arc::new(RawCore {
            id,
            state: FastMutex::new(RawState {
                cqs: (0..spec.cond_count()).map(|_| VecDeque::new()).collect(),
                resource_no: spec.capacity.map(|c| c as i64),
                ..Default::default()
            }),
            spec: Arc::clone(&spec),
            rt: Arc::clone(&rt),
            injector: RtInjector::new(),
            needs_order,
            recorded: AtomicU64::new(0),
        });
        rt.register_monitor(&core);
        core
    }

    /// Records one scheduling event of this monitor (see
    /// [`RtInner::record_observe`]). Always called with the state lock
    /// held (an invariant of this module), so the recorded-event
    /// counter moves atomically with the queue state it describes.
    /// Whether the recording thread blocks on detection backpressure
    /// here is the monitor's instrumentation mode — a per-monitor,
    /// run-time choice answered by the backend, not a property of this
    /// core (only `needs_order`, the *what* to stream, is pinned at
    /// construction; the *how hard*, `rmon_core::Mode`, stays dynamic
    /// so an adaptive backend can tighten a suspect monitor to Sync
    /// mid-run).
    #[inline]
    fn observe(&self, pid: Pid, proc_name: ProcName, kind: EventKind) {
        self.rt.record_observe(self.id, pid, proc_name, kind, self.needs_order);
        self.recorded.fetch_add(1, Ordering::Release);
    }

    /// Events recorded for this monitor so far (see the `recorded`
    /// field). Safe to read without the state lock; pair two reads
    /// around a [`Self::snapshot_queues`] to detect racing recordings.
    pub(crate) fn events_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Acquire)
    }

    /// The monitor id.
    pub fn id(&self) -> MonitorId {
        self.id
    }

    /// The monitor declaration.
    pub fn spec(&self) -> &Arc<MonitorSpec> {
        &self.spec
    }

    /// Arms a one-shot protocol fault.
    pub fn arm_fault(&self, fault: RtFault) {
        self.injector.arm(fault);
    }

    /// Observed `⟨EQ, CQ[], Running, R#⟩` snapshot.
    pub fn snapshot_queues(&self) -> MonitorState {
        Self::snapshot_of(&self.state.lock())
    }

    /// Builds the observed snapshot from an already-held state guard
    /// (the checkpoint path, which holds every monitor suspended).
    pub(crate) fn snapshot_of(st: &RawState) -> MonitorState {
        MonitorState {
            entry_queue: st.eq.iter().map(|w| w.pp).collect(),
            cond_queues: st.cqs.iter().map(|q| q.iter().map(|w| w.pp).collect()).collect(),
            running: st.owner.clone(),
            available: st.resource_no.map(|v| v.max(0) as u64),
        }
    }

    /// Suspends this monitor's operations for the lifetime of the
    /// returned guard — the checkpoint half of the paper's "all other
    /// running processes are suspended" protocol. Every monitor
    /// primitive mutates its queues **and records its scheduling
    /// event** under this lock (an invariant of this module), so a
    /// checkpoint holding the guards of all live monitors sees a
    /// drained window and queue snapshots that are mutually
    /// consistent, with no lock on the primitives' hot path beyond the
    /// state lock they already take.
    pub(crate) fn suspend(&self) -> FastMutexGuard<'_, RawState> {
        self.state.lock()
    }

    /// The `Enter` primitive. Blocks (with the runtime's park timeout)
    /// while the monitor is busy.
    ///
    /// # Errors
    ///
    /// [`crate::MonitorError::Timeout`] if the caller was not admitted
    /// within the park timeout.
    pub fn enter(&self, pid: Pid, proc_name: ProcName) -> Result<(), crate::MonitorError> {
        let pp = PidProc::new(pid, proc_name);
        let gate = {
            let mut st = self.state.lock();
            // Fault E4: run inside without an observable Enter.
            if self.injector.fire(RtFault::SkipEnterEvent) {
                st.owner.push(pp);
                return Ok(());
            }
            let free = st.owner.is_empty() && !st.stuck;
            if free {
                // Fault E3: queue the caller although the monitor is free.
                if self.injector.fire(RtFault::BlockWhileFree) {
                    let gate = Arc::new(Gate::default());
                    st.eq.push_back(Waiter { pp, gate: Arc::clone(&gate) });
                    self.observe(pid, proc_name, EventKind::Enter { granted: false });
                    gate
                } else {
                    st.owner.push(pp);
                    self.observe(pid, proc_name, EventKind::Enter { granted: true });
                    return Ok(());
                }
            } else {
                // Fault E1: grant although another thread is inside.
                if self.injector.fire(RtFault::GrantWhileBusy) {
                    st.owner.push(pp);
                    self.observe(pid, proc_name, EventKind::Enter { granted: true });
                    return Ok(());
                }
                let gate = Arc::new(Gate::default());
                st.eq.push_back(Waiter { pp, gate: Arc::clone(&gate) });
                self.observe(pid, proc_name, EventKind::Enter { granted: false });
                gate
            }
        };
        self.park(pid, gate)
    }

    /// The `Wait` primitive: parks on `CQ[cond]`, releasing the monitor
    /// to the entry-queue head.
    ///
    /// # Errors
    ///
    /// [`crate::MonitorError::Timeout`] if never signalled within the
    /// park timeout (the caller no longer owns the monitor then).
    pub fn wait(
        &self,
        pid: Pid,
        proc_name: ProcName,
        cond: CondId,
    ) -> Result<(), crate::MonitorError> {
        let pp = PidProc::new(pid, proc_name);
        let gate = {
            let mut st = self.state.lock();
            st.owner.retain(|o| o.pid != pid);
            let gate = Arc::new(Gate::default());
            let c = cond.as_usize();
            if c >= st.cqs.len() {
                st.cqs.resize_with(c + 1, VecDeque::new);
            }
            st.cqs[c].push_back(Waiter { pp, gate: Arc::clone(&gate) });
            self.observe(pid, proc_name, EventKind::Wait { cond });
            if self.injector.fire(RtFault::StickLockOnWait) {
                st.stuck = true;
            } else if st.eq.is_empty() || !self.injector.fire(RtFault::SkipHandoffOnWait) {
                // (An armed skip-hand-off fault only consumes itself at
                // an effective site: somebody must be queued to skip.)
                st.admit_head();
            }
            gate
        };
        self.park(pid, gate)
    }

    /// The combined `Signal-Exit` primitive. `resource_delta` adjusts
    /// the observable `R#` atomically with the event (−1 for a
    /// completed deposit/acquisition, +1 for a completed
    /// removal/release, 0 otherwise).
    pub fn signal_exit(
        &self,
        pid: Pid,
        proc_name: ProcName,
        cond: Option<CondId>,
        resource_delta: i64,
    ) {
        let mut st = self.state.lock();
        st.owner.retain(|o| o.pid != pid);
        if let Some(rn) = st.resource_no.as_mut() {
            *rn += resource_delta;
        }
        let flag =
            cond.map(|c| st.cqs.get(c.as_usize()).is_some_and(|q| !q.is_empty())).unwrap_or(false);
        self.observe(pid, proc_name, EventKind::SignalExit { cond, resumed_waiter: flag });
        // Fault X1: nobody resumed although the flag claims the
        // hand-off (effective only when someone was due a resumption).
        if (flag || !st.eq.is_empty()) && self.injector.fire(RtFault::SkipResumeOnExit) {
            return;
        }
        // Fault X2: the monitor stays locked.
        if self.injector.fire(RtFault::StickLockOnExit) {
            st.stuck = true;
            return;
        }
        if flag {
            let c = cond.expect("flag implies cond").as_usize();
            let w = st.cqs[c].pop_front().expect("flag implies waiter");
            st.owner.push(w.pp);
            w.gate.open();
        } else {
            st.admit_head();
        }
    }

    /// Records an internal termination (fault T1): the calling thread
    /// abandons the monitor without exiting. The lock is left stuck —
    /// exactly the effect of a process crashing in its critical
    /// section: nobody is ever admitted again, which the periodic
    /// checker flags through the entry-queue timer on top of the
    /// immediate Terminate report.
    pub fn terminate_inside(&self, pid: Pid, proc_name: ProcName) {
        let mut st = self.state.lock();
        st.owner.retain(|o| o.pid != pid);
        st.stuck = true;
        self.observe(pid, proc_name, EventKind::Terminate);
    }

    /// Error-recovery hook (§5 extension): clears an injected/terminal
    /// stuck lock and, if the monitor is free with entry waiters
    /// stranded, admits the head. Conservative: never touches a monitor
    /// that currently has a live owner. Returns whether anything was
    /// repaired.
    pub fn force_release(&self) -> bool {
        let mut st = self.state.lock();
        let mut acted = false;
        if st.stuck {
            st.stuck = false;
            acted = true;
        }
        if st.owner.is_empty() && !st.eq.is_empty() {
            st.admit_head();
            acted = true;
        }
        acted
    }

    /// Parks on `gate`; on timeout, removes the caller from whichever
    /// queue still holds it (unless it won the race and was admitted).
    fn park(&self, pid: Pid, gate: Arc<Gate>) -> Result<(), crate::MonitorError> {
        let deadline = Instant::now() + self.rt.park_timeout;
        if gate.wait_until(deadline) {
            return Ok(());
        }
        let mut st = self.state.lock();
        if st.owner.iter().any(|o| o.pid == pid) {
            // Admitted between the timeout and this lock.
            return Ok(());
        }
        st.eq.retain(|w| w.pp.pid != pid);
        for q in &mut st.cqs {
            q.retain(|w| w.pp.pid != pid);
        }
        Err(crate::MonitorError::Timeout)
    }

    /// The runtime this core belongs to.
    pub(crate) fn runtime(&self) -> &Arc<RtInner> {
        &self.rt
    }
}
