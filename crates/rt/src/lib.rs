//! # rmon-rt — the robust monitor runtime for real threads
//!
//! A from-scratch implementation of the paper's *augmented monitor
//! construct* (Cao, Cheung & Chan, DSN 2001) on real OS threads:
//!
//! * [`Monitor`] — a Hoare-style monitor with explicit entry/condition
//!   queues and direct hand-off (no barging), whose primitives record
//!   scheduling events into the shared [`Runtime`];
//! * [`BoundedBuffer`] / [`ResourceAllocator`] / [`OperationCell`] —
//!   the paper's three monitor types (communication coordinator,
//!   resource-access-right allocator, resource operation manager);
//! * [`CheckerHandle`] — the periodic checking routine, which suspends
//!   monitor operations while it runs the detection algorithms;
//! * [`overhead`] — the measurement harness that regenerates the
//!   paper's Table 1 (overhead ratio vs. checking interval);
//! * [`RtFault`] / [`BufferBug`] / [`MonitorGuard::abandon`] — fault
//!   injection for the classes realizable on real threads.
//!
//! ## Example
//!
//! ```
//! use rmon_core::DetectorConfig;
//! use rmon_rt::{BoundedBuffer, CheckerHandle, Runtime};
//! use std::time::Duration;
//!
//! let rt = Runtime::new(DetectorConfig::default());
//! let buf = BoundedBuffer::new(&rt, "mailbox", 8);
//! let checker = CheckerHandle::spawn(&rt, Duration::from_millis(20));
//!
//! let tx = buf.clone();
//! let producer = std::thread::spawn(move || {
//!     for i in 0..100 {
//!         tx.send(i).unwrap();
//!     }
//! });
//! let rx = buf.clone();
//! let consumer = std::thread::spawn(move || {
//!     for _ in 0..100 {
//!         rx.receive().unwrap();
//!     }
//! });
//! producer.join().unwrap();
//! consumer.join().unwrap();
//! checker.stop();
//! assert!(rt.is_clean());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod allocator;
mod buffer;
mod cell;
mod checker;
mod error;
mod inject;
mod monitor;
pub mod overhead;
mod raw;
mod recorder;
mod recovery;
pub mod registry;
mod runtime;
mod sync;

pub use allocator::ResourceAllocator;
pub use buffer::{BoundedBuffer, BufferBug};
pub use cell::OperationCell;
pub use checker::CheckerHandle;
pub use error::MonitorError;
pub use inject::{RtFault, RtInjector};
pub use monitor::{Monitor, MonitorGuard};
pub use raw::RawCore;
pub use recorder::Recorder;
pub use recovery::{RecoveryAction, RecoveryChecker, RecoveryLog};
pub use runtime::{OrderPolicy, Runtime, RuntimeBuilder, RuntimeSnapshotProvider};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn handles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Runtime>();
        assert_send_sync::<BoundedBuffer<u64>>();
        assert_send_sync::<ResourceAllocator>();
        assert_send_sync::<OperationCell<u64>>();
        assert_send_sync::<Monitor<u64>>();
    }
}
