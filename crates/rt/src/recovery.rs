//! Error recovery — the paper's §5 future work, implemented:
//! *"A fault tolerant system detects errors created as the effect of a
//! fault and in addition, applies error recovery techniques to restore
//! and continue the normal operations. Therefore, in order to make the
//! monitor construct to be fault-tolerant, error recovery mechanisms
//! should be incorporated into the model to handle the faults detected
//! by recovering the errors."*
//!
//! [`RecoveryChecker`] is the periodic checking routine with a recovery
//! stage bolted on: after each checkpoint it inspects the report and
//! applies the matching recovery action —
//!
//! * a **stuck monitor** (lock never released: faults W6/X2/T1,
//!   surfacing as entry-queue starvation) is *force-released*: the
//!   stuck flag is cleared, any dead owner entry is evicted, and the
//!   entry-queue head is admitted;
//! * a **leaked access right** (ST-8c hold timeout) is *reclaimed*:
//!   the holder is dropped from the Request-List so the allocator's
//!   order tracking recovers (the unit itself is restored by the
//!   wrapper's recovery callback).
//!
//! Recovery is deliberately conservative: it only acts on violations
//! the detector actually reported, and every action is recorded in the
//! [`RecoveryLog`].

use crate::raw::RawCore;
use crate::runtime::Runtime;
use parking_lot::Mutex;
use rmon_core::{FaultReport, MonitorId, Nanos, RuleId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// One applied recovery action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// A stuck monitor lock was force-released.
    ForceReleased {
        /// The recovered monitor.
        monitor: MonitorId,
        /// When the action was applied.
        at: Nanos,
    },
}

/// Record of every recovery action applied so far.
#[derive(Debug, Default)]
pub struct RecoveryLog {
    actions: Mutex<Vec<RecoveryAction>>,
}

impl RecoveryLog {
    /// All actions applied, in order.
    pub fn actions(&self) -> Vec<RecoveryAction> {
        self.actions.lock().clone()
    }

    /// Number of actions applied.
    pub fn len(&self) -> usize {
        self.actions.lock().len()
    }

    /// Whether no recovery was needed yet.
    pub fn is_empty(&self) -> bool {
        self.actions.lock().is_empty()
    }
}

/// A periodic checker that *recovers* from the stuck-lock fault family
/// in addition to reporting it.
#[derive(Debug)]
pub struct RecoveryChecker {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<u64>>,
    log: Arc<RecoveryLog>,
}

impl RecoveryChecker {
    /// Spawns the checking-plus-recovery routine over `rt`, watching
    /// the given monitors.
    pub fn spawn(rt: &Runtime, monitors: Vec<Weak<RawCore>>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let log = Arc::new(RecoveryLog::default());
        let stop2 = Arc::clone(&stop);
        let log2 = Arc::clone(&log);
        let rt = rt.clone();
        let thread = std::thread::Builder::new()
            .name("rmon-recovery".into())
            .spawn(move || {
                let mut checks = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let report = rt.checkpoint_now();
                    checks += 1;
                    apply_recovery(&rt, &monitors, &report, &log2);
                }
                checks
            })
            .expect("spawn recovery checker thread");
        RecoveryChecker { stop, thread: Some(thread), log }
    }

    /// The recovery log.
    pub fn log(&self) -> &Arc<RecoveryLog> {
        &self.log
    }

    /// Stops the checker; returns how many checks ran.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.take().map(|t| t.join().unwrap_or(0)).unwrap_or(0)
    }
}

impl Drop for RecoveryChecker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Applies the recovery stage for one checkpoint report.
fn apply_recovery(
    rt: &Runtime,
    monitors: &[Weak<RawCore>],
    report: &FaultReport,
    log: &RecoveryLog,
) {
    // Entry-queue starvation on a monitor whose lock is stuck is the
    // recoverable signature of W6/X2/T1.
    let starved: Vec<MonitorId> = report
        .violations
        .iter()
        .filter(|v| matches!(v.rule, RuleId::St6EntryTimeout | RuleId::St5InsideTimeout))
        .map(|v| v.monitor)
        .collect();
    if starved.is_empty() {
        return;
    }
    for weak in monitors {
        let Some(core) = weak.upgrade() else { continue };
        if starved.contains(&core.id()) && core.force_release() {
            log.actions
                .lock()
                .push(RecoveryAction::ForceReleased { monitor: core.id(), at: rt.now() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundedBuffer, MonitorError, OperationCell, RtFault, Runtime};
    use rmon_core::DetectorConfig;

    fn fast_rt() -> Runtime {
        Runtime::builder(
            DetectorConfig::builder()
                .t_max(Nanos::from_millis(30))
                .t_io(Nanos::from_millis(30))
                .t_limit(Nanos::from_millis(60))
                .check_interval(Nanos::from_millis(10))
                .build(),
        )
        .park_timeout(Duration::from_millis(800))
        .build()
    }

    #[test]
    fn stuck_lock_is_detected_and_recovered() {
        let rt = fast_rt();
        let buf = BoundedBuffer::new(&rt, "buf", 2);
        let recovery =
            RecoveryChecker::spawn(&rt, vec![buf.core_weak()], Duration::from_millis(10));
        buf.arm_fault(RtFault::StickLockOnExit);
        // The first send exits with a stuck lock; without recovery the
        // second call would starve to its park timeout.
        buf.send(1).expect("first send completes (lock sticks after it)");
        buf.send(2).expect("recovered: second send must be admitted");
        assert_eq!(buf.receive().expect("recovered receive"), Some(1));
        let actions = recovery.log().actions();
        recovery.stop();
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, RecoveryAction::ForceReleased { monitor, .. } if *monitor == buf.id())),
            "{actions:?}"
        );
        // The fault itself was still *reported* (detection first,
        // recovery second).
        assert!(!rt.is_clean());
    }

    #[test]
    fn abandoned_monitor_is_recovered_for_other_threads() {
        let rt = fast_rt();
        let cell = OperationCell::new(&rt, "cell", 0u64);
        let recovery =
            RecoveryChecker::spawn(&rt, vec![cell.core_weak()], Duration::from_millis(10));
        cell.operate_and_die(|n| *n += 1).expect("operation before dying");
        // Without recovery this would time out (see the cell tests);
        // with recovery the monitor becomes usable again.
        let v = cell.operate(|n| *n).expect("recovered operation");
        assert_eq!(v, 1);
        recovery.stop();
        assert!(!rt.is_clean(), "the termination fault must still be reported");
    }

    #[test]
    fn clean_workload_triggers_no_recovery() {
        let rt = fast_rt();
        let buf = BoundedBuffer::new(&rt, "buf", 2);
        let recovery =
            RecoveryChecker::spawn(&rt, vec![buf.core_weak()], Duration::from_millis(10));
        for i in 0..100 {
            buf.send(i).expect("send");
            let _ = buf.receive().expect("receive");
        }
        std::thread::sleep(Duration::from_millis(30));
        assert!(recovery.log().is_empty());
        recovery.stop();
        assert!(rt.is_clean());
    }

    #[test]
    fn recovery_is_bounded_by_detection() {
        // A monitor that merely *looks* slow (no violation) is never
        // force-released: park-timeout errors still surface if the
        // detector saw nothing.
        let rt = Runtime::builder(DetectorConfig::without_timeouts())
            .park_timeout(Duration::from_millis(100))
            .build();
        let cell = OperationCell::new(&rt, "cell", ());
        let recovery =
            RecoveryChecker::spawn(&rt, vec![cell.core_weak()], Duration::from_millis(10));
        cell.arm_fault(RtFault::StickLockOnExit);
        cell.operate(|()| ()).expect("first operation");
        // Timers are disabled: the stuck lock produces no violation, so
        // no recovery happens and the next call times out.
        let err = cell.operate(|()| ()).unwrap_err();
        assert_eq!(err, MonitorError::Timeout);
        assert!(recovery.log().is_empty());
        recovery.stop();
    }
}
