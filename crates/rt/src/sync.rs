//! A minimal fast-path mutex for the monitor hot path.
//!
//! The vendored `parking_lot` shim wraps `std::sync::Mutex`, whose
//! lock/unlock round trip is the single largest fixed cost of a
//! monitor primitive after the recording pipeline work. Real
//! parking_lot earns its speed with an inline atomic fast path and an
//! out-of-line parking slow path; [`FastMutex`] reproduces the shape
//! for the two locks that need it — the monitor protocol state and the
//! guarded user data — without a parking lot: the contended path spins
//! briefly, then yields, then sleeps with capped exponential backoff.
//!
//! That waiting strategy is acceptable **only** because of how these
//! two locks are used:
//!
//! * critical sections are a few hundred nanoseconds (queue pushes,
//!   counter updates, one event append) — the spin phase absorbs
//!   almost all contention;
//! * the single long hold is a checkpoint suspending every monitor
//!   ([`crate::RawCore::suspend`]), during which blocked ops *should*
//!   get off the CPU — the backoff sleep does exactly that;
//! * neither lock is ever paired with a condition variable (the
//!   hand-off protocol parks on per-waiter [`crate::raw::Gate`]s,
//!   which keep their own std primitives), so no wakeup protocol is
//!   needed.
//!
//! Not a general-purpose mutex: no poisoning, no fairness guarantee,
//! crate-private on purpose.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A spin-then-yield-then-sleep mutex (see the [module docs](self)).
#[derive(Debug, Default)]
pub(crate) struct FastMutex<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the mutex provides the usual exclusive-access guarantee —
// `lock` admits one holder at a time (the CAS on `locked`), and the
// release store in `Drop` publishes the holder's writes to the next
// acquirer.
unsafe impl<T: ?Sized + Send> Send for FastMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for FastMutex<T> {}

impl<T> FastMutex<T> {
    /// Creates a mutex protecting `value`.
    pub(crate) fn new(value: T) -> Self {
        FastMutex { locked: AtomicBool::new(false), data: UnsafeCell::new(value) }
    }
}

impl<T: ?Sized> FastMutex<T> {
    /// Acquires the mutex, blocking until available.
    #[inline]
    pub(crate) fn lock(&self) -> FastMutexGuard<'_, T> {
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.lock_contended();
        }
        FastMutexGuard { mutex: self }
    }

    /// The out-of-line contended path: spin, then yield, then sleep
    /// with exponential backoff capped at 100 µs (a checkpoint may
    /// hold every monitor's lock for milliseconds; sleepers must get
    /// off the CPU so the checking finishes).
    #[cold]
    fn lock_contended(&self) {
        let mut spins = 0u32;
        let mut sleep = Duration::from_micros(1);
        loop {
            // Read-only wait loop: avoid hammering the line with CAS.
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else if spins < 96 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(sleep);
                    sleep = (sleep * 2).min(Duration::from_micros(100));
                }
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }
}

/// RAII guard for [`FastMutex`].
#[derive(Debug)]
pub(crate) struct FastMutexGuard<'a, T: ?Sized> {
    mutex: &'a FastMutex<T>,
}

impl<T: ?Sized> Deref for FastMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive ownership of the lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for FastMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self` forbids aliasing guards.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for FastMutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.mutex.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_correctly_under_contention() {
        let m = Arc::new(FastMutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn long_hold_parks_waiters_without_livelock() {
        // Model the checkpoint pattern: one thread holds the lock for
        // "a long time" while others queue up behind it.
        let m = Arc::new(FastMutex::new(0u32));
        let g = m.lock();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                *m.lock() += 1;
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 3);
    }
}
