//! The typed robust monitor: the paper's augmented monitor construct
//! for real threads.

use crate::error::MonitorError;
use crate::inject::RtFault;
use crate::raw::RawCore;
use crate::registry::current_pid;
use crate::runtime::Runtime;
use crate::sync::FastMutex;
use rmon_core::{CondId, MonitorId, MonitorSpec, MonitorState, Pid, ProcName};
use std::sync::Arc;
use std::sync::Weak;

/// A monitor protecting shared data `T`, instrumented with the
/// run-time fault-detection extension.
///
/// Procedures are expressed by the caller: [`Monitor::enter`] with the
/// procedure's [`ProcName`] yields a [`MonitorGuard`] through which the
/// body accesses the data ([`MonitorGuard::with`]), blocks on
/// conditions ([`MonitorGuard::wait`]) and leaves via the combined
/// [`MonitorGuard::signal_exit`]. Higher-level wrappers
/// ([`crate::BoundedBuffer`], [`crate::ResourceAllocator`],
/// [`crate::OperationCell`]) package the three monitor types of the
/// paper's classification.
///
/// # Examples
///
/// ```
/// use rmon_core::DetectorConfig;
/// use rmon_rt::{Monitor, Runtime};
///
/// let rt = Runtime::new(DetectorConfig::default());
/// let spec = rmon_core::monitor_spec! {
///     name: "counter",
///     class: OperationManager,
///     procedures: { bump: Plain },
/// };
/// let mon: Monitor<u64> = Monitor::new(&rt, spec, 0);
/// let bump = mon.spec().proc_by_name("bump").unwrap();
///
/// let guard = mon.enter(bump)?;
/// guard.with(|n| *n += 1);
/// guard.signal_exit(None);
/// assert!(rt.checkpoint_now().is_clean());
/// # Ok::<(), rmon_rt::MonitorError>(())
/// ```
#[derive(Debug)]
pub struct Monitor<T> {
    core: Arc<RawCore>,
    data: Arc<FastMutex<T>>,
}

impl<T> Clone for Monitor<T> {
    fn clone(&self) -> Self {
        Monitor { core: Arc::clone(&self.core), data: Arc::clone(&self.data) }
    }
}

impl<T> Monitor<T> {
    /// Creates a monitor in `rt` from its declaration and initial data.
    pub fn new(rt: &Runtime, spec: MonitorSpec, data: T) -> Monitor<T> {
        let core = RawCore::new(Arc::clone(&rt.inner), Arc::new(spec));
        Monitor { core, data: Arc::new(FastMutex::new(data)) }
    }

    /// The monitor's identifier.
    pub fn id(&self) -> MonitorId {
        self.core.id()
    }

    /// The monitor's declaration.
    pub fn spec(&self) -> &MonitorSpec {
        self.core.spec()
    }

    /// Arms a one-shot protocol fault on this monitor.
    pub fn arm_fault(&self, fault: RtFault) {
        self.core.arm_fault(fault);
    }

    /// A weak handle to the protocol core (for the recovery checker).
    pub fn core_weak(&self) -> Weak<RawCore> {
        Arc::downgrade(&self.core)
    }

    /// Enters the monitor as procedure `proc_name`, blocking while it
    /// is busy.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] if the caller was not admitted within
    /// the runtime's park timeout.
    pub fn enter(&self, proc_name: ProcName) -> Result<MonitorGuard<'_, T>, MonitorError> {
        let pid = current_pid();
        self.core.enter(pid, proc_name)?;
        Ok(MonitorGuard { mon: self, pid, proc_name, active: true })
    }

    /// Real-time lookahead: would entering as `proc_name` violate a
    /// calling-order rule right now (for the calling thread)?
    pub fn call_would_violate(&self, proc_name: ProcName) -> Option<rmon_core::RuleId> {
        let pid = current_pid();
        self.core.runtime().call_would_violate(self.id(), pid, proc_name)
    }

    /// Observed scheduling state (queues only; checkpoints additionally
    /// fill `R#` from the registered closure).
    pub fn snapshot(&self) -> MonitorState {
        self.core.snapshot_queues()
    }

    /// Reads the protected data *outside* the monitor protocol
    /// (diagnostics and snapshots only — no scheduling event is
    /// recorded; regular access goes through [`MonitorGuard::with`]).
    pub fn peek_data<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.data.lock())
    }
}

/// Exclusive occupancy of a [`Monitor`]: the body of a monitor
/// procedure.
///
/// Dropping the guard performs a plain `Signal-Exit` (no condition) —
/// the common case for procedures that signal nothing.
#[derive(Debug)]
pub struct MonitorGuard<'m, T> {
    mon: &'m Monitor<T>,
    pid: Pid,
    proc_name: ProcName,
    active: bool,
}

impl<'m, T> MonitorGuard<'m, T> {
    /// Runs `f` over the protected data.
    ///
    /// The data sits behind its own small mutex so that injected
    /// protocol faults (two threads "inside") stay memory-safe; under a
    /// correct protocol the lock is uncontended.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.mon.data.lock())
    }

    /// The calling process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Blocks on `CQ[cond]`, releasing the monitor; returns once
    /// signalled (owning the monitor again, Hoare hand-off).
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] if never signalled within the park
    /// timeout; the guard is deactivated (the monitor is not owned
    /// anymore) and must not be used further.
    pub fn wait(&mut self, cond: CondId) -> Result<(), MonitorError> {
        match self.mon.core.wait(self.pid, self.proc_name, cond) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.active = false;
                Err(e)
            }
        }
    }

    /// Whether any process waits on `CQ[cond]` — Hoare's
    /// `condition.queue()` predicate, used by monitors whose exits pick
    /// which condition to signal.
    pub fn has_waiters(&self, cond: CondId) -> bool {
        self.mon
            .core
            .snapshot_queues()
            .cond_queues
            .get(cond.as_usize())
            .is_some_and(|q| !q.is_empty())
    }

    /// Leaves the monitor, signalling `cond` (the paper's combined
    /// `Signal-Exit` primitive).
    pub fn signal_exit(self, cond: Option<CondId>) {
        self.signal_exit_adjust(cond, 0);
    }

    /// Leaves the monitor, signalling `cond` and adjusting the
    /// observable resource counter `R#` by `delta` atomically with the
    /// recorded event (−1 when the completed call consumed capacity,
    /// +1 when it freed capacity). The paper counts a call as
    /// *successful* at its completion, so this is the point where the
    /// resource effect becomes observable to the checker.
    pub fn signal_exit_adjust(mut self, cond: Option<CondId>, delta: i64) {
        self.mon.core.signal_exit(self.pid, self.proc_name, cond, delta);
        self.active = false;
    }

    /// Terminates "inside" the monitor (fault T1): records the internal
    /// termination and abandons the monitor without releasing it —
    /// modelling a process that crashes in its critical section.
    pub fn abandon(mut self) {
        self.mon.core.terminate_inside(self.pid, self.proc_name);
        self.active = false;
    }
}

impl<'m, T> Drop for MonitorGuard<'m, T> {
    fn drop(&mut self) {
        if self.active {
            self.mon.core.signal_exit(self.pid, self.proc_name, None, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::{DetectorConfig, RuleId};
    use std::time::Duration;

    fn plain_spec() -> MonitorSpec {
        rmon_core::monitor_spec! {
            name: "cell",
            class: OperationManager,
            procedures: { op: Plain },
        }
    }

    fn quick_rt() -> Runtime {
        Runtime::builder(DetectorConfig::without_timeouts())
            .park_timeout(Duration::from_millis(200))
            .build()
    }

    #[test]
    fn enter_with_and_exit() {
        let rt = quick_rt();
        let mon = Monitor::new(&rt, plain_spec(), 41u64);
        let op = ProcName::new(0);
        let g = mon.enter(op).unwrap();
        g.with(|n| *n += 1);
        g.signal_exit(None);
        assert_eq!(rt.events_recorded(), 2);
        assert!(rt.checkpoint_now().is_clean());
    }

    #[test]
    fn drop_performs_exit() {
        let rt = quick_rt();
        let mon = Monitor::new(&rt, plain_spec(), ());
        {
            let _g = mon.enter(ProcName::new(0)).unwrap();
        }
        assert_eq!(rt.events_recorded(), 2, "enter + signal-exit on drop");
        assert!(rt.checkpoint_now().is_clean());
    }

    #[test]
    fn contended_entry_serializes() {
        let rt = quick_rt();
        let mon = Monitor::new(&rt, plain_spec(), 0u64);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mon = mon.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let g = mon.enter(ProcName::new(0)).unwrap();
                    g.with(|n| *n += 1);
                    g.signal_exit(None);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let g = mon.enter(ProcName::new(0)).unwrap();
        assert_eq!(g.with(|n| *n), 200);
        g.signal_exit(None);
        let report = rt.checkpoint_now();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn abandon_records_termination() {
        let rt = quick_rt();
        let mon = Monitor::new(&rt, plain_spec(), ());
        let g = mon.enter(ProcName::new(0)).unwrap();
        g.abandon();
        let report = rt.checkpoint_now();
        assert!(report.violates_any(&[RuleId::St5InsideTimeout]), "{report}");
    }

    #[test]
    fn armed_grant_while_busy_is_detected() {
        let rt = quick_rt();
        let mon = Monitor::new(&rt, plain_spec(), ());
        mon.arm_fault(RtFault::GrantWhileBusy);
        let g1 = mon.enter(ProcName::new(0)).unwrap();
        // Second thread is granted concurrently by the injected fault.
        let mon2 = mon.clone();
        let h = std::thread::spawn(move || {
            let g2 = mon2.enter(ProcName::new(0)).unwrap();
            g2.signal_exit(None);
        });
        h.join().unwrap();
        g1.signal_exit(None);
        let report = rt.checkpoint_now();
        assert!(
            report.violates_any(&[RuleId::St3RunningUnique, RuleId::St3RunningAtMostOne]),
            "{report}"
        );
    }

    #[test]
    fn snapshot_shows_owner() {
        let rt = quick_rt();
        let mon = Monitor::new(&rt, plain_spec(), ());
        let g = mon.enter(ProcName::new(0)).unwrap();
        let s = mon.snapshot();
        assert_eq!(s.running.len(), 1);
        g.signal_exit(None);
        assert!(mon.snapshot().running.is_empty());
    }
}
