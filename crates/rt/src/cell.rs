//! The resource-operation-manager monitor type (§2.1): the monitor
//! encapsulates the resource *and* its operations; user processes issue
//! single operations and synchronization is implicit.

use crate::error::MonitorError;
use crate::monitor::Monitor;
use crate::runtime::Runtime;
use rmon_core::{MonitorId, MonitorSpec, ProcName};

/// A robust operation manager: shared state with implicitly
/// synchronized operations.
///
/// # Examples
///
/// ```
/// use rmon_core::DetectorConfig;
/// use rmon_rt::{OperationCell, Runtime};
///
/// let rt = Runtime::new(DetectorConfig::default());
/// let counter = OperationCell::new(&rt, "counter", 0u64);
/// counter.operate(|n| *n += 1)?;
/// assert_eq!(counter.operate(|n| *n)?, 1);
/// assert!(rt.checkpoint_now().is_clean());
/// # Ok::<(), rmon_rt::MonitorError>(())
/// ```
#[derive(Debug)]
pub struct OperationCell<T> {
    mon: Monitor<T>,
    operate_proc: ProcName,
}

impl<T> Clone for OperationCell<T> {
    fn clone(&self) -> Self {
        OperationCell { mon: self.mon.clone(), operate_proc: self.operate_proc }
    }
}

impl<T: Send + 'static> OperationCell<T> {
    /// Creates an operation manager around `data`.
    pub fn new(rt: &Runtime, name: &str, data: T) -> Self {
        let mg = MonitorSpec::operation_manager(name);
        let mon = Monitor::new(rt, mg.spec, data);
        OperationCell { mon, operate_proc: mg.operate }
    }

    /// The underlying monitor id.
    pub fn id(&self) -> MonitorId {
        self.mon.id()
    }

    /// Arms a one-shot protocol fault on the underlying monitor.
    pub fn arm_fault(&self, fault: crate::inject::RtFault) {
        self.mon.arm_fault(fault);
    }

    /// A weak handle to the protocol core (for the recovery checker).
    pub fn core_weak(&self) -> std::sync::Weak<crate::RawCore> {
        self.mon.core_weak()
    }

    /// Performs one implicitly synchronized operation.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Timeout`] when starved past the runtime's park
    /// timeout.
    pub fn operate<R>(&self, f: impl FnOnce(&mut T) -> R) -> Result<R, MonitorError> {
        let g = self.mon.enter(self.operate_proc)?;
        let r = g.with(f);
        g.signal_exit(None);
        Ok(r)
    }

    /// Performs an operation and then *abandons* the monitor (fault T1
    /// helper for tests and the fault-injection campaign).
    pub fn operate_and_die<R>(&self, f: impl FnOnce(&mut T) -> R) -> Result<R, MonitorError> {
        let g = self.mon.enter(self.operate_proc)?;
        let r = g.with(f);
        g.abandon();
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::{DetectorConfig, RuleId};
    use std::time::Duration;

    fn rt() -> Runtime {
        Runtime::builder(DetectorConfig::without_timeouts())
            .park_timeout(Duration::from_millis(200))
            .build()
    }

    #[test]
    fn operations_apply_in_mutual_exclusion() {
        let rt = rt();
        let cell = OperationCell::new(&rt, "cnt", 0u64);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    cell.operate(|n| *n += 1).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.operate(|n| *n).unwrap(), 400);
        assert!(rt.checkpoint_now().is_clean());
    }

    #[test]
    fn operate_and_die_is_flagged() {
        let rt = rt();
        let cell = OperationCell::new(&rt, "cnt", 0u64);
        cell.operate_and_die(|n| *n += 1).unwrap();
        let report = rt.checkpoint_now();
        assert!(report.violates_any(&[RuleId::St5InsideTimeout]), "{report}");
        // The dead owner keeps the monitor: the next operation times
        // out, and the checker keeps flagging the stuck state.
        let err = cell.operate(|n| *n).unwrap_err();
        assert_eq!(err, MonitorError::Timeout);
    }
}
