//! The resource-access-right-allocator monitor type (§2.1): `request`
//! / `release` with real-time calling-order checks (Algorithm-3).

use crate::error::MonitorError;
use crate::monitor::Monitor;
use crate::registry::current_pid;
use crate::runtime::{OrderPolicy, Runtime};
use rmon_core::{CondId, MonitorId, MonitorSpec, ProcName, RuleId, Violation};

#[derive(Debug)]
struct AllocInner {
    avail: u64,
}

/// A robust resource allocator: processes acquire and return access
/// rights; the declared call order `path (request ; release)* end` is
/// checked **at call time**, per the paper's requirement that
/// user-process-level faults be detected in real time.
///
/// Under [`OrderPolicy::Report`] (the paper's semantics) a faulty call
/// is recorded, reported and allowed to proceed — a double request on a
/// single-unit allocator then self-deadlocks for real, which the
/// periodic checker also flags through its timers. Under
/// [`OrderPolicy::Deny`] the faulty call is refused with
/// [`MonitorError::Denied`] before executing.
///
/// # Examples
///
/// ```
/// use rmon_core::DetectorConfig;
/// use rmon_rt::{ResourceAllocator, Runtime};
///
/// let rt = Runtime::new(DetectorConfig::default());
/// let printer = ResourceAllocator::new(&rt, "printer", 1);
/// printer.request()?;
/// // … use the printer …
/// printer.release()?;
/// assert!(rt.checkpoint_now().is_clean());
/// # Ok::<(), rmon_rt::MonitorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ResourceAllocator {
    mon: Monitor<AllocInner>,
    request_proc: ProcName,
    release_proc: ProcName,
    avail_cond: CondId,
    policy: OrderPolicy,
}

impl ResourceAllocator {
    /// Creates an allocator managing `units` interchangeable access
    /// rights, inheriting the runtime's order policy.
    pub fn new(rt: &Runtime, name: &str, units: u64) -> Self {
        let al = MonitorSpec::allocator(name, units);
        let mon = Monitor::new(rt, al.spec, AllocInner { avail: units });
        ResourceAllocator {
            mon,
            request_proc: al.request,
            release_proc: al.release,
            avail_cond: al.avail_cond,
            policy: rt.order_policy(),
        }
    }

    /// The underlying monitor id.
    pub fn id(&self) -> MonitorId {
        self.mon.id()
    }

    /// Acquires one access right, waiting while none is available.
    ///
    /// # Errors
    ///
    /// * [`MonitorError::Denied`] under [`OrderPolicy::Deny`] when the
    ///   calling thread already holds a right (fault U3 prevented).
    /// * [`MonitorError::Timeout`] when starved past the park timeout
    ///   (e.g. the *consequence* of a reported double request).
    pub fn request(&self) -> Result<(), MonitorError> {
        self.deny_if_violating(self.request_proc)?;
        let mut g = self.mon.enter(self.request_proc)?;
        let none_free = g.with(|d| d.avail == 0);
        if none_free {
            g.wait(self.avail_cond)?;
        }
        g.with(|d| d.avail = d.avail.saturating_sub(1));
        g.signal_exit_adjust(None, -1);
        Ok(())
    }

    /// Returns one access right.
    ///
    /// # Errors
    ///
    /// * [`MonitorError::Denied`] under [`OrderPolicy::Deny`] when the
    ///   calling thread holds no right (fault U1 prevented).
    /// * [`MonitorError::Timeout`] when starved past the park timeout.
    pub fn release(&self) -> Result<(), MonitorError> {
        self.deny_if_violating(self.release_proc)?;
        let g = self.mon.enter(self.release_proc)?;
        g.with(|d| d.avail += 1);
        g.signal_exit_adjust(Some(self.avail_cond), 1);
        Ok(())
    }

    /// Units currently available (observed through a plain monitor
    /// entry, so it participates in the recorded history).
    pub fn available(&self) -> Result<u64, MonitorError> {
        // Peeking reuses the release procedure name would corrupt the
        // call-order tracking; snapshotting the data lock directly is
        // the honest read-only path.
        Ok(self.peek())
    }

    fn peek(&self) -> u64 {
        // Data lives behind its own lock; reading it does not interact
        // with the monitor protocol.
        let mut val = 0;
        let probe = |d: &mut AllocInner| val = d.avail;
        // Use the data lock through a scoped helper on Monitor.
        self.mon.peek_data(probe);
        val
    }

    fn deny_if_violating(&self, proc_name: ProcName) -> Result<(), MonitorError> {
        if self.policy != OrderPolicy::Deny {
            return Ok(());
        }
        if let Some(rule) = self.mon.call_would_violate(proc_name) {
            let v = Violation::new(
                self.mon.id(),
                rule,
                rmon_core::Nanos::ZERO,
                format!(
                    "call to {} by {} denied by real-time order check",
                    self.mon.spec().proc_display(proc_name),
                    current_pid()
                ),
            )
            .with_pid(current_pid());
            return Err(MonitorError::Denied(Box::new(v)));
        }
        Ok(())
    }

    /// The rule a hypothetical call would violate right now, if any
    /// (real-time lookahead, regardless of policy).
    pub fn call_would_violate(&self, release: bool) -> Option<RuleId> {
        let p = if release { self.release_proc } else { self.request_proc };
        self.mon.call_would_violate(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::DetectorConfig;
    use std::time::Duration;

    fn rt(policy: OrderPolicy) -> Runtime {
        Runtime::builder(DetectorConfig::without_timeouts())
            .park_timeout(Duration::from_millis(200))
            .order_policy(policy)
            .build()
    }

    #[test]
    fn request_release_cycle_is_clean() {
        let rt = rt(OrderPolicy::Report);
        let al = ResourceAllocator::new(&rt, "res", 1);
        al.request().unwrap();
        al.release().unwrap();
        assert!(rt.checkpoint_now().is_clean());
    }

    #[test]
    fn contended_allocator_serializes() {
        let rt = rt(OrderPolicy::Report);
        let al = ResourceAllocator::new(&rt, "res", 2);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let al = al.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    al.request().unwrap();
                    al.release().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(al.available().unwrap(), 2);
        let report = rt.checkpoint_now();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn release_without_request_is_reported_in_real_time() {
        let rt = rt(OrderPolicy::Report);
        let al = ResourceAllocator::new(&rt, "res", 1);
        al.release().unwrap(); // faulty, but allowed under Report
        let vs = rt.realtime_violations();
        assert!(vs.iter().any(|v| v.rule == RuleId::St8ReleaseWithoutRequest), "{vs:?}");
    }

    #[test]
    fn deny_policy_refuses_release_without_request() {
        let rt = rt(OrderPolicy::Deny);
        let al = ResourceAllocator::new(&rt, "res", 1);
        let err = al.release().unwrap_err();
        assert!(matches!(err, MonitorError::Denied(_)));
        // Nothing executed: a subsequent correct cycle works.
        al.request().unwrap();
        al.release().unwrap();
    }

    #[test]
    fn deny_policy_refuses_double_request() {
        let rt = rt(OrderPolicy::Deny);
        let al = ResourceAllocator::new(&rt, "res", 2);
        al.request().unwrap();
        let err = al.request().unwrap_err();
        assert!(matches!(err, MonitorError::Denied(_)));
        al.release().unwrap();
    }

    #[test]
    fn reported_double_request_self_deadlocks_and_times_out() {
        let rt = rt(OrderPolicy::Report);
        let al = ResourceAllocator::new(&rt, "res", 1);
        al.request().unwrap();
        // Second request blocks on the (empty) availability condition
        // and times out; the real-time check reported ST-8a already.
        let err = al.request().unwrap_err();
        assert_eq!(err, MonitorError::Timeout);
        assert!(rt.realtime_violations().iter().any(|v| v.rule == RuleId::St8DuplicateRequest));
    }

    #[test]
    fn lookahead_reflects_holding_state() {
        let rt = rt(OrderPolicy::Report);
        let al = ResourceAllocator::new(&rt, "res", 1);
        assert_eq!(al.call_would_violate(true), Some(RuleId::St8ReleaseWithoutRequest));
        assert_eq!(al.call_would_violate(false), None);
        al.request().unwrap();
        assert_eq!(al.call_would_violate(false), Some(RuleId::St8DuplicateRequest));
        assert_eq!(al.call_would_violate(true), None);
        al.release().unwrap();
    }
}
