//! Error type of the real-thread runtime.

use rmon_core::Violation;
use std::fmt;

/// Errors returned by monitor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// The calling thread gave up waiting (entry or condition queue)
    /// after the configured park timeout. Under a correct monitor this
    /// only happens when an injected fault or a user-level deadlock
    /// starves the caller — the background checker reports the
    /// corresponding rule violation independently.
    Timeout,
    /// The call was denied by a real-time calling-order check (policy
    /// [`crate::OrderPolicy::Deny`]); the violation that triggered the
    /// denial is attached.
    Denied(Box<Violation>),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Timeout => write!(f, "timed out waiting for the monitor"),
            MonitorError::Denied(v) => write!(f, "call denied by real-time check: {v}"),
        }
    }
}

impl std::error::Error for MonitorError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::{MonitorId, Nanos, RuleId};

    #[test]
    fn display_variants() {
        assert!(MonitorError::Timeout.to_string().contains("timed out"));
        let v = Violation::new(MonitorId::new(0), RuleId::St8DuplicateRequest, Nanos::ZERO, "dup");
        let e = MonitorError::Denied(Box::new(v));
        assert!(e.to_string().contains("ST-8a"));
    }
}
