//! The robust-monitor runtime: shared recorder, detector, snapshot
//! registry and the pause lock that suspends monitor operations during
//! checking (the paper: *"upon detection, all other running processes
//! are suspended and are resumed only after the checking has
//! finished"*).

use crate::raw::RawCore;
use crate::recorder::Recorder;
use parking_lot::{Mutex, RwLock};
use rmon_core::detect::Detector;
use rmon_core::{
    DetectorConfig, Event, EventKind, FaultReport, MonitorId, MonitorState, Nanos, Pid, ProcName,
    ProcRole, Violation,
};
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// What to do when a real-time calling-order check flags a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Record and report the violation; let the faulty call proceed
    /// (the paper's detection-only semantics).
    #[default]
    Report,
    /// Refuse the call with [`crate::MonitorError::Denied`] before it
    /// executes (fault *prevention* — a natural extension).
    Deny,
}

/// Shared state behind [`Runtime`].
pub(crate) struct RtInner {
    pub(crate) recorder: Recorder,
    pub(crate) detector: Mutex<Detector>,
    pub(crate) pause: RwLock<()>,
    pub(crate) park_timeout: Duration,
    pub(crate) order_policy: OrderPolicy,
    monitors: Mutex<Vec<Weak<RawCore>>>,
    next_monitor_id: AtomicU32,
    reports: Mutex<Vec<FaultReport>>,
    realtime: Mutex<Vec<Violation>>,
    /// Monitors with calling-order concerns (a declared path
    /// expression or Request/Release-role procedures). Only their
    /// events need the synchronous real-time check; everything else is
    /// covered by the periodic checkpoint catch-up, so the hot path
    /// skips the detector lock.
    order_monitors: Mutex<HashSet<MonitorId>>,
}

impl std::fmt::Debug for RtInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtInner")
            .field("park_timeout", &self.park_timeout)
            .field("order_policy", &self.order_policy)
            .field("events", &self.recorder.total())
            .finish_non_exhaustive()
    }
}

impl RtInner {
    pub(crate) fn allocate_monitor_id(&self) -> MonitorId {
        MonitorId::new(self.next_monitor_id.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn register_monitor(self: &Arc<Self>, core: &Arc<RawCore>) {
        self.monitors.lock().push(Arc::downgrade(core));
        let spec = core.spec();
        let needs_order = spec.call_order.is_some()
            || spec
                .procedures
                .iter()
                .any(|p| matches!(p.role, ProcRole::Request | ProcRole::Release));
        if needs_order {
            self.order_monitors.lock().insert(core.id());
        }
        let mut initial = MonitorState::new(spec.cond_count());
        initial.available = spec.capacity;
        self.detector.lock().register(core.id(), Arc::clone(spec), &initial, self.recorder.now());
    }

    /// Records an event and runs the real-time (Algorithm-3) checks.
    pub(crate) fn record_observe(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
    ) -> Vec<Violation> {
        let event = self.recorder.record(monitor, pid, proc_name, kind);
        if !self.order_monitors.lock().contains(&monitor) {
            // No calling-order concerns: the periodic checkpoint's
            // Algorithm-3 catch-up covers this event; skip the
            // synchronous detector pass on the hot path.
            return Vec::new();
        }
        let vs = self.detector.lock().observe(&event);
        if !vs.is_empty() {
            self.realtime.lock().extend(vs.iter().cloned());
        }
        vs
    }

    /// The paper-faithful (§3.1, unoptimized) checking routine: keeps
    /// the **entire** recorded history and re-checks all of it against
    /// the declarative FD-Rules on every invocation, while all monitor
    /// operations are suspended. Provided for the Table-1 ablation —
    /// the §3.3 checking lists exist precisely to avoid this cost.
    pub(crate) fn checkpoint_full_history(&self, history: &mut Vec<Event>) -> u64 {
        let _w = self.pause.write();
        let now = self.recorder.now();
        history.extend(self.recorder.drain_window());
        let cfg = *self.detector.lock().config();
        let mut checked = 0u64;
        for weak in self.monitors.lock().iter() {
            if let Some(core) = weak.upgrade() {
                let id = core.id();
                let events: Vec<Event> =
                    history.iter().filter(|e| e.monitor == id).copied().collect();
                checked += events.len() as u64;
                let snapshot = core.snapshot_queues();
                let violations = rmon_core::reference::check_history(
                    id,
                    core.spec(),
                    &cfg,
                    &events,
                    Some(&snapshot),
                    now,
                );
                if !violations.is_empty() {
                    self.realtime.lock().extend(violations);
                }
            }
        }
        checked
    }

    /// Runs one checkpoint: suspends monitor operations, drains the
    /// window, snapshots every live monitor, and invokes the periodic
    /// checking routine.
    pub(crate) fn checkpoint_now(&self) -> FaultReport {
        let _w = self.pause.write();
        let now = self.recorder.now();
        let events = self.recorder.drain_window();
        let mut snaps = HashMap::new();
        for weak in self.monitors.lock().iter() {
            if let Some(core) = weak.upgrade() {
                snaps.insert(core.id(), core.snapshot_queues());
            }
        }
        let report = self.detector.lock().checkpoint(now, &events, &snaps);
        self.reports.lock().push(report.clone());
        report
    }
}

/// Handle to a robust-monitor runtime. Cheap to clone; monitors created
/// against it share one recorder, one detector and one checker.
#[derive(Debug, Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<RtInner>,
}

impl Runtime {
    /// Creates a runtime with the given detection configuration and
    /// defaults (5 s park timeout, [`OrderPolicy::Report`]).
    pub fn new(cfg: DetectorConfig) -> Self {
        Self::builder(cfg).build()
    }

    /// Starts building a runtime.
    pub fn builder(cfg: DetectorConfig) -> RuntimeBuilder {
        RuntimeBuilder {
            cfg,
            park_timeout: Duration::from_secs(5),
            order_policy: OrderPolicy::Report,
        }
    }

    /// Monotonic nanoseconds since the runtime was created.
    pub fn now(&self) -> Nanos {
        self.inner.recorder.now()
    }

    /// The configured order policy.
    pub fn order_policy(&self) -> OrderPolicy {
        self.inner.order_policy
    }

    /// Runs the periodic checking routine once, right now (suspending
    /// monitor operations for the duration, as the paper's prototype
    /// does).
    pub fn checkpoint_now(&self) -> FaultReport {
        self.inner.checkpoint_now()
    }

    /// All checkpoint reports so far.
    pub fn reports(&self) -> Vec<FaultReport> {
        self.inner.reports.lock().clone()
    }

    /// All real-time (calling-order) violations so far.
    pub fn realtime_violations(&self) -> Vec<Violation> {
        self.inner.realtime.lock().clone()
    }

    /// Every violation seen so far (checkpoints + real-time).
    pub fn all_violations(&self) -> Vec<Violation> {
        let mut out: Vec<Violation> =
            self.reports().into_iter().flat_map(|r| r.violations).collect();
        out.extend(self.realtime_violations());
        out
    }

    /// Whether no violation has been reported yet.
    pub fn is_clean(&self) -> bool {
        self.inner.reports.lock().iter().all(FaultReport::is_clean)
            && self.inner.realtime.lock().is_empty()
    }

    /// Total events recorded.
    pub fn events_recorded(&self) -> u64 {
        self.inner.recorder.total()
    }

    /// Detection configuration.
    pub fn config(&self) -> DetectorConfig {
        *self.inner.detector.lock().config()
    }
}

/// Builder for [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    cfg: DetectorConfig,
    park_timeout: Duration,
    order_policy: OrderPolicy,
}

impl RuntimeBuilder {
    /// How long a thread parks on a queue before giving up with
    /// [`crate::MonitorError::Timeout`] (a liveness safety net under
    /// injected faults; correct workloads never hit it).
    pub fn park_timeout(mut self, d: Duration) -> Self {
        self.park_timeout = d;
        self
    }

    /// Sets the real-time calling-order policy.
    pub fn order_policy(mut self, p: OrderPolicy) -> Self {
        self.order_policy = p;
        self
    }

    /// Finishes the runtime.
    pub fn build(self) -> Runtime {
        Runtime {
            inner: Arc::new(RtInner {
                recorder: Recorder::new(),
                detector: Mutex::new(Detector::new(self.cfg)),
                pause: RwLock::new(()),
                park_timeout: self.park_timeout,
                order_policy: self.order_policy,
                monitors: Mutex::new(Vec::new()),
                next_monitor_id: AtomicU32::new(0),
                reports: Mutex::new(Vec::new()),
                realtime: Mutex::new(Vec::new()),
                order_monitors: Mutex::new(HashSet::new()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_defaults() {
        let rt = Runtime::new(DetectorConfig::default());
        assert_eq!(rt.order_policy(), OrderPolicy::Report);
        assert!(rt.is_clean());
        assert_eq!(rt.events_recorded(), 0);
        assert!(rt.now() < Nanos::from_secs(5));
    }

    #[test]
    fn builder_overrides() {
        let rt = Runtime::builder(DetectorConfig::default())
            .park_timeout(Duration::from_millis(50))
            .order_policy(OrderPolicy::Deny)
            .build();
        assert_eq!(rt.order_policy(), OrderPolicy::Deny);
        assert_eq!(rt.inner.park_timeout, Duration::from_millis(50));
    }

    #[test]
    fn checkpoint_on_empty_runtime_is_clean() {
        let rt = Runtime::new(DetectorConfig::default());
        let report = rt.checkpoint_now();
        assert!(report.is_clean());
        assert_eq!(rt.reports().len(), 1);
    }
}
