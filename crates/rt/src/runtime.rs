//! The robust-monitor runtime: shared recorder, detector, snapshot
//! registry and the pause lock that suspends monitor operations during
//! checking (the paper: *"upon detection, all other running processes
//! are suspended and are resumed only after the checking has
//! finished"*).

use crate::raw::RawCore;
use crate::recorder::Recorder;
use parking_lot::{Mutex, RwLock};
use rmon_core::detect::{Detector, ServiceConfig, ShardedDetector};
use rmon_core::{
    DetectorConfig, Event, EventKind, FaultReport, MonitorId, Nanos, Pid, ProcName, ProcRole,
    RuleId, Violation,
};
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// What to do when a real-time calling-order check flags a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Record and report the violation; let the faulty call proceed
    /// (the paper's detection-only semantics).
    #[default]
    Report,
    /// Refuse the call with [`crate::MonitorError::Denied`] before it
    /// executes (fault *prevention* — a natural extension).
    Deny,
}

/// Which detection engine the runtime drives.
///
/// `Inline` is the paper's shape: one [`Detector`] behind one lock,
/// checked synchronously. `Sharded` routes the same event stream
/// through a [`ShardedDetector`] — monitors partition across worker
/// shards and observed events are ingested in batches — which is the
/// scaling backend for runtimes hosting many monitors. Detection
/// results are identical; only where the checking work runs differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectorBackend {
    /// One inline [`Detector`] (today's default; zero extra threads).
    #[default]
    Inline,
    /// A [`ShardedDetector`] with `shards` worker threads; real-time
    /// observations are buffered and flushed to the service in batches
    /// of `batch` events (amortising dispatch), and always before any
    /// checkpoint or synchronous order query.
    Sharded {
        /// Worker shard count (clamped to at least 1).
        shards: usize,
        /// Observe-path batch size (clamped to at least 1).
        batch: usize,
    },
}

/// The backend behind [`RtInner`]: the inline detector, or the sharded
/// service plus its observe-path batch buffer.
enum BackendImpl {
    Inline(Mutex<Detector>),
    Sharded { service: ShardedDetector, pending: Mutex<Vec<Event>>, batch: usize },
}

impl BackendImpl {
    fn new(cfg: DetectorConfig, backend: DetectorBackend) -> Self {
        match backend {
            DetectorBackend::Inline => BackendImpl::Inline(Mutex::new(Detector::new(cfg))),
            DetectorBackend::Sharded { shards, batch } => BackendImpl::Sharded {
                service: ShardedDetector::new(cfg, ServiceConfig::new(shards)),
                pending: Mutex::new(Vec::new()),
                batch: batch.max(1),
            },
        }
    }

    /// Pushes any buffered observe-path events into the sharded
    /// service. No-op for the inline backend.
    ///
    /// The send happens **while holding the pending lock**: the shard
    /// workers drop events at or below their Algorithm-3 watermark, so
    /// two flushers racing the send outside the lock could deliver a
    /// monitor's batches out of seq order and silently lose the older
    /// batch's order checks. Serializing take-and-send keeps every
    /// shard's inbox seq-ordered per monitor. (No lock cycle: the
    /// workers never touch this lock, so blocking on a full bounded
    /// inbox here is plain backpressure.)
    fn flush_pending(&self) {
        if let BackendImpl::Sharded { service, pending, .. } = self {
            let mut pend = pending.lock();
            if !pend.is_empty() {
                let events = std::mem::take(&mut *pend);
                service.observe_batch(&events);
            }
        }
    }
}

/// Shared state behind [`Runtime`].
pub(crate) struct RtInner {
    pub(crate) recorder: Recorder,
    cfg: DetectorConfig,
    backend: BackendImpl,
    backend_kind: DetectorBackend,
    pub(crate) pause: RwLock<()>,
    pub(crate) park_timeout: Duration,
    pub(crate) order_policy: OrderPolicy,
    monitors: Mutex<Vec<Weak<RawCore>>>,
    next_monitor_id: AtomicU32,
    reports: Mutex<Vec<FaultReport>>,
    realtime: Mutex<Vec<Violation>>,
    /// Monitors with calling-order concerns (a declared path
    /// expression or Request/Release-role procedures). Only their
    /// events need the synchronous real-time check; everything else is
    /// covered by the periodic checkpoint catch-up, so the hot path
    /// skips the detector lock.
    order_monitors: Mutex<HashSet<MonitorId>>,
}

impl std::fmt::Debug for RtInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtInner")
            .field("park_timeout", &self.park_timeout)
            .field("order_policy", &self.order_policy)
            .field("events", &self.recorder.total())
            .finish_non_exhaustive()
    }
}

impl RtInner {
    pub(crate) fn allocate_monitor_id(&self) -> MonitorId {
        MonitorId::new(self.next_monitor_id.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn register_monitor(self: &Arc<Self>, core: &Arc<RawCore>) {
        self.monitors.lock().push(Arc::downgrade(core));
        let spec = core.spec();
        let needs_order = spec.call_order.is_some()
            || spec
                .procedures
                .iter()
                .any(|p| matches!(p.role, ProcRole::Request | ProcRole::Release));
        if needs_order {
            self.order_monitors.lock().insert(core.id());
        }
        let initial = spec.empty_state();
        let now = self.recorder.now();
        match &self.backend {
            BackendImpl::Inline(det) => {
                det.lock().register(core.id(), Arc::clone(spec), &initial, now);
            }
            BackendImpl::Sharded { service, .. } => {
                service.register(core.id(), Arc::clone(spec), &initial, now);
            }
        }
    }

    /// Records an event and runs the real-time (Algorithm-3) checks.
    ///
    /// With the [`DetectorBackend::Sharded`] backend the check is
    /// asynchronous: the event joins the batch buffer (flushed to the
    /// service at the batch size) and the returned vector is empty —
    /// violations surface through the collector at the next checkpoint
    /// or violation query.
    pub(crate) fn record_observe(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
    ) -> Vec<Violation> {
        let event = self.recorder.record(monitor, pid, proc_name, kind);
        if !self.order_monitors.lock().contains(&monitor) {
            // No calling-order concerns: the periodic checkpoint's
            // Algorithm-3 catch-up covers this event; skip the
            // synchronous detector pass on the hot path.
            return Vec::new();
        }
        match &self.backend {
            BackendImpl::Inline(det) => {
                let vs = det.lock().observe(&event);
                if !vs.is_empty() {
                    self.realtime.lock().extend(vs.iter().cloned());
                }
                vs
            }
            BackendImpl::Sharded { service, pending, batch } => {
                // The send stays under the pending lock — see
                // `flush_pending` for why reordered sends would lose
                // order checks to the shard watermarks.
                let mut pend = pending.lock();
                pend.push(event);
                if pend.len() >= *batch {
                    let events = std::mem::take(&mut *pend);
                    service.observe_batch(&events);
                }
                Vec::new()
            }
        }
    }

    /// Non-mutating real-time calling-order lookahead, routed to the
    /// active backend (pending sharded batches are flushed first so the
    /// answer reflects every recorded event).
    pub(crate) fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        match &self.backend {
            BackendImpl::Inline(det) => det.lock().call_would_violate(monitor, pid, proc_name),
            BackendImpl::Sharded { service, .. } => {
                self.backend.flush_pending();
                service.call_would_violate(monitor, pid, proc_name)
            }
        }
    }

    /// Moves violations the sharded collector has accumulated into the
    /// runtime's real-time list. No-op for the inline backend (which
    /// appends synchronously in [`Self::record_observe`]).
    pub(crate) fn drain_backend_violations(&self) {
        if let BackendImpl::Sharded { service, .. } = &self.backend {
            self.backend.flush_pending();
            service.flush();
            let vs = service.drain_violations();
            if !vs.is_empty() {
                self.realtime.lock().extend(vs);
            }
        }
    }

    /// The paper-faithful (§3.1, unoptimized) checking routine: keeps
    /// the **entire** recorded history and re-checks all of it against
    /// the declarative FD-Rules on every invocation, while all monitor
    /// operations are suspended. Provided for the Table-1 ablation —
    /// the §3.3 checking lists exist precisely to avoid this cost.
    pub(crate) fn checkpoint_full_history(&self, history: &mut Vec<Event>) -> u64 {
        let _w = self.pause.write();
        let now = self.recorder.now();
        history.extend(self.recorder.drain_window());
        let cfg = self.cfg;
        let mut checked = 0u64;
        for weak in self.monitors.lock().iter() {
            if let Some(core) = weak.upgrade() {
                let id = core.id();
                let events: Vec<Event> =
                    history.iter().filter(|e| e.monitor == id).copied().collect();
                checked += events.len() as u64;
                let snapshot = core.snapshot_queues();
                let violations = rmon_core::reference::check_history(
                    id,
                    core.spec(),
                    &cfg,
                    &events,
                    Some(&snapshot),
                    now,
                );
                if !violations.is_empty() {
                    self.realtime.lock().extend(violations);
                }
            }
        }
        checked
    }

    /// Runs one checkpoint: suspends monitor operations, drains the
    /// window, snapshots every live monitor, and invokes the periodic
    /// checking routine.
    pub(crate) fn checkpoint_now(&self) -> FaultReport {
        let _w = self.pause.write();
        let now = self.recorder.now();
        let events = self.recorder.drain_window();
        let mut snaps = HashMap::new();
        for weak in self.monitors.lock().iter() {
            if let Some(core) = weak.upgrade() {
                snaps.insert(core.id(), core.snapshot_queues());
            }
        }
        let report = match &self.backend {
            BackendImpl::Inline(det) => det.lock().checkpoint(now, &events, &snaps),
            BackendImpl::Sharded { service, .. } => {
                // Everything observed so far must reach the shards
                // before they check, and their collected real-time
                // violations must land in the runtime's list.
                self.drain_backend_violations();
                service.checkpoint(now, &events, &snaps)
            }
        };
        self.reports.lock().push(report.clone());
        report
    }
}

/// Handle to a robust-monitor runtime. Cheap to clone; monitors created
/// against it share one recorder, one detector and one checker.
#[derive(Debug, Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<RtInner>,
}

impl Runtime {
    /// Creates a runtime with the given detection configuration and
    /// defaults (5 s park timeout, [`OrderPolicy::Report`]).
    pub fn new(cfg: DetectorConfig) -> Self {
        Self::builder(cfg).build()
    }

    /// Starts building a runtime.
    pub fn builder(cfg: DetectorConfig) -> RuntimeBuilder {
        RuntimeBuilder {
            cfg,
            park_timeout: Duration::from_secs(5),
            order_policy: OrderPolicy::Report,
            backend: DetectorBackend::Inline,
        }
    }

    /// Monotonic nanoseconds since the runtime was created.
    pub fn now(&self) -> Nanos {
        self.inner.recorder.now()
    }

    /// The configured order policy.
    pub fn order_policy(&self) -> OrderPolicy {
        self.inner.order_policy
    }

    /// Runs the periodic checking routine once, right now (suspending
    /// monitor operations for the duration, as the paper's prototype
    /// does).
    pub fn checkpoint_now(&self) -> FaultReport {
        self.inner.checkpoint_now()
    }

    /// All checkpoint reports so far.
    pub fn reports(&self) -> Vec<FaultReport> {
        self.inner.reports.lock().clone()
    }

    /// The backend the runtime was built with.
    pub fn detector_backend(&self) -> DetectorBackend {
        self.inner.backend_kind
    }

    /// Per-shard ingestion counters of the sharded backend; `None` for
    /// [`DetectorBackend::Inline`]. Pending batches are flushed first,
    /// so the snapshot is quiescent.
    pub fn service_stats(&self) -> Option<rmon_core::detect::ServiceStats> {
        match &self.inner.backend {
            BackendImpl::Inline(_) => None,
            BackendImpl::Sharded { service, .. } => {
                self.inner.backend.flush_pending();
                service.flush();
                Some(service.stats())
            }
        }
    }

    /// All real-time (calling-order) violations so far.
    pub fn realtime_violations(&self) -> Vec<Violation> {
        self.inner.drain_backend_violations();
        self.inner.realtime.lock().clone()
    }

    /// Every violation seen so far (checkpoints + real-time).
    pub fn all_violations(&self) -> Vec<Violation> {
        let mut out: Vec<Violation> =
            self.reports().into_iter().flat_map(|r| r.violations).collect();
        out.extend(self.realtime_violations());
        out
    }

    /// Whether no violation has been reported yet.
    pub fn is_clean(&self) -> bool {
        self.inner.drain_backend_violations();
        self.inner.reports.lock().iter().all(FaultReport::is_clean)
            && self.inner.realtime.lock().is_empty()
    }

    /// Total events recorded.
    pub fn events_recorded(&self) -> u64 {
        self.inner.recorder.total()
    }

    /// Detection configuration.
    pub fn config(&self) -> DetectorConfig {
        self.inner.cfg
    }
}

/// Builder for [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    cfg: DetectorConfig,
    park_timeout: Duration,
    order_policy: OrderPolicy,
    backend: DetectorBackend,
}

impl RuntimeBuilder {
    /// How long a thread parks on a queue before giving up with
    /// [`crate::MonitorError::Timeout`] (a liveness safety net under
    /// injected faults; correct workloads never hit it).
    pub fn park_timeout(mut self, d: Duration) -> Self {
        self.park_timeout = d;
        self
    }

    /// Sets the real-time calling-order policy.
    pub fn order_policy(mut self, p: OrderPolicy) -> Self {
        self.order_policy = p;
        self
    }

    /// Selects the detection backend (default
    /// [`DetectorBackend::Inline`]).
    pub fn detector_backend(mut self, backend: DetectorBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Finishes the runtime.
    pub fn build(self) -> Runtime {
        Runtime {
            inner: Arc::new(RtInner {
                recorder: Recorder::new(),
                cfg: self.cfg,
                backend: BackendImpl::new(self.cfg, self.backend),
                backend_kind: self.backend,
                pause: RwLock::new(()),
                park_timeout: self.park_timeout,
                order_policy: self.order_policy,
                monitors: Mutex::new(Vec::new()),
                next_monitor_id: AtomicU32::new(0),
                reports: Mutex::new(Vec::new()),
                realtime: Mutex::new(Vec::new()),
                order_monitors: Mutex::new(HashSet::new()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_defaults() {
        let rt = Runtime::new(DetectorConfig::default());
        assert_eq!(rt.order_policy(), OrderPolicy::Report);
        assert!(rt.is_clean());
        assert_eq!(rt.events_recorded(), 0);
        assert!(rt.now() < Nanos::from_secs(5));
    }

    #[test]
    fn builder_overrides() {
        let rt = Runtime::builder(DetectorConfig::default())
            .park_timeout(Duration::from_millis(50))
            .order_policy(OrderPolicy::Deny)
            .build();
        assert_eq!(rt.order_policy(), OrderPolicy::Deny);
        assert_eq!(rt.inner.park_timeout, Duration::from_millis(50));
    }

    #[test]
    fn checkpoint_on_empty_runtime_is_clean() {
        let rt = Runtime::new(DetectorConfig::default());
        let report = rt.checkpoint_now();
        assert!(report.is_clean());
        assert_eq!(rt.reports().len(), 1);
    }

    #[test]
    fn default_backend_is_inline() {
        let rt = Runtime::new(DetectorConfig::default());
        assert_eq!(rt.detector_backend(), DetectorBackend::Inline);
        assert!(rt.service_stats().is_none());
    }

    fn sharded_rt(shards: usize, batch: usize) -> Runtime {
        Runtime::builder(DetectorConfig::without_timeouts())
            .detector_backend(DetectorBackend::Sharded { shards, batch })
            .park_timeout(Duration::from_millis(200))
            .build()
    }

    #[test]
    fn sharded_backend_clean_fleet_stays_clean() {
        let rt = sharded_rt(4, 8);
        let allocators: Vec<_> =
            (0..8).map(|i| crate::ResourceAllocator::new(&rt, &format!("r{i}"), 1)).collect();
        for al in &allocators {
            al.request().unwrap();
            al.release().unwrap();
        }
        assert!(rt.checkpoint_now().is_clean());
        assert!(rt.is_clean());
        let stats = rt.service_stats().expect("sharded backend has stats");
        assert_eq!(stats.shard_count(), 4);
        assert_eq!(stats.shards.iter().map(|s| s.monitors).sum::<u64>(), 8);
        // Each request/release records Enter + Signal-Exit: 8 monitors
        // × 2 calls × 2 events, all through the batched path.
        assert_eq!(stats.total_events(), 32);
    }

    #[test]
    fn sharded_backend_reports_order_faults_like_inline() {
        let rt = sharded_rt(2, 4);
        let al = crate::ResourceAllocator::new(&rt, "res", 2);
        al.request().unwrap();
        // Duplicate request by the same thread: fault U3 / ST-8a.
        let _ = al.request();
        let vs = rt.realtime_violations();
        assert!(
            vs.iter().any(|v| v.rule == rmon_core::RuleId::St8DuplicateRequest),
            "sharded backend must surface the duplicate request: {vs:?}"
        );
        assert!(!rt.is_clean());
    }

    #[test]
    fn sharded_backend_deny_policy_uses_synchronous_lookahead() {
        let rt = Runtime::builder(DetectorConfig::without_timeouts())
            .detector_backend(DetectorBackend::Sharded { shards: 3, batch: 16 })
            .order_policy(OrderPolicy::Deny)
            .build();
        let al = crate::ResourceAllocator::new(&rt, "res", 1);
        // Release before any request must be denied even while the
        // batch buffer is far from full (the lookahead flushes it).
        assert!(matches!(al.release(), Err(crate::MonitorError::Denied(_))));
        al.request().unwrap();
        al.release().unwrap();
        assert!(rt.checkpoint_now().is_clean());
    }
}
