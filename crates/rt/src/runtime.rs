//! The robust-monitor runtime: shared recorder, pluggable detection
//! backend, snapshot registry and the checkpoint suspension protocol
//! (the paper: *"upon detection, all other running processes are
//! suspended and are resumed only after the checking has finished"* —
//! realized by holding every live monitor's state lock for the
//! duration of the check, so the hot path pays no extra lock; see
//! [`RawCore::suspend`]).
//!
//! Detection is behind the [`DetectionBackend`] trait: the runtime
//! holds an `Arc<dyn DetectionBackend>` and each observing thread
//! ingests through its own per-thread
//! [`ProducerHandle`](rmon_core::detect::ProducerHandle) (see
//! [`crate::registry`]), so the hot path acquires no mutex shared
//! between threads. [`InlineBackend`] keeps the paper's shape (one
//! detector, synchronous checks); [`ShardedBackend`] and
//! [`ScheduledBackend`](rmon_core::detect::ScheduledBackend) move the
//! checking work onto worker shards.

use crate::raw::RawCore;
use crate::recorder::Recorder;
use crate::registry;
use parking_lot::Mutex;
use rmon_core::detect::{
    CheckpointScope, ClockFn, DetectionBackend, InlineBackend, ServiceStats, SnapshotProvider,
};
use rmon_core::{
    DetectorConfig, Event, EventKind, EventSink, FaultReport, Mode, MonitorId, MonitorState, Nanos,
    Pid, ProcName, RuleId, Violation, ViolationSink,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// What to do when a real-time calling-order check flags a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Record and report the violation; let the faulty call proceed
    /// (the paper's detection-only semantics).
    #[default]
    Report,
    /// Refuse the call with [`crate::MonitorError::Denied`] before it
    /// executes (fault *prevention* — a natural extension).
    Deny,
}

/// How a [`RuntimeBuilder`] obtains its backend at build time.
#[derive(Clone)]
enum BackendChoice {
    /// The default: an [`InlineBackend`] over the builder's config.
    Default,
    /// A backend the caller constructed.
    Ready(Arc<dyn DetectionBackend>),
    /// A factory invoked with the runtime's detection config and the
    /// recorder's clock — the way to build a backend (for example a
    /// scheduled one) whose internal timers run on the same time axis
    /// events are stamped with.
    Factory(Arc<dyn Fn(DetectorConfig, ClockFn) -> Arc<dyn DetectionBackend> + Send + Sync>),
}

impl std::fmt::Debug for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Default => f.write_str("Default"),
            BackendChoice::Ready(b) => write!(f, "Ready({})", b.label()),
            BackendChoice::Factory(_) => f.write_str("Factory(..)"),
        }
    }
}

/// Process-wide runtime token source: keys the per-thread producer
/// handles, so one thread can observe into several runtimes (tests do)
/// without their handles colliding.
static NEXT_RT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Shared state behind [`Runtime`].
pub(crate) struct RtInner {
    pub(crate) recorder: Arc<Recorder>,
    cfg: DetectorConfig,
    backend: Arc<dyn DetectionBackend>,
    token: u64,
    pub(crate) park_timeout: Duration,
    pub(crate) order_policy: OrderPolicy,
    /// Live monitors indexed by id: the snapshot provider resolves a
    /// monitor in O(1) (it runs three lookups per monitor per sweep),
    /// and the checkpoint paths take an id-sorted view so concurrent
    /// suspension sweeps always acquire state locks in one global
    /// order.
    monitors: Mutex<HashMap<MonitorId, Weak<RawCore>>>,
    next_monitor_id: AtomicU32,
    reports: Mutex<Vec<FaultReport>>,
    realtime: Mutex<Vec<Violation>>,
    /// Durable journal endpoints (usually two views of one
    /// `rmon-storage` `DurableSink`). Appends happen at registration
    /// time and checkpoint barriers only — never on the per-event hot
    /// path; the recorder's in-memory window is the staging area.
    event_sink: Option<Arc<dyn EventSink>>,
    violation_sink: Option<Arc<dyn ViolationSink>>,
    /// Journal commit state. The mutex also serializes checkpoint
    /// commit sequences, so two concurrent barriers cannot interleave
    /// their `Events → Realtime → Checkpoint` records.
    journal: Mutex<JournalState>,
    /// Journal appends that failed (disk errors). Detection itself
    /// never blocks or panics on a failing journal; operators watch
    /// this counter ([`Runtime::journal_errors`]).
    journal_errors: AtomicU64,
}

/// Bookkeeping for the journal's commit protocol. A verdict may only be
/// journaled once the event it refers to sits in a *committed* window —
/// otherwise a crash that tears the next window off the log would leave
/// a recorded verdict with no recorded cause, and differential replay
/// could not reproduce it. The backend can hand us such early verdicts:
/// an event recorded just after the barrier's window drain can be
/// ingested, checked and collected before the same barrier drains the
/// backend's violations.
#[derive(Debug, Default)]
struct JournalState {
    /// How much of the runtime's `realtime` list has been examined.
    examined_realtime: usize,
    /// Highest event `seq` seen in any committed window.
    seq_high: u64,
    /// Seqs at or below `seq_high` that no committed window contained:
    /// stamped but not yet published when their window drained (seq
    /// assignment and segment publication are two steps). They arrive
    /// in a later window; until then their verdicts are held back. The
    /// set stays tiny — bounded by in-flight recording threads.
    gaps: std::collections::BTreeSet<u64>,
    /// Verdicts whose events are not yet committed, carried to the
    /// next barrier.
    holdback: Vec<Violation>,
}

impl JournalState {
    /// Folds a freshly committed window into the frontier.
    fn commit_window(&mut self, events: &[Event]) {
        let Some(max) = events.iter().map(|e| e.seq).max() else { return };
        let seen: std::collections::HashSet<u64> = events.iter().map(|e| e.seq).collect();
        for s in &seen {
            self.gaps.remove(s);
        }
        for s in self.seq_high + 1..=max {
            if !seen.contains(&s) {
                self.gaps.insert(s);
            }
        }
        self.seq_high = self.seq_high.max(max);
    }

    /// Whether a verdict's cause is in a committed window (verdicts
    /// with no event reference pass — they carry their own cause).
    fn committed(&self, v: &Violation) -> bool {
        v.event_seq.is_none_or(|s| s <= self.seq_high && !self.gaps.contains(&s))
    }
}

impl std::fmt::Debug for RtInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtInner")
            .field("backend", &self.backend.label())
            .field("park_timeout", &self.park_timeout)
            .field("order_policy", &self.order_policy)
            .field("events", &self.recorder.total())
            .finish_non_exhaustive()
    }
}

impl RtInner {
    pub(crate) fn allocate_monitor_id(&self) -> MonitorId {
        MonitorId::new(self.next_monitor_id.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn register_monitor(self: &Arc<Self>, core: &Arc<RawCore>) {
        self.monitors.lock().insert(core.id(), Arc::downgrade(core));
        let spec = core.spec();
        let initial = spec.empty_state();
        let now = self.recorder.now();
        self.backend.register(core.id(), Arc::clone(spec), &initial, now);
        // Journal the registration before any of the monitor's events
        // can drain: a replayer resolving the name back to its spec
        // then always sees the Register record first.
        if let Some(sink) = &self.event_sink {
            self.journal_try(sink.append_register(core.id(), &spec.name, now));
        }
    }

    /// Folds a journal append result into the error counter — the
    /// journal is an observer, never a gate on detection.
    fn journal_try(&self, result: std::io::Result<()>) {
        if result.is_err() {
            self.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an event into the calling thread's recorder segment and
    /// — when `stream_realtime` is set (monitors with calling-order
    /// concerns, see [`RawCore`]) — feeds the real-time (Algorithm-3)
    /// path through the same thread's producer handle. One thread-local
    /// lookup reaches both; no cross-thread lock is acquired on this
    /// path. Violations surface through the backend collector at the
    /// next checkpoint or violation query. Events of monitors without
    /// order concerns skip the producer entirely: the periodic
    /// checkpoint's catch-up replay covers them.
    ///
    /// How hard the recording thread pushes is the monitor's
    /// **instrumentation mode**, answered per event by
    /// [`DetectionBackend::instrumentation_mode`] (so a mode-aware
    /// backend like
    /// [`AsyncBackend`](rmon_core::detect::AsyncBackend) can retune a
    /// monitor at run time):
    ///
    /// * [`Mode::Sync`] (the default; every non-mode-aware backend) —
    ///   non-blocking first: the handle's
    ///   [`try_observe`](rmon_core::detect::ProducerHandle::try_observe)
    ///   either hands the batch over or reports backpressure, and the
    ///   recording thread then retries a bounded number of times
    ///   (yielding between attempts, so a single-core host lets the
    ///   shard workers drain) before escalating to the blocking flush —
    ///   events are never dropped, but a transiently full inbox no
    ///   longer parks the monitored thread on the first refusal.
    /// * [`Mode::Async`] — fire-and-forget: one `try_observe`, never a
    ///   block. A refused batch stays retained in the handle and is
    ///   re-offered on the thread's next observation or flush (see the
    ///   pressure flag in `rmon_core::detect::backend`), and every
    ///   backend barrier flushes thread producers first, so asynchrony
    ///   defers checking latency without ever losing an event.
    /// * [`Mode::Hybrid`]`(t)` — Sync's yield-retry loop, but bounded
    ///   by the wall-clock budget `t` instead of a retry count; on
    ///   expiry the thread detaches exactly like Async.
    pub(crate) fn record_observe(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
        stream_realtime: bool,
    ) {
        /// Non-blocking flush attempts before falling back to the
        /// blocking hand-off (Sync mode).
        const INGEST_RETRIES: usize = 8;
        // One backend call per event, outside the thread-state borrow:
        // mode cells are lock-free reads, and non-mode-aware backends
        // answer with the constant default.
        let mode =
            if stream_realtime { self.backend.instrumentation_mode(monitor) } else { Mode::Sync };
        registry::with_thread_state(self.token, &self.recorder, &self.backend, |st| {
            let event = self.recorder.record_on(&mut st.segment, monitor, pid, proc_name, kind);
            if !stream_realtime {
                return;
            }
            match mode {
                Mode::Async => {
                    let _ = st.producer.try_observe(event);
                }
                Mode::Sync => {
                    if st.producer.try_observe(event).is_full() {
                        let mut delivered = false;
                        for _ in 0..INGEST_RETRIES {
                            std::thread::yield_now();
                            if !st.producer.try_flush().is_full() {
                                delivered = true;
                                break;
                            }
                        }
                        if !delivered {
                            st.producer.flush();
                        }
                    }
                }
                Mode::Hybrid(bound) => {
                    if st.producer.try_observe(event).is_full() {
                        let deadline = std::time::Instant::now() + bound.to_duration();
                        loop {
                            std::thread::yield_now();
                            if !st.producer.try_flush().is_full()
                                || std::time::Instant::now() >= deadline
                            {
                                break;
                            }
                        }
                    }
                }
            }
        });
    }

    /// Flushes the calling thread's producer handle, so a subsequent
    /// backend barrier reflects everything this thread observed.
    fn flush_thread_producer(&self) {
        registry::with_thread_state(self.token, &self.recorder, &self.backend, |st| {
            st.producer.flush()
        });
    }

    /// Non-mutating real-time calling-order lookahead. The calling
    /// thread's handle is flushed first, so the answer reflects every
    /// event *this* thread already recorded — which, with per-caller
    /// order state, is exactly what the verdict depends on.
    pub(crate) fn call_would_violate(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        self.flush_thread_producer();
        self.backend.call_would_violate(monitor, pid, proc_name)
    }

    /// Moves violations the backend has collected into the runtime's
    /// real-time list, after flushing the calling thread's handle.
    pub(crate) fn drain_backend_violations(&self) {
        self.flush_thread_producer();
        let vs = self.backend.drain_violations();
        if !vs.is_empty() {
            self.realtime.lock().extend(vs);
        }
    }

    /// Upgrades the live monitor list, **sorted by id**. The `monitors`
    /// mutex is released before any state lock is taken, so
    /// registration (which inserts under the same mutex) never
    /// interleaves with a suspension sweep; the sort gives every
    /// suspension sweep the same lock-acquisition order, so two
    /// concurrent checkpoints cannot deadlock on each other's held
    /// guards.
    fn live_monitors(&self) -> Vec<Arc<RawCore>> {
        let mut cores: Vec<Arc<RawCore>> =
            self.monitors.lock().values().filter_map(Weak::upgrade).collect();
        cores.sort_unstable_by_key(|core| core.id());
        cores
    }

    /// Looks one live monitor up by id (the snapshot-provider path —
    /// three lookups per monitor per sweep, so this is O(1)).
    fn find_monitor(&self, monitor: MonitorId) -> Option<Arc<RawCore>> {
        self.monitors.lock().get(&monitor)?.upgrade()
    }

    /// The paper-faithful (§3.1, unoptimized) checking routine: keeps
    /// the **entire** recorded history and re-checks all of it against
    /// the declarative FD-Rules on every invocation, while all monitor
    /// operations are suspended. Provided for the Table-1 ablation —
    /// the §3.3 checking lists exist precisely to avoid this cost.
    pub(crate) fn checkpoint_full_history(&self, history: &mut Vec<Event>) -> u64 {
        let monitors = self.live_monitors();
        let guards: Vec<_> = monitors.iter().map(|core| core.suspend()).collect();
        let now = self.recorder.now();
        history.extend(self.recorder.drain_window());
        let cfg = self.cfg;
        let mut checked = 0u64;
        for (core, guard) in monitors.iter().zip(&guards) {
            let id = core.id();
            let events: Vec<Event> = history.iter().filter(|e| e.monitor == id).copied().collect();
            checked += events.len() as u64;
            let snapshot = RawCore::snapshot_of(guard);
            let violations = rmon_core::reference::check_history(
                id,
                core.spec(),
                &cfg,
                &events,
                Some(&snapshot),
                now,
            );
            if !violations.is_empty() {
                self.realtime.lock().extend(violations);
            }
        }
        checked
    }

    /// Runs one checkpoint: suspends monitor operations (by holding
    /// every live monitor's state lock — see [`RawCore::suspend`]),
    /// drains the window, snapshots every suspended monitor, and
    /// invokes the periodic checking routine on the backend. Monitors
    /// created *while* the checkpoint runs are not suspended by it;
    /// their events simply land in the next window.
    ///
    /// Events still buffered in *other* threads' producer handles are
    /// not lost: the drained window contains them (the recorder is the
    /// source of truth) and the backend's per-caller watermarks
    /// deduplicate their eventual arrival.
    pub(crate) fn checkpoint_now(&self) -> FaultReport {
        let monitors = self.live_monitors();
        let guards: Vec<_> = monitors.iter().map(|core| core.suspend()).collect();
        let now = self.recorder.now();
        let events = self.recorder.drain_window();
        let mut snaps = HashMap::new();
        for (core, guard) in monitors.iter().zip(&guards) {
            snaps.insert(core.id(), RawCore::snapshot_of(guard));
        }
        self.flush_thread_producer();
        let report = self.backend.checkpoint_window(now, &events, &snaps);
        // Monitor operations stay suspended until the checking has
        // finished (the paper's protocol); release them now.
        drop(guards);
        // Real-time violations found by the backend up to the
        // checkpoint barrier land in the runtime's list now.
        let vs = self.backend.drain_violations();
        if !vs.is_empty() {
            self.realtime.lock().extend(vs);
        }
        self.reports.lock().push(report.clone());
        self.journal_checkpoint(now, &events, &snaps, &report);
        report
    }

    /// The journaled form of a scoped checkpoint: a **scoped barrier**.
    /// Only the in-scope monitors are suspended and snapshotted
    /// (scope resolution maps monitors to shards through
    /// [`DetectionBackend::shard_of`]), but the recorder window is
    /// drained in full — the journal's commit protocol tracks one
    /// global committed frontier, so narrowing the drain would poke
    /// permanent holes in it. The drained window, scoped snapshots and
    /// report then journal through the same `Events → Realtime →
    /// Checkpoint` commit sequence as [`RtInner::checkpoint_now`],
    /// which is what keeps the differential replayer oblivious to
    /// which scope produced a checkpoint record.
    pub(crate) fn checkpoint_scope_journaled(&self, scope: CheckpointScope) -> FaultReport {
        let in_scope: Vec<Arc<RawCore>> = self
            .live_monitors()
            .into_iter()
            .filter(|core| match scope {
                CheckpointScope::All => true,
                CheckpointScope::Monitor(m) => core.id() == m,
                CheckpointScope::Shard(s) => self.backend.shard_of(core.id()) == s,
            })
            .collect();
        let guards: Vec<_> = in_scope.iter().map(|core| core.suspend()).collect();
        let now = self.recorder.now();
        let events = self.recorder.drain_window();
        let mut snaps = HashMap::new();
        for (core, guard) in in_scope.iter().zip(&guards) {
            snaps.insert(core.id(), RawCore::snapshot_of(guard));
        }
        self.flush_thread_producer();
        let report = self.backend.checkpoint_window(now, &events, &snaps);
        drop(guards);
        let vs = self.backend.drain_violations();
        if !vs.is_empty() {
            self.realtime.lock().extend(vs);
        }
        self.reports.lock().push(report.clone());
        self.journal_checkpoint(now, &events, &snaps, &report);
        report
    }

    /// Journals one checkpoint commit sequence: `Events(window)` →
    /// `Realtime(verdicts since the last barrier)` → `Checkpoint`
    /// (the commit marker) → sync. A crash anywhere inside the
    /// sequence leaves the journal with a clean committed prefix —
    /// the replayer discards trailing records with no marker. Empty
    /// windows and empty verdict batches are elided (the replayer
    /// stages nothing for them anyway).
    fn journal_checkpoint(
        &self,
        now: Nanos,
        events: &[Event],
        snaps: &HashMap<MonitorId, MonitorState>,
        report: &FaultReport,
    ) {
        if self.event_sink.is_none() && self.violation_sink.is_none() {
            return;
        }
        let mut journal = self.journal.lock();
        if let Some(sink) = &self.event_sink {
            if !events.is_empty() {
                self.journal_try(sink.append_events(events));
            }
        }
        if let Some(sink) = &self.violation_sink {
            journal.commit_window(events);
            let mut candidates = std::mem::take(&mut journal.holdback);
            {
                let realtime = self.realtime.lock();
                candidates.extend_from_slice(&realtime[journal.examined_realtime..]);
                journal.examined_realtime = realtime.len();
            }
            let (ready, held): (Vec<Violation>, Vec<Violation>) =
                candidates.into_iter().partition(|v| journal.committed(v));
            journal.holdback = held;
            if !ready.is_empty() {
                self.journal_try(sink.append_realtime(&ready));
            }
            // The checkpoint report itself can cite events outside the
            // committed window: a *scoped* barrier leaves out-of-scope
            // monitors running, so their freshly recorded events may
            // reach the backend (through other threads' producer
            // flushes) and be judged before any window drains them.
            // Journal only the committed verdicts; hold the rest back —
            // they re-surface as realtime records once their window
            // commits, and the replayer compares verdict keys over the
            // whole log, not per record.
            let (committed, uncommitted): (Vec<Violation>, Vec<Violation>) =
                report.violations.iter().cloned().partition(|v| journal.committed(v));
            if uncommitted.is_empty() {
                self.journal_try(sink.append_checkpoint(now, snaps, report));
            } else {
                journal.holdback.extend(uncommitted);
                let sanitized = FaultReport { violations: committed, ..report.clone() };
                self.journal_try(sink.append_checkpoint(now, snaps, &sanitized));
            }
        }
        if let Some(sink) = &self.event_sink {
            self.journal_try(sink.sync());
        }
    }
}

impl Drop for RtInner {
    fn drop(&mut self) {
        // Stop backend threads and mark the per-thread handles closed,
        // so stale handles on still-living threads get pruned — but
        // only when this runtime is the backend's sole owner. A caller
        // who kept their own `Arc` (or handed it elsewhere) keeps a
        // live backend; its own drop shuts it down when the last
        // reference goes.
        if Arc::strong_count(&self.backend) == 1 {
            self.backend.shutdown();
        }
    }
}

/// The runtime's [`SnapshotProvider`]: observes live monitor state by
/// reading each monitor's queues under its own state lock — the same
/// per-monitor `FastMutex` the primitives record their events under, so
/// every observation is internally consistent without any global pause.
///
/// Automatically registered on the runtime's detection backend at build
/// time, which is what upgrades scoped backend checkpoints (and the
/// scheduled backend's background shard sweeps) from timer-only checks
/// to the full Algorithm-1/2 comparison.
///
/// Consistency with the *ingested* event stream is answered through
/// [`SnapshotProvider::events_recorded`]: the per-monitor recorded
/// count moves atomically with the queue state (both mutate under the
/// state lock), so a backend bracketing its snapshot between two equal
/// counter reads knows exactly how many events the observation
/// reflects, and defers the comparison until its replay has consumed
/// that many. Monitors that do not stream in real time (no
/// calling-order concerns) therefore keep their snapshot comparisons
/// for the synchronous [`Runtime::checkpoint_now`] barrier — the gate
/// simply never opens for them between windows.
///
/// Holds only a [`Weak`] reference: a provider outliving its runtime
/// degrades to answering `None`, it never keeps the runtime alive.
#[derive(Debug, Clone)]
pub struct RuntimeSnapshotProvider {
    inner: Weak<RtInner>,
}

impl SnapshotProvider for RuntimeSnapshotProvider {
    fn snapshot(&self, monitor: MonitorId, _now: Nanos) -> Option<MonitorState> {
        let inner = self.inner.upgrade()?;
        let core = inner.find_monitor(monitor)?;
        Some(core.snapshot_queues())
    }

    fn snapshot_all(&self, _now: Nanos) -> HashMap<MonitorId, MonitorState> {
        let Some(inner) = self.inner.upgrade() else { return HashMap::new() };
        inner.live_monitors().iter().map(|core| (core.id(), core.snapshot_queues())).collect()
    }

    fn events_recorded(&self, monitor: MonitorId) -> Option<u64> {
        let inner = self.inner.upgrade()?;
        Some(inner.find_monitor(monitor)?.events_recorded())
    }
}

/// Handle to a robust-monitor runtime. Cheap to clone; monitors created
/// against it share one recorder, one detection backend and one
/// checker.
#[derive(Debug, Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<RtInner>,
}

impl Runtime {
    /// Creates a runtime with the given detection configuration and
    /// defaults (5 s park timeout, [`OrderPolicy::Report`], inline
    /// backend).
    pub fn new(cfg: DetectorConfig) -> Self {
        Self::builder(cfg).build()
    }

    /// Starts building a runtime.
    pub fn builder(cfg: DetectorConfig) -> RuntimeBuilder {
        RuntimeBuilder {
            cfg,
            park_timeout: Duration::from_secs(5),
            order_policy: OrderPolicy::Report,
            backend: BackendChoice::Default,
            event_sink: None,
            violation_sink: None,
        }
    }

    /// Monotonic nanoseconds since the runtime was created.
    pub fn now(&self) -> Nanos {
        self.inner.recorder.now()
    }

    /// The configured order policy.
    pub fn order_policy(&self) -> OrderPolicy {
        self.inner.order_policy
    }

    /// Runs the periodic checking routine once, right now (suspending
    /// monitor operations for the duration, as the paper's prototype
    /// does): drains the recorded window, snapshots every suspended
    /// monitor and routes both through
    /// [`DetectionBackend::checkpoint_window`] — the synchronous
    /// full-fidelity barrier. For the asynchronous, no-pause variant
    /// see [`Self::checkpoint_scope`].
    pub fn checkpoint_now(&self) -> FaultReport {
        self.inner.checkpoint_now()
    }

    /// Runs a **scoped**, provider-backed checkpoint through
    /// [`DetectionBackend::checkpoint`]: no window is drained and no
    /// monitor is suspended — the backend replays the events it
    /// ingested in real time and compares against state observed
    /// through the runtime's [`RuntimeSnapshotProvider`] (registered at
    /// build time), consistency-gated per monitor. The cheap form for
    /// per-shard sweeps and on-demand checks of a single suspicious
    /// monitor; [`Self::checkpoint_now`] remains the stop-the-world
    /// consistency barrier.
    ///
    /// The report is folded into [`Self::reports`] like any other
    /// checkpoint.
    ///
    /// With a journal installed ([`RuntimeBuilder::journal`] or either
    /// sink), scoped checkpoints **commit**: the call becomes a scoped
    /// barrier that suspends only the in-scope monitors, drains the
    /// full recorder window and journals the same `Events → Realtime →
    /// Checkpoint` sequence as [`Self::checkpoint_now`] — previously
    /// only the global barrier journaled, so a crash between scoped
    /// checkpoints lost their windows.
    pub fn checkpoint_scope(&self, scope: CheckpointScope) -> FaultReport {
        if self.inner.event_sink.is_some() || self.inner.violation_sink.is_some() {
            return self.inner.checkpoint_scope_journaled(scope);
        }
        self.inner.flush_thread_producer();
        let now = self.inner.recorder.now();
        let report = self.inner.backend.checkpoint(scope, now);
        let vs = self.inner.backend.drain_violations();
        if !vs.is_empty() {
            self.inner.realtime.lock().extend(vs);
        }
        self.inner.reports.lock().push(report.clone());
        report
    }

    /// A fresh [`SnapshotProvider`] over this runtime's live monitors —
    /// the same provider the builder registers on the detection
    /// backend, for callers wiring up external or composite backends.
    pub fn snapshot_provider(&self) -> Arc<dyn SnapshotProvider> {
        Arc::new(RuntimeSnapshotProvider { inner: Arc::downgrade(&self.inner) })
    }

    /// All checkpoint reports so far.
    pub fn reports(&self) -> Vec<FaultReport> {
        self.inner.reports.lock().clone()
    }

    /// The detection backend the runtime drives.
    pub fn backend(&self) -> &Arc<dyn DetectionBackend> {
        &self.inner.backend
    }

    /// The backend's diagnostic label (`"inline"`, `"sharded"`,
    /// `"scheduled"`, …).
    pub fn backend_label(&self) -> &'static str {
        self.inner.backend.label()
    }

    /// Ingestion counters, uniform across backends: per-shard entries
    /// for sharded backends, a single pseudo-shard for inline. The
    /// calling thread's handle is flushed first, so the snapshot
    /// covers everything this thread observed.
    pub fn service_stats(&self) -> ServiceStats {
        self.inner.flush_thread_producer();
        self.inner.backend.stats()
    }

    /// All real-time (calling-order) violations so far.
    pub fn realtime_violations(&self) -> Vec<Violation> {
        self.inner.drain_backend_violations();
        self.inner.realtime.lock().clone()
    }

    /// Every violation seen so far (checkpoints + real-time).
    pub fn all_violations(&self) -> Vec<Violation> {
        let mut out: Vec<Violation> =
            self.reports().into_iter().flat_map(|r| r.violations).collect();
        out.extend(self.realtime_violations());
        out
    }

    /// Whether no violation has been reported yet.
    pub fn is_clean(&self) -> bool {
        self.inner.drain_backend_violations();
        self.inner.reports.lock().iter().all(FaultReport::is_clean)
            && self.inner.realtime.lock().is_empty()
    }

    /// Total events recorded.
    pub fn events_recorded(&self) -> u64 {
        self.inner.recorder.total()
    }

    /// Detection configuration.
    pub fn config(&self) -> DetectorConfig {
        self.inner.cfg
    }

    /// Journal appends that have failed so far (disk errors on the
    /// configured [`EventSink`] / [`ViolationSink`]). Detection never
    /// blocks on a failing journal; a nonzero counter means the durable
    /// log is missing records and operators should treat replay from it
    /// as incomplete.
    pub fn journal_errors(&self) -> u64 {
        self.inner.journal_errors.load(Ordering::Relaxed)
    }
}

/// Builder for [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    cfg: DetectorConfig,
    park_timeout: Duration,
    order_policy: OrderPolicy,
    backend: BackendChoice,
    event_sink: Option<Arc<dyn EventSink>>,
    violation_sink: Option<Arc<dyn ViolationSink>>,
}

impl RuntimeBuilder {
    /// How long a thread parks on a queue before giving up with
    /// [`crate::MonitorError::Timeout`] (a liveness safety net under
    /// injected faults; correct workloads never hit it).
    pub fn park_timeout(mut self, d: Duration) -> Self {
        self.park_timeout = d;
        self
    }

    /// Sets the real-time calling-order policy.
    pub fn order_policy(mut self, p: OrderPolicy) -> Self {
        self.order_policy = p;
        self
    }

    /// Installs a detection backend the caller constructed (default:
    /// an [`InlineBackend`] over the builder's config).
    ///
    /// Prefer [`Self::backend_with`] for backends with internal timers
    /// (the scheduled backend), so they run on the recorder's clock.
    ///
    /// The backend must be **exclusive to this runtime**: runtimes
    /// allocate their monitor ids independently, so two runtimes
    /// registering into one backend would collide in its monitor
    /// namespace. The runtime shuts the backend down when it is
    /// dropped as the sole owner; callers that keep their own `Arc`
    /// keep it alive (and responsible for its shutdown).
    ///
    /// This is also the seam for *distributed* detection: a
    /// `rmon_net::RemoteBackend` connected to a detection service in
    /// another process is an ordinary `DetectionBackend`, and
    /// [`Self::build`] registers the runtime's snapshot provider with
    /// it like any other backend, so service-initiated checkpoint
    /// fan-outs can gather this runtime's live monitor states.
    pub fn backend(mut self, backend: Arc<dyn DetectionBackend>) -> Self {
        self.backend = BackendChoice::Ready(backend);
        self
    }

    /// Installs a backend *factory*, invoked at [`Self::build`] with
    /// the detection config and the runtime recorder's clock — event
    /// timestamps and backend-internal timers then share one time
    /// axis.
    ///
    /// # Examples
    ///
    /// ```
    /// use rmon_core::detect::{ScheduledBackend, SchedulerConfig, ServiceConfig};
    /// use rmon_core::DetectorConfig;
    /// use rmon_rt::Runtime;
    /// use std::sync::Arc;
    ///
    /// let rt = Runtime::builder(DetectorConfig::default())
    ///     .backend_with(|cfg, clock| {
    ///         Arc::new(ScheduledBackend::with_clock(
    ///             cfg,
    ///             ServiceConfig::new(4),
    ///             SchedulerConfig::default(),
    ///             clock,
    ///         ))
    ///     })
    ///     .build();
    /// assert_eq!(rt.backend_label(), "scheduled");
    /// ```
    pub fn backend_with(
        mut self,
        factory: impl Fn(DetectorConfig, ClockFn) -> Arc<dyn DetectionBackend> + Send + Sync + 'static,
    ) -> Self {
        self.backend = BackendChoice::Factory(Arc::new(factory));
        self
    }

    /// Installs a durable sink for the event-side journal stream
    /// (epoch markers, registrations, drained windows). For a journal
    /// the differential replayer can verify, install *both* streams —
    /// [`Self::journal`] does that from one sink.
    pub fn event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.event_sink = Some(sink);
        self
    }

    /// Installs a durable sink for the verdict-side journal stream
    /// (real-time violations, checkpoint reports with snapshots).
    pub fn violation_sink(mut self, sink: Arc<dyn ViolationSink>) -> Self {
        self.violation_sink = Some(sink);
        self
    }

    /// Journals both streams through one sink (typically an
    /// `rmon-storage` `DurableSink`), so events and verdicts interleave
    /// in a single totally ordered log — the layout the commit protocol
    /// and the differential replayer assume. An `Epoch` record is
    /// appended at [`Self::build`]; every [`Runtime::checkpoint_now`]
    /// barrier then commits `Events → Realtime → Checkpoint` and syncs.
    pub fn journal<S: EventSink + ViolationSink + 'static>(mut self, sink: Arc<S>) -> Self {
        self.event_sink = Some(Arc::clone(&sink) as Arc<dyn EventSink>);
        self.violation_sink = Some(sink as Arc<dyn ViolationSink>);
        self
    }

    /// Finishes the runtime and registers its snapshot provider on the
    /// backend (see [`RuntimeSnapshotProvider`]), so scoped backend
    /// checkpoints — including scheduled per-shard sweeps — run the
    /// full Algorithm-1/2 comparison from day one.
    pub fn build(self) -> Runtime {
        // Prediction needs happens-before stamps on the recorded
        // events; everything else keeps the lock-free recorder.
        let recorder = Arc::new(if self.cfg.predict.is_on() {
            Recorder::with_clocks()
        } else {
            Recorder::new()
        });
        let backend = match self.backend {
            BackendChoice::Default => Arc::new(InlineBackend::new(self.cfg)) as _,
            BackendChoice::Ready(backend) => backend,
            BackendChoice::Factory(factory) => {
                let r = Arc::clone(&recorder);
                let clock: ClockFn = Arc::new(move || r.now());
                factory(self.cfg, clock)
            }
        };
        let rt = Runtime {
            inner: Arc::new(RtInner {
                recorder,
                cfg: self.cfg,
                backend,
                token: NEXT_RT_TOKEN.fetch_add(1, Ordering::Relaxed),
                park_timeout: self.park_timeout,
                order_policy: self.order_policy,
                monitors: Mutex::new(HashMap::new()),
                next_monitor_id: AtomicU32::new(0),
                reports: Mutex::new(Vec::new()),
                realtime: Mutex::new(Vec::new()),
                event_sink: self.event_sink,
                violation_sink: self.violation_sink,
                journal: Mutex::new(JournalState::default()),
                journal_errors: AtomicU64::new(0),
            }),
        };
        rt.inner.backend.set_snapshot_provider(rt.snapshot_provider());
        // Mark the journal attach point: monitor ids and event sequence
        // numbers restart from zero behind this record, so a replayer
        // resets its detector state here (process restarts journal into
        // the same log as fresh epochs).
        if let Some(sink) = &rt.inner.event_sink {
            rt.inner.journal_try(sink.append_epoch(rt.inner.recorder.now()));
        }
        rt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::detect::{ScheduledBackend, SchedulerConfig, ServiceConfig, ShardedBackend};

    #[test]
    fn runtime_defaults() {
        let rt = Runtime::new(DetectorConfig::default());
        assert_eq!(rt.order_policy(), OrderPolicy::Report);
        assert!(rt.is_clean());
        assert_eq!(rt.events_recorded(), 0);
        assert!(rt.now() < Nanos::from_secs(5));
    }

    #[test]
    fn builder_overrides() {
        let rt = Runtime::builder(DetectorConfig::default())
            .park_timeout(Duration::from_millis(50))
            .order_policy(OrderPolicy::Deny)
            .build();
        assert_eq!(rt.order_policy(), OrderPolicy::Deny);
        assert_eq!(rt.inner.park_timeout, Duration::from_millis(50));
    }

    #[test]
    fn checkpoint_on_empty_runtime_is_clean() {
        let rt = Runtime::new(DetectorConfig::default());
        let report = rt.checkpoint_now();
        assert!(report.is_clean());
        assert_eq!(rt.reports().len(), 1);
    }

    #[test]
    fn default_backend_is_inline_with_uniform_stats() {
        let rt = Runtime::new(DetectorConfig::default());
        assert_eq!(rt.backend_label(), "inline");
        let stats = rt.service_stats();
        assert_eq!(stats.shard_count(), 1);
        assert_eq!(stats.total_events(), 0);
    }

    #[test]
    fn scoped_checkpoint_matches_checkpoint_now_on_streaming_monitors() {
        // The same deterministic single-thread faulty script on two
        // identical runtimes: the provider-backed scoped checkpoint
        // must report what the synchronous barrier reports (allocator
        // monitors stream every event, so the consistency gate opens
        // at quiescence).
        let drive = |rt: &Runtime| {
            let allocators: Vec<_> =
                (0..6).map(|i| crate::ResourceAllocator::new(rt, &format!("r{i}"), 2)).collect();
            for al in &allocators {
                al.request().unwrap();
                let _ = al.request(); // U3: duplicate request
                al.release().unwrap();
                let _ = al.release(); // U1: release without request
            }
        };
        // Compare on the stable identity (detected_at is wall clock and
        // differs between runs by construction).
        type Key = (MonitorId, Option<Pid>, Option<u64>, RuleId);
        let keys = |mut vs: Vec<Violation>| -> Vec<Key> {
            vs.sort_by_key(|v| (v.monitor, v.pid, v.event_seq, v.rule));
            vs.into_iter().map(|v| (v.monitor, v.pid, v.event_seq, v.rule)).collect()
        };
        let sync_rt = sharded_rt(2, 4);
        drive(&sync_rt);
        let _ = sync_rt.checkpoint_now();
        let want = keys(sync_rt.all_violations());

        let scoped_rt = sharded_rt(2, 4);
        drive(&scoped_rt);
        let _ = scoped_rt.checkpoint_scope(CheckpointScope::All);
        let got = keys(scoped_rt.all_violations());
        assert_eq!(got, want, "scoped checkpoint must match the synchronous barrier");
        assert!(!got.is_empty(), "the script injects U1/U3 faults");

        // Per-shard scopes cover the same ground as All.
        let by_shard_rt = sharded_rt(2, 4);
        drive(&by_shard_rt);
        for shard in 0..2 {
            let _ = by_shard_rt.checkpoint_scope(CheckpointScope::Shard(shard));
        }
        let by_shard = keys(by_shard_rt.all_violations());
        assert_eq!(by_shard, want, "per-shard scopes must union to All");
    }

    #[test]
    fn monitor_scope_checks_one_monitor_on_demand() {
        let rt = sharded_rt(2, 64);
        let good = crate::ResourceAllocator::new(&rt, "good", 1);
        let bad = crate::ResourceAllocator::new(&rt, "bad", 1);
        good.request().unwrap();
        good.release().unwrap();
        bad.request().unwrap(); // held past the checkpoint: still consistent
        let bad_id = MonitorId::new(1); // ids are allocated in creation order
        let report = rt.checkpoint_scope(CheckpointScope::Monitor(bad_id));
        // Only `bad`'s two events (request = Enter + Signal-Exit) are
        // replayed; `good`'s pending window stays untouched.
        assert_eq!(report.events_checked, 2, "{report}");
        assert!(report.is_clean(), "a held right is a consistent state: {report}");
        bad.release().unwrap();
    }

    fn sharded_rt(shards: usize, batch: usize) -> Runtime {
        Runtime::builder(DetectorConfig::without_timeouts())
            .backend_with(move |cfg, _clock| {
                Arc::new(ShardedBackend::new(cfg, ServiceConfig::new(shards)).with_batch(batch))
            })
            .park_timeout(Duration::from_millis(200))
            .build()
    }

    fn async_rt(mode: Mode, shards: usize, batch: usize) -> Runtime {
        let cfg = DetectorConfig { mode, ..DetectorConfig::without_timeouts() };
        Runtime::builder(cfg)
            .backend_with(move |cfg, _clock| {
                Arc::new(
                    rmon_core::detect::AsyncBackend::new(cfg, ServiceConfig::new(shards))
                        .with_batch(batch),
                )
            })
            .park_timeout(Duration::from_millis(200))
            .build()
    }

    #[test]
    fn async_backend_modes_match_the_sharded_reference_through_the_runtime() {
        // The same single-thread faulty script through the full rt
        // record path (RawCore::observe → record_observe → mode
        // branch): every instrumentation mode must converge on the
        // sharded reference verdicts once a barrier quiesces the
        // asynchronous pipeline. Single-threaded driving keeps pids,
        // monitor ids and event seqs identical across runtimes.
        let drive = |rt: &Runtime| {
            let allocators: Vec<_> =
                (0..4).map(|i| crate::ResourceAllocator::new(rt, &format!("r{i}"), 2)).collect();
            for al in &allocators {
                al.request().unwrap();
                let _ = al.request(); // U3: duplicate request
                al.release().unwrap();
                let _ = al.release(); // U1: release without request
            }
        };
        type Key = (MonitorId, Option<Pid>, Option<u64>, RuleId);
        let verdicts = |rt: &Runtime| -> Vec<Key> {
            let _ = rt.checkpoint_now();
            let mut vs = rt.all_violations();
            vs.sort_by_key(|v| (v.monitor, v.pid, v.event_seq, v.rule));
            vs.into_iter().map(|v| (v.monitor, v.pid, v.event_seq, v.rule)).collect()
        };

        let reference = sharded_rt(2, 4);
        drive(&reference);
        let want = verdicts(&reference);
        assert!(!want.is_empty(), "the script injects U1/U3 faults");

        for mode in [Mode::Sync, Mode::Async, Mode::Hybrid(Nanos::from_micros(50))] {
            let rt = async_rt(mode, 2, 4);
            assert_eq!(rt.backend_label(), "async");
            drive(&rt);
            // Every event streams (allocators have order concerns) and
            // none is lost to fire-and-forget: 4 allocators × 4 calls
            // × (Enter + Signal-Exit). service_stats flushes the
            // thread handle and quiesces the async queues first.
            assert_eq!(rt.service_stats().total_events(), 32, "{mode:?}");
            assert_eq!(verdicts(&rt), want, "{mode:?} must match the sharded reference");
        }
    }

    fn scheduled_rt(shards: usize, batch: usize) -> Runtime {
        Runtime::builder(DetectorConfig::without_timeouts())
            .backend_with(move |cfg, clock| {
                Arc::new(
                    ScheduledBackend::with_clock(
                        cfg,
                        ServiceConfig::new(shards),
                        SchedulerConfig::new(Duration::from_millis(1)),
                        clock,
                    )
                    .with_batch(batch),
                )
            })
            .park_timeout(Duration::from_millis(200))
            .build()
    }

    #[test]
    fn sharded_backend_clean_fleet_stays_clean() {
        let rt = sharded_rt(4, 8);
        let allocators: Vec<_> =
            (0..8).map(|i| crate::ResourceAllocator::new(&rt, &format!("r{i}"), 1)).collect();
        for al in &allocators {
            al.request().unwrap();
            al.release().unwrap();
        }
        assert!(rt.checkpoint_now().is_clean());
        assert!(rt.is_clean());
        let stats = rt.service_stats();
        assert_eq!(stats.shard_count(), 4);
        assert_eq!(stats.shards.iter().map(|s| s.monitors).sum::<u64>(), 8);
        // Each request/release records Enter + Signal-Exit: 8 monitors
        // × 2 calls × 2 events, all through the batched path.
        assert_eq!(stats.total_events(), 32);
    }

    #[test]
    fn sharded_backend_reports_order_faults_like_inline() {
        let rt = sharded_rt(2, 4);
        let al = crate::ResourceAllocator::new(&rt, "res", 2);
        al.request().unwrap();
        // Duplicate request by the same thread: fault U3 / ST-8a.
        let _ = al.request();
        let vs = rt.realtime_violations();
        assert!(
            vs.iter().any(|v| v.rule == rmon_core::RuleId::St8DuplicateRequest),
            "sharded backend must surface the duplicate request: {vs:?}"
        );
        assert!(!rt.is_clean());
    }

    #[test]
    fn scheduled_backend_behaves_like_sharded_for_order_faults() {
        let rt = scheduled_rt(2, 4);
        assert_eq!(rt.backend_label(), "scheduled");
        let al = crate::ResourceAllocator::new(&rt, "res", 2);
        al.request().unwrap();
        let _ = al.request();
        let vs = rt.realtime_violations();
        assert!(
            vs.iter().any(|v| v.rule == rmon_core::RuleId::St8DuplicateRequest),
            "scheduled backend must surface the duplicate request: {vs:?}"
        );
    }

    #[test]
    fn sharded_backend_deny_policy_uses_synchronous_lookahead() {
        let rt = Runtime::builder(DetectorConfig::without_timeouts())
            .backend_with(|cfg, _clock| {
                Arc::new(ShardedBackend::new(cfg, ServiceConfig::new(3)).with_batch(16))
            })
            .order_policy(OrderPolicy::Deny)
            .build();
        let al = crate::ResourceAllocator::new(&rt, "res", 1);
        // Release before any request must be denied even while the
        // batch buffer is far from full (the lookahead flushes it).
        assert!(matches!(al.release(), Err(crate::MonitorError::Denied(_))));
        al.request().unwrap();
        al.release().unwrap();
        assert!(rt.checkpoint_now().is_clean());
    }

    /// Runs a deterministic faulty two-thread script under
    /// [`OrderPolicy::Deny`] and returns each thread's denial trace:
    /// for every call, the rule the lookahead denied it with (if any).
    ///
    /// Two producer threads mean the synchronous `call_would_violate`
    /// races with the *other* thread's in-flight batches — the point
    /// of the satellite test: per-pid order state plus
    /// flush-own-handle-first makes every verdict depend only on the
    /// calling thread's own (already flushed) history, so the traces
    /// are deterministic and backend-independent.
    fn deny_trace(rt: &Runtime) -> Vec<Vec<Option<RuleId>>> {
        let allocators: Vec<_> =
            (0..4).map(|i| crate::ResourceAllocator::new(rt, &format!("r{i}"), 2)).collect();
        let mut joins = Vec::new();
        for _ in 0..2 {
            let als = allocators.clone();
            joins.push(std::thread::spawn(move || {
                let rule_of = |r: Result<(), crate::MonitorError>| match r {
                    Ok(()) => None,
                    Err(crate::MonitorError::Denied(v)) => Some(v.rule),
                    Err(e) => panic!("unexpected error: {e:?}"),
                };
                let mut outcomes = Vec::new();
                for _ in 0..10 {
                    for al in &als {
                        // request, duplicate request (denied), release,
                        // double release (denied).
                        outcomes.push(rule_of(al.request()));
                        outcomes.push(rule_of(al.request()));
                        outcomes.push(rule_of(al.release()));
                        outcomes.push(rule_of(al.release()));
                    }
                }
                outcomes
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    #[test]
    fn deny_lookahead_with_concurrent_producers_matches_inline() {
        let make = |label: &str| -> Runtime {
            let b = Runtime::builder(DetectorConfig::without_timeouts())
                .order_policy(OrderPolicy::Deny)
                .park_timeout(Duration::from_millis(500));
            match label {
                "inline" => b.build(),
                "sharded" => b
                    .backend_with(|cfg, _clock| {
                        // batch 3: deliberately misaligned with the
                        // 4-call pattern so flush points drift.
                        Arc::new(ShardedBackend::new(cfg, ServiceConfig::new(4)).with_batch(3))
                    })
                    .build(),
                "scheduled" => b
                    .backend_with(|cfg, clock| {
                        Arc::new(
                            ScheduledBackend::with_clock(
                                cfg,
                                ServiceConfig::new(4),
                                SchedulerConfig::new(Duration::from_millis(1)),
                                clock,
                            )
                            .with_batch(3),
                        )
                    })
                    .build(),
                _ => unreachable!(),
            }
        };
        let inline_rt = make("inline");
        let want = deny_trace(&inline_rt);
        assert!(inline_rt.checkpoint_now().is_clean(), "denied calls never execute");
        assert!(
            want.iter().flatten().any(|o| o == &Some(RuleId::St8DuplicateRequest)),
            "the script must exercise denials: {want:?}"
        );
        for label in ["sharded", "scheduled"] {
            let rt = make(label);
            let got = deny_trace(&rt);
            assert_eq!(got, want, "{label} denial trace must match inline");
            let report = rt.checkpoint_now();
            assert!(report.is_clean(), "{label}: {report}");
            assert!(rt.is_clean(), "{label}");
        }
    }

    #[test]
    fn dropping_a_runtime_leaves_a_caller_shared_backend_open() {
        let backend: Arc<dyn DetectionBackend> = Arc::new(ShardedBackend::new(
            DetectorConfig::without_timeouts(),
            ServiceConfig::new(2),
        ));
        let rt = Runtime::builder(DetectorConfig::without_timeouts())
            .backend(Arc::clone(&backend))
            .build();
        let probe = backend.producer();
        drop(rt);
        // The caller still holds the backend: it must not have been
        // shut down under them.
        assert!(!probe.is_closed(), "shared backend must survive the runtime");
        drop(probe);
        drop(backend); // last owner: workers join here
    }

    #[test]
    fn journal_commit_protocol_orders_records() {
        use rmon_core::oplog::Record;
        use rmon_core::MemorySink;

        let sink = Arc::new(MemorySink::new());
        let rt =
            Runtime::builder(DetectorConfig::without_timeouts()).journal(Arc::clone(&sink)).build();
        // Epoch lands at build time, registrations as monitors appear.
        let al = crate::ResourceAllocator::new(&rt, "res", 2);
        al.request().unwrap();
        let _ = al.release(); // ok
        let _ = al.release(); // U1: release without request → realtime verdict
        let _ = rt.checkpoint_now();
        assert_eq!(rt.journal_errors(), 0);

        let records = sink.records();
        assert!(matches!(records[0], Record::Epoch { .. }));
        assert!(matches!(&records[1], Record::Register { name, .. } if name == "res"));
        // The barrier commits Events → Realtime → Checkpoint, in order.
        let tags: Vec<u8> = records[2..].iter().map(Record::tag).collect();
        assert_eq!(tags, vec![3, 4, 5], "commit sequence: {records:?}");
        let Record::Checkpoint { snapshots, report, .. } = records.last().unwrap() else {
            panic!("last record must be the commit marker");
        };
        assert_eq!(snapshots.len(), 1, "one live monitor observed");
        assert!(report.events_checked > 0);

        // An empty barrier elides the empty window and verdict batch
        // but still writes its commit marker.
        let _ = rt.checkpoint_now();
        let records = sink.records();
        assert!(matches!(records.last().unwrap(), Record::Checkpoint { .. }));
        assert_eq!(records.len(), 6);
    }

    #[test]
    fn two_runtimes_on_one_thread_keep_separate_handles() {
        // The per-thread handle registry is keyed by runtime token: the
        // same thread observing into two runtimes must not cross their
        // streams.
        let a = sharded_rt(2, 64);
        let b = sharded_rt(2, 64);
        let al_a = crate::ResourceAllocator::new(&a, "res", 1);
        let al_b = crate::ResourceAllocator::new(&b, "res", 1);
        al_a.request().unwrap();
        // Only runtime B sees a release-without-request.
        let _ = al_b.release();
        assert!(!b.is_clean());
        al_a.release().unwrap();
        assert!(a.checkpoint_now().is_clean());
        assert!(a.is_clean());
    }
}
