//! Fault injection for the real-thread monitor core.
//!
//! The simulator can realize all 21 fault classes; real threads can
//! realize the subset that does not require forging another thread's
//! control flow. These are protocol perturbations inside
//! [`crate::raw::RawCore`]: the monitor's hand-off bookkeeping
//! misbehaves while events keep being recorded faithfully, and the
//! shared data stays memory-safe behind its own lock.

use parking_lot::Mutex;
use rmon_core::FaultKind;
use std::sync::atomic::{AtomicBool, Ordering};

/// Protocol perturbations the real-thread core can realize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtFault {
    /// Grant `Enter` although another thread owns the monitor
    /// (fault E1).
    GrantWhileBusy,
    /// Queue the caller although the monitor is free (fault E3).
    BlockWhileFree,
    /// Grant `Enter` without recording the event (fault E4).
    SkipEnterEvent,
    /// Do not admit the entry-queue head when a `Wait` releases the
    /// monitor (fault W3).
    SkipHandoffOnWait,
    /// Keep the monitor locked after a `Wait` (fault W6).
    StickLockOnWait,
    /// Resume nobody on `Signal-Exit` although the flag claims the
    /// hand-off (fault X1).
    SkipResumeOnExit,
    /// Keep the monitor locked after a `Signal-Exit` (fault X2).
    StickLockOnExit,
}

impl RtFault {
    /// The taxonomy class this perturbation realizes.
    pub fn fault_kind(self) -> FaultKind {
        match self {
            RtFault::GrantWhileBusy => FaultKind::EnterMutualExclusion,
            RtFault::BlockWhileFree => FaultKind::EnterNoResponse,
            RtFault::SkipEnterEvent => FaultKind::EnterNotObserved,
            RtFault::SkipHandoffOnWait => FaultKind::WaitEntryNotResumed,
            RtFault::StickLockOnWait => FaultKind::WaitMonitorNotReleased,
            RtFault::SkipResumeOnExit => FaultKind::SignalExitNotResumed,
            RtFault::StickLockOnExit => FaultKind::SignalExitMonitorNotReleased,
        }
    }
}

/// One-shot fault store consulted by the raw monitor core.
///
/// The monitor hot path consults the injector on every primitive, so
/// the common nothing-armed case is answered by one relaxed atomic
/// load — the armed list's mutex is only touched while a fault is
/// actually pending. Arm faults *before* starting the operations that
/// should observe them: an `arm` racing a concurrent `fire` on another
/// thread may be missed by that one call.
#[derive(Debug, Default)]
pub struct RtInjector {
    armed: Mutex<Vec<RtFault>>,
    /// Fast-path flag: whether `armed` might be non-empty.
    any: AtomicBool,
}

impl RtInjector {
    /// An injector with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a one-shot fault.
    pub fn arm(&self, fault: RtFault) {
        self.armed.lock().push(fault);
        self.any.store(true, Ordering::Release);
    }

    /// Consumes and returns true if `fault` is armed.
    pub fn fire(&self, fault: RtFault) -> bool {
        if !self.any.load(Ordering::Acquire) {
            return false;
        }
        let mut g = self.armed.lock();
        if let Some(i) = g.iter().position(|f| *f == fault) {
            g.remove(i);
            if g.is_empty() {
                self.any.store(false, Ordering::Release);
            }
            true
        } else {
            false
        }
    }

    /// Whether anything is still armed.
    pub fn any_armed(&self) -> bool {
        self.any.load(Ordering::Acquire) && !self.armed.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_is_one_shot() {
        let inj = RtInjector::new();
        inj.arm(RtFault::GrantWhileBusy);
        assert!(inj.any_armed());
        assert!(inj.fire(RtFault::GrantWhileBusy));
        assert!(!inj.fire(RtFault::GrantWhileBusy));
        assert!(!inj.any_armed());
    }

    #[test]
    fn unarmed_faults_do_not_fire() {
        let inj = RtInjector::new();
        assert!(!inj.fire(RtFault::StickLockOnExit));
    }

    #[test]
    fn fault_kind_mapping_is_total() {
        for f in [
            RtFault::GrantWhileBusy,
            RtFault::BlockWhileFree,
            RtFault::SkipEnterEvent,
            RtFault::SkipHandoffOnWait,
            RtFault::StickLockOnWait,
            RtFault::SkipResumeOnExit,
            RtFault::StickLockOnExit,
        ] {
            // Level is implementation for every rt fault.
            assert_eq!(f.fault_kind().level(), rmon_core::FaultLevel::Implementation);
        }
    }
}
