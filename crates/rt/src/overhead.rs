//! Overhead measurement harness for the paper's performance evaluation
//! (Table 1): the ratio between monitor operations with the
//! fault-detection extension and without it, as a function of the
//! checking interval.
//!
//! Three instrumentation modes are compared:
//!
//! * [`Mode::Plain`] — a bare Hoare-style buffer on `parking_lot`
//!   primitives with no recording and no checking (the paper's
//!   "without the extension" baseline);
//! * [`Mode::RecordingOnly`] — the robust monitor with its
//!   data-gathering routine but no checker (the ablation the paper's
//!   text hints at);
//! * [`Mode::Full`] — recording plus the periodic checker at a given
//!   interval, which suspends monitor operations while checking.

use crate::buffer::BoundedBuffer;
use crate::checker::CheckerHandle;
use crate::runtime::Runtime;
use parking_lot::{Condvar, Mutex};
use rmon_core::{DetectorConfig, Nanos};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Instrumentation level for one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The same hand-off monitor discipline with no recording and no
    /// checking — the paper's "monitor without the extension"
    /// baseline.
    Plain,
    /// A barging Mesa-style buffer (mutex + condvars, no hand-off):
    /// context row showing what the hand-off discipline itself costs.
    Mesa,
    /// Event recording without a checker.
    RecordingOnly,
    /// Recording plus periodic checking at the given interval.
    Full {
        /// The checking interval `T`.
        interval: Duration,
    },
    /// Recording plus the paper-faithful unoptimized checking routine
    /// (§3.1): the full history is re-checked on every invocation.
    /// This is the 2001 prototype's cost model — the §3.3 checking
    /// lists were introduced to avoid it.
    FullHistory {
        /// The checking interval `T`.
        interval: Duration,
    },
}

/// Workload shape for the overhead experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Producer thread count.
    pub producers: usize,
    /// Consumer thread count.
    pub consumers: usize,
    /// Items each producer sends (consumers share the total).
    pub items_per_producer: usize,
    /// Buffer capacity.
    pub capacity: usize,
}

impl Default for Workload {
    fn default() -> Self {
        Workload { producers: 2, consumers: 2, items_per_producer: 2_000, capacity: 8 }
    }
}

impl Workload {
    /// Total monitor operations the workload performs
    /// (sends + receives).
    pub fn total_ops(&self) -> u64 {
        (self.producers * self.items_per_producer * 2) as u64
    }

    /// With `consumers == 0` each producer thread alternates
    /// send/receive itself: zero queue contention, so the measurement
    /// isolates the cost of the monitor *operations* (the paper's
    /// ratio definition) rather than hand-off parking.
    pub fn is_alternating(&self) -> bool {
        self.consumers == 0
    }
}

/// One measured data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// The instrumentation mode measured.
    pub mode: Mode,
    /// Wall time for the whole workload.
    pub elapsed: Nanos,
    /// Wall nanoseconds per monitor operation.
    pub ns_per_op: f64,
    /// Monitor operations performed.
    pub ops: u64,
}

/// A barging Mesa-style bounded buffer (mutex + condvars): what one
/// would write naturally without the monitor discipline. Used as a
/// context row; the paper's baseline is [`HandoffBuffer`].
#[derive(Debug)]
struct PlainBufferInner<T> {
    queue: VecDeque<T>,
    capacity: usize,
}

/// Baseline bounded buffer without any instrumentation.
#[derive(Debug)]
pub struct PlainBuffer<T> {
    inner: Mutex<PlainBufferInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> PlainBuffer<T> {
    /// Creates a plain buffer of the given capacity.
    pub fn new(capacity: usize) -> Self {
        PlainBuffer {
            inner: Mutex::new(PlainBufferInner {
                queue: VecDeque::with_capacity(capacity),
                capacity,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Deposits an item, waiting while full.
    pub fn send(&self, item: T) {
        let mut g = self.inner.lock();
        while g.queue.len() >= g.capacity {
            self.not_full.wait(&mut g);
        }
        g.queue.push_back(item);
        self.not_empty.notify_one();
    }

    /// Removes an item, waiting while empty.
    pub fn receive(&self) -> T {
        let mut g = self.inner.lock();
        while g.queue.is_empty() {
            self.not_empty.wait(&mut g);
        }
        let item = g.queue.pop_front().expect("non-empty after wait");
        self.not_full.notify_one();
        item
    }
}

/// An uninstrumented Hoare-style hand-off buffer: the exact monitor
/// discipline of [`crate::BoundedBuffer`] (explicit entry/condition
/// queues, direct hand-off, no barging) with the fault-detection
/// extension stripped out. This is the paper's "without the extension"
/// baseline — comparing against a barging buffer instead would charge
/// the hand-off semantics to the detector.
#[derive(Debug)]
pub struct HandoffBuffer<T> {
    st: Mutex<HandoffState<T>>,
}

#[derive(Debug)]
struct HandoffState<T> {
    occupied: bool,
    eq: VecDeque<Arc<HandoffGate>>,
    full_waiters: VecDeque<Arc<HandoffGate>>,
    empty_waiters: VecDeque<Arc<HandoffGate>>,
    queue: VecDeque<T>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct HandoffGate {
    opened: Mutex<bool>,
    cv: Condvar,
}

impl HandoffGate {
    fn open(&self) {
        let mut g = self.opened.lock();
        *g = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut g = self.opened.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
    }
}

impl<T> HandoffBuffer<T> {
    /// Creates a hand-off buffer of the given capacity.
    pub fn new(capacity: usize) -> Self {
        HandoffBuffer {
            st: Mutex::new(HandoffState {
                occupied: false,
                eq: VecDeque::new(),
                full_waiters: VecDeque::new(),
                empty_waiters: VecDeque::new(),
                queue: VecDeque::with_capacity(capacity),
                capacity,
            }),
        }
    }

    fn enter(&self) {
        let gate = {
            let mut st = self.st.lock();
            if !st.occupied {
                st.occupied = true;
                return;
            }
            let gate = Arc::new(HandoffGate::default());
            st.eq.push_back(Arc::clone(&gate));
            gate
        };
        gate.wait();
    }

    fn release(st: &mut HandoffState<T>) {
        if let Some(next) = st.eq.pop_front() {
            next.open(); // ownership transferred directly
        } else {
            st.occupied = false;
        }
    }

    /// Deposits an item, waiting while full (Hoare hand-off).
    pub fn send(&self, item: T) {
        self.enter();
        {
            let mut st = self.st.lock();
            if st.queue.len() >= st.capacity {
                let gate = Arc::new(HandoffGate::default());
                st.full_waiters.push_back(Arc::clone(&gate));
                Self::release(&mut st);
                drop(st);
                gate.wait();
                // Resumed with ownership (signaller handed off).
            }
        }
        let mut st = self.st.lock();
        st.queue.push_back(item);
        if let Some(w) = st.empty_waiters.pop_front() {
            w.open(); // signal-exit: hand the monitor to the waiter
        } else {
            Self::release(&mut st);
        }
    }

    /// Removes an item, waiting while empty (Hoare hand-off).
    pub fn receive(&self) -> T {
        self.enter();
        {
            let mut st = self.st.lock();
            if st.queue.is_empty() {
                let gate = Arc::new(HandoffGate::default());
                st.empty_waiters.push_back(Arc::clone(&gate));
                Self::release(&mut st);
                drop(st);
                gate.wait();
            }
        }
        let mut st = self.st.lock();
        let item = st.queue.pop_front().expect("hand-off guarantees an item");
        if let Some(w) = st.full_waiters.pop_front() {
            w.open();
        } else {
            Self::release(&mut st);
        }
        item
    }
}

/// Runs the producer/consumer workload in the given mode and measures
/// wall time per monitor operation.
pub fn measure(workload: Workload, mode: Mode) -> Measurement {
    let elapsed = match mode {
        Mode::Plain => run_handoff(workload),
        Mode::Mesa => run_plain(workload),
        Mode::RecordingOnly => run_instrumented(workload, None, false),
        Mode::Full { interval } => run_instrumented(workload, Some(interval), false),
        Mode::FullHistory { interval } => run_instrumented(workload, Some(interval), true),
    };
    let ops = workload.total_ops();
    Measurement { mode, elapsed, ns_per_op: elapsed.as_nanos() as f64 / ops.max(1) as f64, ops }
}

fn run_handoff(w: Workload) -> Nanos {
    let buf = Arc::new(HandoffBuffer::new(w.capacity));
    let total = w.producers * w.items_per_producer;
    let start = Instant::now();
    let mut handles = Vec::new();
    if w.is_alternating() {
        for _ in 0..w.producers {
            let buf = Arc::clone(&buf);
            let n = w.items_per_producer;
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    buf.send(i as u64);
                    let _ = buf.receive();
                }
            }));
        }
    } else {
        let per_consumer = split(total, w.consumers);
        for _ in 0..w.producers {
            let buf = Arc::clone(&buf);
            let n = w.items_per_producer;
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    buf.send(i as u64);
                }
            }));
        }
        for &n in &per_consumer {
            let buf = Arc::clone(&buf);
            handles.push(std::thread::spawn(move || {
                for _ in 0..n {
                    let _ = buf.receive();
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("workload thread");
    }
    Nanos::new(start.elapsed().as_nanos().min(u64::MAX as u128) as u64)
}

fn run_plain(w: Workload) -> Nanos {
    let buf = Arc::new(PlainBuffer::new(w.capacity));
    let total = w.producers * w.items_per_producer;
    let start = Instant::now();
    let mut handles = Vec::new();
    if w.is_alternating() {
        for _ in 0..w.producers {
            let buf = Arc::clone(&buf);
            let n = w.items_per_producer;
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    buf.send(i as u64);
                    let _ = buf.receive();
                }
            }));
        }
    } else {
        let per_consumer = split(total, w.consumers);
        for _ in 0..w.producers {
            let buf = Arc::clone(&buf);
            let n = w.items_per_producer;
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    buf.send(i as u64);
                }
            }));
        }
        for &n in &per_consumer {
            let buf = Arc::clone(&buf);
            handles.push(std::thread::spawn(move || {
                for _ in 0..n {
                    let _ = buf.receive();
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("workload thread");
    }
    Nanos::new(start.elapsed().as_nanos().min(u64::MAX as u128) as u64)
}

fn run_instrumented(w: Workload, interval: Option<Duration>, full_history: bool) -> Nanos {
    // Generous detector timers: the workload is correct; we are
    // measuring cost, not hunting faults.
    let cfg = DetectorConfig::builder()
        .t_max(Nanos::from_secs(60))
        .t_io(Nanos::from_secs(60))
        .t_limit(Nanos::from_secs(60))
        .check_interval(interval.map(Nanos::from).unwrap_or(Nanos::from_secs(60)))
        .build();
    let rt = Runtime::builder(cfg).park_timeout(Duration::from_secs(30)).build();
    let buf = BoundedBuffer::new(&rt, "bench", w.capacity);
    let checker = interval.map(|iv| {
        if full_history {
            CheckerHandle::spawn_full_history(&rt, iv)
        } else {
            CheckerHandle::spawn(&rt, iv)
        }
    });
    let total = w.producers * w.items_per_producer;
    let start = Instant::now();
    let mut handles = Vec::new();
    if w.is_alternating() {
        for _ in 0..w.producers {
            let buf = buf.clone();
            let n = w.items_per_producer;
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    buf.send(i as u64).expect("send");
                    let _ = buf.receive().expect("receive");
                }
            }));
        }
    } else {
        let per_consumer = split(total, w.consumers);
        for _ in 0..w.producers {
            let buf = buf.clone();
            let n = w.items_per_producer;
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    buf.send(i as u64).expect("send");
                }
            }));
        }
        for &n in &per_consumer {
            let buf = buf.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..n {
                    let _ = buf.receive().expect("receive");
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("workload thread");
    }
    let elapsed = Nanos::new(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    if let Some(c) = checker {
        c.stop();
    }
    elapsed
}

fn split(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let base = total / parts;
    let mut out = vec![base; parts];
    for item in out.iter_mut().take(total % parts) {
        *item += 1;
    }
    out
}

/// One row of the Table-1 reproduction: the overhead ratio at a given
/// checking interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// Checking interval.
    pub interval: Duration,
    /// Baseline nanoseconds per op.
    pub base_ns_per_op: f64,
    /// Instrumented nanoseconds per op.
    pub ext_ns_per_op: f64,
    /// The paper's "ratio for overheads".
    pub ratio: f64,
}

/// Produces the Table-1 rows: overhead ratio for each checking
/// interval, against a shared plain baseline. `faithful` selects the
/// paper-faithful full-history checking routine instead of the
/// incremental checking lists.
pub fn table1_with(workload: Workload, intervals: &[Duration], faithful: bool) -> Vec<OverheadRow> {
    let base = measure(workload, Mode::Plain);
    intervals
        .iter()
        .map(|&iv| {
            let mode = if faithful {
                Mode::FullHistory { interval: iv }
            } else {
                Mode::Full { interval: iv }
            };
            let ext = measure(workload, mode);
            OverheadRow {
                interval: iv,
                base_ns_per_op: base.ns_per_op,
                ext_ns_per_op: ext.ns_per_op,
                ratio: ext.ns_per_op / base.ns_per_op,
            }
        })
        .collect()
}

/// Incremental-checker Table-1 rows (see [`table1_with`]).
pub fn table1(workload: Workload, intervals: &[Duration]) -> Vec<OverheadRow> {
    table1_with(workload, intervals, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workload {
        Workload { producers: 1, consumers: 1, items_per_producer: 200, capacity: 4 }
    }

    #[test]
    fn plain_buffer_round_trips() {
        let buf = PlainBuffer::new(2);
        buf.send(1);
        buf.send(2);
        assert_eq!(buf.receive(), 1);
        assert_eq!(buf.receive(), 2);
    }

    #[test]
    fn handoff_buffer_round_trips() {
        let buf = HandoffBuffer::new(2);
        buf.send(1);
        buf.send(2);
        assert_eq!(buf.receive(), 1);
        assert_eq!(buf.receive(), 2);
    }

    #[test]
    fn handoff_buffer_under_contention() {
        let buf = Arc::new(HandoffBuffer::new(3));
        let tx = Arc::clone(&buf);
        let producer = std::thread::spawn(move || {
            for i in 0..500u64 {
                tx.send(i);
            }
        });
        let rx = Arc::clone(&buf);
        let consumer = std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..500 {
                sum += rx.receive();
            }
            sum
        });
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), 500 * 499 / 2);
    }

    #[test]
    fn measure_mesa_baseline() {
        let m = measure(tiny(), Mode::Mesa);
        assert!(m.elapsed > Nanos::ZERO);
    }

    #[test]
    fn split_distributes_remainder() {
        assert_eq!(split(10, 3), vec![4, 3, 3]);
        assert_eq!(split(9, 3), vec![3, 3, 3]);
        assert_eq!(split(5, 1), vec![5]);
    }

    #[test]
    fn measure_plain_and_recording() {
        let p = measure(tiny(), Mode::Plain);
        assert!(p.elapsed > Nanos::ZERO);
        assert_eq!(p.ops, 400);
        let r = measure(tiny(), Mode::RecordingOnly);
        assert!(r.elapsed > Nanos::ZERO);
    }

    #[test]
    fn measure_full_with_fast_checker() {
        let m = measure(tiny(), Mode::Full { interval: Duration::from_millis(5) });
        assert!(m.ns_per_op > 0.0);
    }

    #[test]
    fn workload_total_ops() {
        assert_eq!(Workload::default().total_ops(), 8_000);
    }
}
