//! Thread → process-identifier registry.
//!
//! The detection model identifies callers by [`Pid`]. Real threads get
//! their pid from a process-wide counter, cached in a thread-local, so
//! every recorded event attributes correctly without threading pids
//! through every call.

use rmon_core::Pid;
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};

static NEXT_PID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static CURRENT: Cell<Option<Pid>> = const { Cell::new(None) };
}

/// The calling thread's pid, assigning a fresh one on first use.
pub fn current_pid() -> Pid {
    CURRENT.with(|c| match c.get() {
        Some(pid) => pid,
        None => {
            let pid = Pid::new(NEXT_PID.fetch_add(1, Ordering::Relaxed));
            c.set(Some(pid));
            pid
        }
    })
}

/// Overrides the calling thread's pid (useful in tests that need
/// deterministic pids).
pub fn set_current_pid(pid: Pid) {
    CURRENT.with(|c| c.set(Some(pid)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_is_stable_within_a_thread() {
        let a = current_pid();
        let b = current_pid();
        assert_eq!(a, b);
    }

    #[test]
    fn pids_differ_across_threads() {
        let main = current_pid();
        let other = std::thread::spawn(current_pid).join().unwrap();
        assert_ne!(main, other);
    }

    #[test]
    fn set_current_pid_overrides() {
        let t = std::thread::spawn(|| {
            set_current_pid(Pid::new(4242));
            current_pid()
        });
        assert_eq!(t.join().unwrap(), Pid::new(4242));
    }
}
