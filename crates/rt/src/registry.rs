//! Thread → process-identifier and thread → producer-handle registry.
//!
//! The detection model identifies callers by [`Pid`]. Real threads get
//! their pid from a process-wide counter, cached in a thread-local, so
//! every recorded event attributes correctly without threading pids
//! through every call.
//!
//! The same thread-locality carries the ingestion side of the
//! detection API: each (thread, runtime) pair owns one
//! [`ProducerHandle`], created lazily on the thread's first observed
//! event and reached through the crate-private `with_producer`. The
//! hot path therefore
//! touches only thread-local state plus whatever the handle itself
//! owns — no mutex shared between observing threads. One thread = one
//! [`Pid`] = one handle is also what upholds the backends' per-caller
//! ordering precondition (see `rmon_core::detect::backend`).

use rmon_core::detect::{DetectionBackend, ProducerHandle};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use rmon_core::Pid;

static NEXT_PID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static CURRENT: Cell<Option<Pid>> = const { Cell::new(None) };
    /// This thread's producer handles, keyed by runtime token. Entries
    /// whose backend has shut down (their runtime is gone) are pruned
    /// whenever a new handle is installed.
    static PRODUCERS: RefCell<Vec<(u64, Box<dyn ProducerHandle>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Runs `f` over the calling thread's producer handle for the runtime
/// identified by `token`, installing a fresh handle from `backend` on
/// first use.
pub(crate) fn with_producer<R>(
    token: u64,
    backend: &Arc<dyn DetectionBackend>,
    f: impl FnOnce(&mut dyn ProducerHandle) -> R,
) -> R {
    PRODUCERS.with(|cell| {
        let mut handles = cell.borrow_mut();
        if let Some(entry) = handles.iter_mut().find(|(t, _)| *t == token) {
            return f(entry.1.as_mut());
        }
        handles.retain(|(_, h)| !h.is_closed());
        handles.push((token, backend.producer()));
        let entry = handles.last_mut().expect("just pushed");
        f(entry.1.as_mut())
    })
}

/// The calling thread's pid, assigning a fresh one on first use.
pub fn current_pid() -> Pid {
    CURRENT.with(|c| match c.get() {
        Some(pid) => pid,
        None => {
            let pid = Pid::new(NEXT_PID.fetch_add(1, Ordering::Relaxed));
            c.set(Some(pid));
            pid
        }
    })
}

/// Overrides the calling thread's pid (useful in tests that need
/// deterministic pids).
pub fn set_current_pid(pid: Pid) {
    CURRENT.with(|c| c.set(Some(pid)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_is_stable_within_a_thread() {
        let a = current_pid();
        let b = current_pid();
        assert_eq!(a, b);
    }

    #[test]
    fn pids_differ_across_threads() {
        let main = current_pid();
        let other = std::thread::spawn(current_pid).join().unwrap();
        assert_ne!(main, other);
    }

    #[test]
    fn set_current_pid_overrides() {
        let t = std::thread::spawn(|| {
            set_current_pid(Pid::new(4242));
            current_pid()
        });
        assert_eq!(t.join().unwrap(), Pid::new(4242));
    }
}
