//! Thread → process-identifier and thread → recording-state registry.
//!
//! The detection model identifies callers by [`Pid`]. Real threads get
//! their pid from a process-wide counter, cached in a thread-local, so
//! every recorded event attributes correctly without threading pids
//! through every call.
//!
//! The same thread-locality carries the whole per-thread half of the
//! recording pipeline: each (thread, runtime) pair owns one
//! `ThreadState` bundling its recorder segment (the thread's private
//! window buffer, see `crate::recorder`) with its
//! [`ProducerHandle`] into the runtime's detection backend. One
//! thread-local lookup per recorded event reaches both, so a hot-path
//! observation appends to the segment and — for monitors with
//! calling-order concerns — streams straight into the backend without
//! touching any mutex shared between observing threads. How hard the
//! recording thread pushes on backpressure is the monitor's
//! *instrumentation mode* (`rmon_core::Mode`, answered by the
//! backend): Sync uses [`ProducerHandle::try_observe`] with a bounded
//! yield-retry before it ever blocks on a full shard inbox, Async
//! fires one `try_observe` and detaches, Hybrid bounds the retry by a
//! wall-clock budget — see
//! `crate::runtime::RtInner::record_observe`. One thread =
//! one [`Pid`] = one segment = one handle is also what upholds the
//! backends' per-caller ordering precondition (see
//! `rmon_core::detect::backend`).

use crate::recorder::{Recorder, ThreadSegment};
use rmon_core::detect::{DetectionBackend, ProducerHandle};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use rmon_core::Pid;

static NEXT_PID: AtomicU32 = AtomicU32::new(1);

/// One thread's private recording state for one runtime: its writer
/// segment into the runtime's recorder plus its ingestion handle into
/// the runtime's detection backend.
///
/// The segment also carries the thread's **vector clock** when the
/// recorder attaches happens-before stamps (see
/// `Recorder::with_clocks`): keeping exactly one segment per (thread,
/// runtime) pair is what gives each thread a stable clock slot for the
/// runtime's lifetime.
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub(crate) segment: ThreadSegment,
    pub(crate) producer: Box<dyn ProducerHandle>,
}

thread_local! {
    static CURRENT: Cell<Option<Pid>> = const { Cell::new(None) };
    /// This thread's recording states, keyed by runtime token. Entries
    /// whose backend has shut down (their runtime is gone) are pruned
    /// whenever a new state is installed.
    static STATES: RefCell<Vec<(u64, ThreadState)>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over the calling thread's recording state for the runtime
/// identified by `token`, installing a fresh segment + producer handle
/// on first use.
pub(crate) fn with_thread_state<R>(
    token: u64,
    recorder: &Recorder,
    backend: &Arc<dyn DetectionBackend>,
    f: impl FnOnce(&mut ThreadState) -> R,
) -> R {
    STATES.with(|cell| {
        let mut states = cell.borrow_mut();
        if let Some(entry) = states.iter_mut().find(|(t, _)| *t == token) {
            return f(&mut entry.1);
        }
        states.retain(|(_, s)| !s.producer.is_closed());
        states.push((
            token,
            ThreadState { segment: recorder.new_thread_segment(), producer: backend.producer() },
        ));
        let entry = states.last_mut().expect("just pushed");
        f(&mut entry.1)
    })
}

/// The calling thread's pid, assigning a fresh one on first use.
pub fn current_pid() -> Pid {
    CURRENT.with(|c| match c.get() {
        Some(pid) => pid,
        None => {
            let pid = Pid::new(NEXT_PID.fetch_add(1, Ordering::Relaxed));
            c.set(Some(pid));
            pid
        }
    })
}

/// Overrides the calling thread's pid (useful in tests that need
/// deterministic pids).
pub fn set_current_pid(pid: Pid) {
    CURRENT.with(|c| c.set(Some(pid)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_is_stable_within_a_thread() {
        let a = current_pid();
        let b = current_pid();
        assert_eq!(a, b);
    }

    #[test]
    fn pids_differ_across_threads() {
        let main = current_pid();
        let other = std::thread::spawn(current_pid).join().unwrap();
        assert_ne!(main, other);
    }

    #[test]
    fn thread_state_keeps_one_clock_identity_per_runtime() {
        use rmon_core::detect::InlineBackend;
        use rmon_core::{DetectorConfig, EventKind, MonitorId, ProcName};

        let recorder = Recorder::with_clocks();
        let backend: Arc<dyn DetectionBackend> =
            Arc::new(InlineBackend::new(DetectorConfig::default()));
        let token = 0xC10C;
        let record = |kind| {
            with_thread_state(token, &recorder, &backend, |st| {
                recorder.record_on(
                    &mut st.segment,
                    MonitorId::new(0),
                    Pid::new(1),
                    ProcName::new(0),
                    kind,
                )
            })
        };
        let a = record(EventKind::Enter { granted: true });
        let b = record(EventKind::SignalExit { cond: None, resumed_waiter: false });
        // Same cached segment ⇒ same clock slot, strictly advancing.
        assert_eq!(a.vc.owner(), b.vc.owner());
        assert!(a.vc.owner().is_some());
        assert_eq!(a.vc.partial_cmp(&b.vc), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn set_current_pid_overrides() {
        let t = std::thread::spawn(|| {
            set_current_pid(Pid::new(4242));
            current_pid()
        });
        assert_eq!(t.join().unwrap(), Pid::new(4242));
    }
}
