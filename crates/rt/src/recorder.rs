//! The real-time data-gathering routine (§4): records scheduling
//! events from monitor primitives into the history database.

use parking_lot::Mutex;
use rmon_core::{Event, EventKind, MonitorId, Nanos, Pid, ProcName};
use std::time::Instant;

#[derive(Debug, Default)]
struct RecInner {
    next_seq: u64,
    window: Vec<Event>,
    total: u64,
}

/// Thread-safe event recorder with a monotonic wall clock.
#[derive(Debug)]
pub struct Recorder {
    inner: Mutex<RecInner>,
    origin: Instant,
}

impl Recorder {
    /// Creates a recorder whose clock starts now.
    pub fn new() -> Self {
        Recorder {
            inner: Mutex::new(RecInner { next_seq: 1, ..Default::default() }),
            origin: Instant::now(),
        }
    }

    /// Monotonic nanoseconds since the recorder was created.
    pub fn now(&self) -> Nanos {
        Nanos::new(self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Records one event at the current time.
    pub fn record(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
    ) -> Event {
        let time = self.now();
        let mut g = self.inner.lock();
        let event = Event { seq: g.next_seq, time, monitor, pid, proc_name, kind };
        g.next_seq += 1;
        g.total += 1;
        g.window.push(event);
        event
    }

    /// Drains the current checking window.
    pub fn drain_window(&self) -> Vec<Event> {
        std::mem::take(&mut self.inner.lock().window)
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.inner.lock().total
    }

    /// Buffered (undrained) events.
    pub fn pending(&self) -> usize {
        self.inner.lock().window.len()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_with_monotone_seq_and_time() {
        let r = Recorder::new();
        let a = r.record(
            MonitorId::new(0),
            Pid::new(1),
            ProcName::new(0),
            EventKind::Enter { granted: true },
        );
        let b = r.record(
            MonitorId::new(0),
            Pid::new(1),
            ProcName::new(0),
            EventKind::SignalExit { cond: None, resumed_waiter: false },
        );
        assert!(a.seq < b.seq);
        assert!(a.time <= b.time);
        assert_eq!(r.total(), 2);
        assert_eq!(r.pending(), 2);
    }

    #[test]
    fn drain_clears_window_but_not_totals() {
        let r = Recorder::new();
        r.record(
            MonitorId::new(0),
            Pid::new(1),
            ProcName::new(0),
            EventKind::Enter { granted: true },
        );
        assert_eq!(r.drain_window().len(), 1);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn concurrent_recording_keeps_unique_seqs() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    r.record(
                        MonitorId::new(0),
                        Pid::new(t),
                        ProcName::new(0),
                        EventKind::Enter { granted: true },
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = r.drain_window();
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400);
    }
}
