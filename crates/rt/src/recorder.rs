//! The real-time data-gathering routine (§4): records scheduling
//! events from monitor primitives into the history database.
//!
//! # The sharded recording pipeline
//!
//! The original recorder serialized every monitor operation through one
//! global `Mutex` around the window `Vec` — measurably the hottest lock
//! in the system (recording alone cost > 6× the bare monitor op in the
//! Table-1 harness). This module replaces it with a design in which the
//! hot path shares **nothing writable** between threads:
//!
//! * the total order `<L` comes from a single [`AtomicU64`] sequence
//!   counter (`fetch_add`, no lock);
//! * each recording thread appends into its own [`ThreadSegment`] — a
//!   chunked, append-only buffer owned by exactly one writer thread and
//!   published to the drain side with release/acquire stores on each
//!   chunk's length (the classic single-producer publication protocol
//!   of low-overhead tracers);
//! * [`Recorder::drain_window`] k-way merges the per-thread segments by
//!   `seq` ([`rmon_core::event::merge_by_seq`]), exploiting the fact
//!   that every segment is internally sorted by construction, and hands
//!   the checkpoint checkers the same globally-ordered window the
//!   locked recorder produced.
//!
//! Within one thread, events still appear in exactly the order their
//! sequence numbers were drawn, so the per-pid FIFO precondition of the
//! detection backends holds by construction — which is what lets the
//! runtime stream the same events straight into the thread's
//! [`ProducerHandle`](rmon_core::detect::ProducerHandle) without any
//! shared staging buffer (see `rmon_rt::registry`).

use parking_lot::Mutex;
use rmon_core::event::merge_by_seq;
use rmon_core::{Event, EventKind, MonitorId, Nanos, Pid, ProcName, VClock};
use std::cell::{RefCell, UnsafeCell};
use std::collections::HashMap;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Events per segment chunk. Chunks are never reallocated, so a push
/// is a plain slot write — no `Vec` growth memcpy on the hot path —
/// and a long window costs a list of chunks instead of one huge
/// reallocating buffer.
const CHUNK_EVENTS: usize = 1024;

/// Process-wide recorder identity source: keys the per-thread segment
/// cache, so one thread can record into several recorders (tests do)
/// without mixing their streams.
static NEXT_RECORDER_TOKEN: AtomicU64 = AtomicU64::new(1);

/// One fixed-capacity chunk of a thread segment.
///
/// Single-producer publication: only the owning thread writes slots and
/// stores `len` (release); drains load `len` (acquire) and read only
/// slots below it. Slots below a published `len` are never written
/// again, so the acquire load makes them safely readable.
struct Chunk {
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    /// Published element count. Writer-only store (release).
    len: AtomicUsize,
    /// Elements already consumed by a drain. Drainer-only, and drains
    /// are serialized by the segment-registry lock.
    taken: AtomicUsize,
}

// SAFETY: the only `UnsafeCell` access paths are `Chunk::push` (the
// single writer thread, slots at or above `len`) and `Chunk::drain_into`
// (readers of slots strictly below an acquire-loaded `len`, serialized
// by the recorder's registry lock). Writer and reader never touch the
// same slot concurrently: a slot becomes reader-visible only through
// the release store that also makes the writer never touch it again.
unsafe impl Sync for Chunk {}
unsafe impl Send for Chunk {}

impl Chunk {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(CHUNK_EVENTS);
        slots.resize_with(CHUNK_EVENTS, || UnsafeCell::new(MaybeUninit::uninit()));
        Chunk {
            slots: slots.into_boxed_slice(),
            len: AtomicUsize::new(0),
            taken: AtomicUsize::new(0),
        }
    }

    /// Moves every event published since the last drain into `out`,
    /// returning whether the chunk is exhausted (full and fully
    /// consumed). Caller must hold the segment-registry lock.
    fn drain_into(&self, out: &mut Vec<Event>) -> bool {
        let n = self.len.load(Ordering::Acquire);
        let t = self.taken.load(Ordering::Relaxed);
        for slot in &self.slots[t..n] {
            // SAFETY: slots below the acquire-loaded `len` are fully
            // written and never written again.
            out.push(unsafe { (*slot.get()).assume_init() });
        }
        self.taken.store(n, Ordering::Relaxed);
        n == CHUNK_EVENTS
    }

    /// Published-but-undrained events.
    fn pending(&self) -> usize {
        self.len.load(Ordering::Acquire) - self.taken.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunk")
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("taken", &self.taken.load(Ordering::Relaxed))
            .finish()
    }
}

/// The drain-side view of one thread's segment: the chunk list. The
/// small mutex is touched by the writer only once per [`CHUNK_EVENTS`]
/// pushes (to register a fresh chunk) and by drains.
#[derive(Debug, Default)]
struct SegmentShared {
    chunks: Mutex<Vec<Arc<Chunk>>>,
    /// Set (release) by the writer handle's drop, after its final
    /// push. A drain that acquire-loads `true` therefore
    /// happens-after every publication this segment will ever see —
    /// the edge that makes pruning a dead segment sound (an `Arc`
    /// strong-count probe would not synchronize with the last push).
    writer_closed: AtomicBool,
}

impl SegmentShared {
    fn drain_into(&self, out: &mut Vec<Event>) {
        self.chunks.lock().retain(|chunk| !chunk.drain_into(out));
    }

    fn pending(&self) -> usize {
        self.chunks.lock().iter().map(|c| c.pending()).sum()
    }

    /// Whether the segment can never produce another event and has
    /// nothing left to drain. The acquire load of `writer_closed`
    /// orders the subsequent `pending` check after the writer's final
    /// publication.
    fn exhausted(&self) -> bool {
        self.writer_closed.load(Ordering::Acquire) && self.pending() == 0
    }
}

/// A thread's private writer handle into the recording pipeline: the
/// hot-path half of the recorder. Created through
/// [`Recorder::new_thread_segment`], cached in thread-local storage,
/// never shared between threads.
#[derive(Debug)]
pub(crate) struct ThreadSegment {
    shared: Arc<SegmentShared>,
    current: Arc<Chunk>,
    /// Writer-side mirror of `current.len`: the writer is the only
    /// thread that advances the published length, so it never needs to
    /// read the atomic back.
    cursor: usize,
    /// The owning thread's happens-before clock, maintained by
    /// [`Recorder::record_on`] when the recorder was built with clocks
    /// enabled ([`Recorder::with_clocks`]); [`VClock::UNSET`] until the
    /// thread's first clocked event assigns it a slot. Living in the
    /// single-writer segment, it needs no synchronization of its own —
    /// cross-thread ordering flows exclusively through the recorder's
    /// monitor-clock table.
    clock: VClock,
}

impl ThreadSegment {
    /// Appends one event to this thread's stream.
    #[inline(always)]
    pub(crate) fn push(&mut self, event: Event) {
        if self.cursor == CHUNK_EVENTS {
            self.roll_over();
        }
        let i = self.cursor;
        // SAFETY: `i < CHUNK_EVENTS` (checked above), the slot is at or
        // above the published `len`, so no reader looks at it yet, and
        // `&mut self` plus the thread-local handout make this the
        // single writer thread (see the `Sync` justification on
        // `Chunk`).
        unsafe { (*self.current.slots.get_unchecked(i).get()).write(event) };
        self.cursor = i + 1;
        self.current.len.store(i + 1, Ordering::Release);
    }

    /// Starts a fresh chunk (once per [`CHUNK_EVENTS`] pushes).
    #[cold]
    fn roll_over(&mut self) {
        let fresh = Arc::new(Chunk::new());
        self.shared.chunks.lock().push(Arc::clone(&fresh));
        self.current = fresh;
        self.cursor = 0;
    }
}

impl Drop for ThreadSegment {
    fn drop(&mut self) {
        // Publish "no further events" with release ordering: a drain
        // that observes the flag also observes every push this writer
        // made, so the segment can be pruned without losing events.
        self.shared.writer_closed.store(true, Ordering::Release);
    }
}

/// Everything the recorder shares with drains and live segments.
#[derive(Debug, Default)]
struct RecShared {
    /// Every thread segment ever registered. Entries whose writer is
    /// gone are pruned once fully drained.
    segments: Mutex<Vec<Arc<SegmentShared>>>,
}

/// A monotonic nanosecond clock cheap enough to call once per recorded
/// event.
///
/// `Instant::now` is a vDSO `clock_gettime` — fine in isolation, but
/// the single largest cost of an instrumented monitor op once the
/// locks are gone. On x86_64 the clock therefore self-calibrates to
/// the TSC: early reads go through `Instant` while accumulating a
/// calibration baseline; once [`CALIBRATION_WINDOW`] has elapsed, the
/// measured tick rate is frozen and subsequent reads are one `rdtsc`
/// plus a multiply. The calibrating read returns its `Instant` value
/// and every later read is computed from a strictly larger tick count
/// at the frozen rate, so the switch never steps backwards; rate error
/// is bounded by the clock-read jitter over the calibration window
/// (sub-ppm at 10 ms). Timer rules compare event stamps against
/// checkpoint times from this same clock, so a bounded rate error
/// cancels out of every age computation.
#[derive(Debug)]
struct FastClock {
    origin: Instant,
    /// Frozen ns-per-tick rate as `f64` bits; `0` while uncalibrated.
    #[cfg(target_arch = "x86_64")]
    rate_bits: AtomicU64,
    /// TSC reading taken at `origin`.
    #[cfg(target_arch = "x86_64")]
    origin_ticks: u64,
    /// Whether the TSC is invariant (see [`tsc_is_invariant`]);
    /// `false` pins the clock to the `Instant` path forever.
    #[cfg(target_arch = "x86_64")]
    tsc_usable: bool,
}

/// How long the clock observes `Instant` before freezing the TSC rate.
#[cfg(target_arch = "x86_64")]
const CALIBRATION_WINDOW: u64 = 10_000_000; // 10 ms in ns

/// Whether the CPU advertises an invariant TSC
/// (CPUID.8000_0007H:EDX[8]): constant rate across P-/C-states and
/// synchronized across cores. Without it the calibrated rate would be
/// meaningless, so the clock then never leaves the `Instant` path.
#[cfg(target_arch = "x86_64")]
fn tsc_is_invariant() -> bool {
    // CPUID is architecturally available on x86_64 (safe intrinsic).
    if std::arch::x86_64::__cpuid(0x8000_0000).eax < 0x8000_0007 {
        return false;
    }
    std::arch::x86_64::__cpuid(0x8000_0007).edx & (1 << 8) != 0
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn rdtsc() -> u64 {
    // SAFETY: the TSC is architecturally guaranteed on x86_64.
    unsafe { std::arch::x86_64::_rdtsc() }
}

impl FastClock {
    fn new() -> Self {
        FastClock {
            origin: Instant::now(),
            #[cfg(target_arch = "x86_64")]
            rate_bits: AtomicU64::new(0),
            #[cfg(target_arch = "x86_64")]
            origin_ticks: rdtsc(),
            #[cfg(target_arch = "x86_64")]
            tsc_usable: tsc_is_invariant(),
        }
    }

    /// Nanoseconds since the clock was created (see the type docs).
    #[inline(always)]
    fn now(&self) -> Nanos {
        #[cfg(target_arch = "x86_64")]
        {
            let bits = self.rate_bits.load(Ordering::Relaxed);
            if bits != 0 {
                let ticks = rdtsc().saturating_sub(self.origin_ticks);
                Nanos::new((ticks as f64 * f64::from_bits(bits)) as u64)
            } else {
                self.calibrating_now()
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Nanos::new(self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// The pre-calibration slow path: answers from `Instant` and, once
    /// the window has elapsed with a usable tick delta, freezes the
    /// rate.
    #[cfg(target_arch = "x86_64")]
    #[cold]
    fn calibrating_now(&self) -> Nanos {
        let elapsed = self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let ticks = rdtsc().saturating_sub(self.origin_ticks);
        if self.tsc_usable && elapsed >= CALIBRATION_WINDOW && ticks > 0 {
            let rate = elapsed as f64 / ticks as f64;
            if rate.is_finite() && rate > 0.0 {
                // A racing calibrator computed an equally valid rate;
                // either store wins.
                self.rate_bits.store(rate.to_bits(), Ordering::Relaxed);
            }
        }
        Nanos::new(elapsed)
    }
}

/// Thread-safe event recorder with a monotonic wall clock.
///
/// The hot path ([`Recorder::record`]) draws the global sequence number
/// from an atomic counter and appends to a per-thread segment — no lock
/// shared between recording threads. [`Recorder::drain_window`] merges
/// the segments back into the single globally-ordered window the
/// checking algorithms expect. See the module docs above.
#[derive(Debug)]
pub struct Recorder {
    token: u64,
    next_seq: AtomicU64,
    shared: Arc<RecShared>,
    clock: FastClock,
    /// Happens-before clock table, present only when the recorder was
    /// built with [`Recorder::with_clocks`] (the predictive-detection
    /// opt-in). `None` keeps the hot path exactly as lock-free as
    /// before — [`Recorder::record_on`] never touches a lock then.
    vclocks: Option<Mutex<ClockTable>>,
}

/// The shared half of vector-clock maintenance: slot assignment and the
/// per-monitor clocks that carry cross-thread edges. Guarded by one
/// mutex; [`Recorder::record_on`] draws the event's sequence number
/// *inside* the critical section, which is what makes every
/// happens-before edge point at a smaller `seq` (the executed total
/// order stays a linear extension of the recorded partial order).
#[derive(Debug, Default)]
struct ClockTable {
    /// Next thread slot to hand out (first clocked event of a thread).
    /// Slots at or beyond [`VClock::CAPACITY`] saturate — soundly.
    next_slot: usize,
    /// Per-monitor clocks: the lub of every releasing thread's clock.
    monitors: HashMap<MonitorId, VClock>,
}

thread_local! {
    /// The calling thread's writer segments, keyed by recorder token.
    /// Entries whose recorder is gone are pruned when a new segment is
    /// installed.
    static SEGMENTS: RefCell<Vec<(u64, Weak<RecShared>, ThreadSegment)>> =
        const { RefCell::new(Vec::new()) };
}

impl Recorder {
    /// Creates a recorder whose clock starts now.
    pub fn new() -> Self {
        Recorder {
            token: NEXT_RECORDER_TOKEN.fetch_add(1, Ordering::Relaxed),
            next_seq: AtomicU64::new(1),
            shared: Arc::new(RecShared::default()),
            clock: FastClock::new(),
            vclocks: None,
        }
    }

    /// Creates a recorder that additionally stamps every event with a
    /// happens-before [`VClock`] at segment publication — the recording
    /// half of predictive detection (`rmon_core::detect::predict`).
    ///
    /// Clocked recording serializes the merge/tick/publish dance (and
    /// the sequence draw) through one mutex, trading the lock-free hot
    /// path for annotated events; that is why it is a constructor-time
    /// opt-in rather than a default.
    pub fn with_clocks() -> Self {
        Recorder { vclocks: Some(Mutex::new(ClockTable::default())), ..Self::new() }
    }

    /// Whether events are being stamped with happens-before clocks.
    pub fn clocks_enabled(&self) -> bool {
        self.vclocks.is_some()
    }

    /// Monotonic nanoseconds since the recorder was created (a
    /// self-calibrating TSC clock on x86_64 — see `FastClock`).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Stamps an event with the current time and the next global
    /// sequence number — the lock-free half of [`Recorder::record`],
    /// for callers (the runtime) that append to a [`ThreadSegment`]
    /// they already hold.
    #[inline(always)]
    pub(crate) fn stamp(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
    ) -> Event {
        Event {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            time: self.now(),
            monitor,
            pid,
            proc_name,
            kind,
            vc: VClock::UNSET,
        }
    }

    /// Stamps one event and appends it to `segment` — the entry point
    /// shared by [`Recorder::record`] and the runtime's recording path.
    ///
    /// Without clocks this is exactly the old stamp-and-push. With
    /// clocks ([`Recorder::with_clocks`]) the whole dance runs under
    /// the clock-table mutex: assign the thread a slot on first use,
    /// merge the monitor clock on synchronizing events (everything but
    /// a *blocked* `Enter`, which is recorded before acquisition), tick
    /// the thread clock, stamp, publish the thread clock to the monitor
    /// on releasing events (`Wait` / `Signal-Exit` / `Terminate`), and
    /// draw `seq` — inside the lock, so happens-before edges always
    /// point at smaller sequence numbers.
    pub(crate) fn record_on(
        &self,
        segment: &mut ThreadSegment,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
    ) -> Event {
        let event = match &self.vclocks {
            None => self.stamp(monitor, pid, proc_name, kind),
            Some(table) => {
                let mut table = table.lock();
                if !segment.clock.is_set() {
                    let slot = table.next_slot;
                    table.next_slot += 1;
                    segment.clock = VClock::for_slot(slot);
                }
                if !matches!(kind, EventKind::Enter { granted: false }) {
                    if let Some(m) = table.monitors.get(&monitor) {
                        segment.clock.merge(m);
                    }
                }
                segment.clock.tick();
                if matches!(
                    kind,
                    EventKind::Wait { .. } | EventKind::SignalExit { .. } | EventKind::Terminate
                ) {
                    table.monitors.entry(monitor).or_insert(VClock::UNSET).merge(&segment.clock);
                }
                self.stamp(monitor, pid, proc_name, kind).with_vc(segment.clock)
            }
        };
        segment.push(event);
        event
    }

    /// Registers (and returns) a fresh per-thread writer segment. The
    /// caller owns the writer side; the recorder keeps the drain side.
    pub(crate) fn new_thread_segment(&self) -> ThreadSegment {
        let shared = Arc::new(SegmentShared::default());
        let current = Arc::new(Chunk::new());
        shared.chunks.lock().push(Arc::clone(&current));
        self.shared.segments.lock().push(Arc::clone(&shared));
        ThreadSegment { shared, current, cursor: 0, clock: VClock::UNSET }
    }

    /// Records one event at the current time, into the calling thread's
    /// segment (created and cached on first use).
    ///
    /// This is the **standalone** entry point (tests, benches, direct
    /// recorder users) and keeps its own thread-local segment cache,
    /// keyed by recorder token. The runtime does not come through
    /// here: `rmon_rt::registry` caches a `ThreadSegment` (obtained
    /// from `Recorder::new_thread_segment`) together with the
    /// thread's producer handle under the *runtime* token, so its hot
    /// path pays one thread-local lookup for both. Both caches hand
    /// out segments from the same registry, and extra segments per
    /// thread are sound by construction (any single-writer segment
    /// is; the drain merge restores the global order).
    pub fn record(
        &self,
        monitor: MonitorId,
        pid: Pid,
        proc_name: ProcName,
        kind: EventKind,
    ) -> Event {
        SEGMENTS.with(|cell| {
            let mut entries = cell.borrow_mut();
            if let Some(entry) = entries.iter_mut().find(|(t, ..)| *t == self.token) {
                return self.record_on(&mut entry.2, monitor, pid, proc_name, kind);
            }
            entries.retain(|(_, rec, _)| rec.strong_count() > 0);
            let mut segment = self.new_thread_segment();
            let event = self.record_on(&mut segment, monitor, pid, proc_name, kind);
            entries.push((self.token, Arc::downgrade(&self.shared), segment));
            event
        })
    }

    /// Drains the current checking window: takes every event published
    /// since the last drain, k-way merged back into global `seq` order.
    ///
    /// Concurrent drains are serialized on the segment registry; a
    /// drain concurrent with recording takes a prefix of each thread's
    /// stream (per-pid order is preserved — a thread's remaining events
    /// all carry higher sequence numbers and land in the next window).
    pub fn drain_window(&self) -> Vec<Event> {
        let mut segments = self.shared.segments.lock();
        let mut streams: Vec<Vec<Event>> = Vec::with_capacity(segments.len());
        segments.retain(|seg| {
            let mut stream = Vec::new();
            seg.drain_into(&mut stream);
            if !stream.is_empty() {
                streams.push(stream);
            }
            // Prune segments whose writer handle is gone (thread exited
            // or runtime state pruned) once nothing is left to drain;
            // `exhausted` orders the emptiness check after the writer's
            // final publication.
            !seg.exhausted()
        });
        merge_by_seq(streams)
    }

    /// Total events recorded (sequence numbers issued).
    pub fn total(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }

    /// Buffered (undrained) events across all thread segments.
    pub fn pending(&self) -> usize {
        self.shared.segments.lock().iter().map(|s| s.pending()).sum()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_with_monotone_seq_and_time() {
        let r = Recorder::new();
        let a = r.record(
            MonitorId::new(0),
            Pid::new(1),
            ProcName::new(0),
            EventKind::Enter { granted: true },
        );
        let b = r.record(
            MonitorId::new(0),
            Pid::new(1),
            ProcName::new(0),
            EventKind::SignalExit { cond: None, resumed_waiter: false },
        );
        assert!(a.seq < b.seq);
        assert!(a.time <= b.time);
        assert_eq!(r.total(), 2);
        assert_eq!(r.pending(), 2);
    }

    #[test]
    fn drain_clears_window_but_not_totals() {
        let r = Recorder::new();
        r.record(
            MonitorId::new(0),
            Pid::new(1),
            ProcName::new(0),
            EventKind::Enter { granted: true },
        );
        assert_eq!(r.drain_window().len(), 1);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn concurrent_recording_keeps_unique_seqs_and_merges_sorted() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    r.record(
                        MonitorId::new(0),
                        Pid::new(t),
                        ProcName::new(0),
                        EventKind::Enter { granted: true },
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = r.drain_window();
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq), "window sorted by seq");
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400);
        assert_eq!(r.total(), 400);
    }

    #[test]
    fn chunk_rollover_loses_nothing() {
        // Drive one thread far past a chunk boundary, draining
        // mid-stream, and verify the union of windows is gapless.
        let r = Recorder::new();
        let total = CHUNK_EVENTS * 2 + 37;
        let mut drained = Vec::new();
        for i in 0..total {
            r.record(
                MonitorId::new(0),
                Pid::new(1),
                ProcName::new(0),
                EventKind::Enter { granted: true },
            );
            if i % 777 == 0 {
                drained.extend(r.drain_window());
            }
        }
        drained.extend(r.drain_window());
        assert_eq!(drained.len(), total);
        assert!(drained.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn two_recorders_on_one_thread_keep_separate_streams() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.record(MonitorId::new(0), Pid::new(1), ProcName::new(0), EventKind::Terminate);
        a.record(MonitorId::new(0), Pid::new(1), ProcName::new(0), EventKind::Terminate);
        b.record(MonitorId::new(9), Pid::new(2), ProcName::new(0), EventKind::Terminate);
        assert_eq!(a.drain_window().len(), 2);
        let bw = b.drain_window();
        assert_eq!(bw.len(), 1);
        assert_eq!(bw[0].monitor, MonitorId::new(9));
    }

    #[test]
    fn dead_thread_segments_are_drained_then_pruned() {
        let r = Arc::new(Recorder::new());
        let r2 = Arc::clone(&r);
        std::thread::spawn(move || {
            r2.record(MonitorId::new(0), Pid::new(7), ProcName::new(0), EventKind::Terminate);
        })
        .join()
        .unwrap();
        // The writer thread is gone; its events must still drain.
        assert_eq!(r.drain_window().len(), 1);
        // And its now-empty segment must have been pruned.
        assert_eq!(r.shared.segments.lock().len(), 0);
    }
}
