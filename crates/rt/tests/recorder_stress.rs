//! Stress and equivalence tests for the sharded recording pipeline:
//! N producer threads × M monitors hammering one [`Recorder`], with a
//! concurrent drainer, checked for (a) per-pid sequence monotonicity
//! across window boundaries, (b) zero lost or duplicated events after
//! the drain merges, and (c) violation sequences identical to a
//! globally-locked reference recorder fed the same logical trace.

use rmon_core::detect::Detector;
use rmon_core::{
    DetectorConfig, Event, EventKind, MonitorId, MonitorSpec, Nanos, Pid, ProcName, RuleId, VClock,
};
use rmon_rt::Recorder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const THREADS: u32 = 4;
const MONITORS: u32 = 6;
const ROUNDS: u32 = 200;

/// The allocator spec shared by every monitor in the stress fleet.
fn allocator() -> (Arc<MonitorSpec>, ProcName, ProcName) {
    let al = MonitorSpec::allocator("res", 1);
    (Arc::new(al.spec.clone()), al.request, al.release)
}

/// A minimal stand-in for the pre-pipeline recorder: one global mutex
/// around the sequence counter and the window, exactly the structure
/// the sharded pipeline replaced. Used as the behavioural reference.
#[derive(Default)]
struct LockedRecorder {
    inner: Mutex<(u64, Vec<Event>)>,
}

impl LockedRecorder {
    fn record(&self, monitor: MonitorId, pid: Pid, proc_name: ProcName, kind: EventKind) {
        let mut g = self.inner.lock().unwrap();
        g.0 += 1;
        let seq = g.0;
        let event = Event {
            seq,
            time: Nanos::new(seq * 10),
            monitor,
            pid,
            proc_name,
            kind,
            vc: VClock::UNSET,
        };
        g.1.push(event);
    }

    fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut self.inner.lock().unwrap().1)
    }
}

/// Runs the deterministic faulty allocator script for one thread:
/// every round on every monitor requests, duplicates the request
/// (fault U3), releases, then double-releases (fault U1). The
/// per-(monitor, pid) event sequence — and therefore the per-caller
/// Algorithm-3 verdict sequence — is a pure function of this script,
/// independent of cross-thread interleaving.
fn drive(
    record: &impl Fn(MonitorId, Pid, ProcName, EventKind),
    pid: Pid,
    request: ProcName,
    release: ProcName,
) {
    for round in 0..ROUNDS {
        for m in 0..MONITORS {
            let monitor = MonitorId::new(m);
            record(monitor, pid, request, EventKind::Enter { granted: true });
            if round % 3 == 0 {
                // U3: duplicate request while holding the right.
                record(monitor, pid, request, EventKind::Enter { granted: false });
            }
            record(
                monitor,
                pid,
                request,
                EventKind::SignalExit { cond: None, resumed_waiter: false },
            );
            record(monitor, pid, release, EventKind::Enter { granted: true });
            record(
                monitor,
                pid,
                release,
                EventKind::SignalExit { cond: None, resumed_waiter: false },
            );
            if round % 4 == 0 {
                // U1: release without a preceding request.
                record(monitor, pid, release, EventKind::Enter { granted: false });
            }
        }
    }
}

/// Events each thread produces per run of the script.
fn events_per_thread() -> u64 {
    let mut n = 0u64;
    for round in 0..ROUNDS {
        n += u64::from(MONITORS) * 4;
        if round % 3 == 0 {
            n += u64::from(MONITORS);
        }
        if round % 4 == 0 {
            n += u64::from(MONITORS);
        }
    }
    n
}

/// Groups the violation rule sequences by `(monitor, pid)` in event
/// order — the per-caller verdict streams the detection backends
/// guarantee to be interleaving-independent.
fn verdicts_by_caller(events: &[Event]) -> HashMap<(MonitorId, Pid), Vec<RuleId>> {
    let (spec, _, _) = allocator();
    let mut det = Detector::new(DetectorConfig::without_timeouts());
    for m in 0..MONITORS {
        det.register_empty(MonitorId::new(m), Arc::clone(&spec), Nanos::ZERO);
    }
    let violations = det.observe_batch(events);
    let mut by_caller: HashMap<(MonitorId, Pid), Vec<RuleId>> = HashMap::new();
    for v in violations {
        by_caller
            .entry((v.monitor, v.pid.expect("order violations carry a pid")))
            .or_default()
            .push(v.rule);
    }
    by_caller
}

#[test]
fn stress_no_lost_events_and_per_pid_monotonicity() {
    let recorder = Arc::new(Recorder::new());
    let (_, request, release) = allocator();
    let stop = Arc::new(AtomicBool::new(false));
    let drained = Arc::new(AtomicU64::new(0));

    // A concurrent drainer: windows taken mid-stream must each be
    // seq-sorted, and their union must be gapless at the end.
    let windows: Arc<Mutex<Vec<Vec<Event>>>> = Arc::new(Mutex::new(Vec::new()));
    let drainer = {
        let recorder = Arc::clone(&recorder);
        let stop = Arc::clone(&stop);
        let windows = Arc::clone(&windows);
        let drained = Arc::clone(&drained);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let w = recorder.drain_window();
                if !w.is_empty() {
                    drained.fetch_add(w.len() as u64, Ordering::Relaxed);
                    windows.lock().unwrap().push(w);
                }
                std::thread::yield_now();
            }
        })
    };

    let mut producers = Vec::new();
    for t in 0..THREADS {
        let recorder = Arc::clone(&recorder);
        producers.push(std::thread::spawn(move || {
            let pid = Pid::new(t + 1);
            let record = |m: MonitorId, p: Pid, pr: ProcName, k: EventKind| {
                recorder.record(m, p, pr, k);
            };
            drive(&record, pid, request, release);
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    drainer.join().unwrap();
    let final_window = recorder.drain_window();
    let expected = u64::from(THREADS) * events_per_thread();
    assert_eq!(recorder.total(), expected);
    assert_eq!(recorder.pending(), 0);

    let mut all: Vec<Event> = Vec::new();
    for w in windows.lock().unwrap().iter() {
        assert!(w.windows(2).all(|p| p[0].seq < p[1].seq), "each window is seq-sorted");
        all.extend_from_slice(w);
    }
    assert!(final_window.windows(2).all(|p| p[0].seq < p[1].seq));
    all.extend_from_slice(&final_window);

    // No lost and no duplicated events: seqs are exactly 1..=expected.
    assert_eq!(all.len() as u64, expected, "drained union covers every recorded event");
    let mut seqs: Vec<u64> = all.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len() as u64, expected, "no duplicate seq");
    assert_eq!(seqs.first().copied(), Some(1));
    assert_eq!(seqs.last().copied(), Some(expected));

    // Per-pid monotonicity in drain order across window boundaries:
    // concatenating the windows, each pid's seqs strictly increase —
    // the FIFO precondition the detection backends rely on.
    let mut last_seq: HashMap<Pid, u64> = HashMap::new();
    for e in &all {
        let last = last_seq.entry(e.pid).or_insert(0);
        assert!(e.seq > *last, "pid {} went backwards: {} after {}", e.pid, e.seq, last);
        *last = e.seq;
    }
}

/// The clock-attaching recorder under the same concurrency pattern:
/// four producer threads with a concurrent drainer. Publication must
/// stay lossless, every published event must carry a stamp, and the
/// stamps must be consistent with the sequence order — within one
/// thread consecutive events are strictly clock-ordered, and across
/// threads every clock-ordered pair agrees with `seq` (the recorder
/// draws `seq` and the clock under the same lock, so the executed
/// total order is a linear extension of happens-before).
#[test]
fn stress_clocked_recorder_stamps_are_consistent_with_seq_order() {
    const CLOCK_ROUNDS: u32 = 50;
    const CLOCK_MONITORS: u32 = 2;
    let recorder = Arc::new(Recorder::with_clocks());
    assert!(recorder.clocks_enabled());
    let (_, request, release) = allocator();
    let stop = Arc::new(AtomicBool::new(false));

    let windows: Arc<Mutex<Vec<Vec<Event>>>> = Arc::new(Mutex::new(Vec::new()));
    let drainer = {
        let recorder = Arc::clone(&recorder);
        let stop = Arc::clone(&stop);
        let windows = Arc::clone(&windows);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let w = recorder.drain_window();
                if !w.is_empty() {
                    windows.lock().unwrap().push(w);
                }
                std::thread::yield_now();
            }
        })
    };

    let mut producers = Vec::new();
    for t in 0..THREADS {
        let recorder = Arc::clone(&recorder);
        producers.push(std::thread::spawn(move || {
            let pid = Pid::new(t + 1);
            for _ in 0..CLOCK_ROUNDS {
                for m in 0..CLOCK_MONITORS {
                    let monitor = MonitorId::new(m);
                    recorder.record(monitor, pid, request, EventKind::Enter { granted: true });
                    recorder.record(
                        monitor,
                        pid,
                        request,
                        EventKind::SignalExit { cond: None, resumed_waiter: false },
                    );
                    recorder.record(monitor, pid, release, EventKind::Enter { granted: true });
                    recorder.record(
                        monitor,
                        pid,
                        release,
                        EventKind::SignalExit { cond: None, resumed_waiter: false },
                    );
                }
            }
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    drainer.join().unwrap();

    // Lossless under concurrent drains, exactly as the unclocked one.
    let mut all: Vec<Event> = windows.lock().unwrap().iter().flatten().copied().collect();
    all.extend(recorder.drain_window());
    let expected = u64::from(THREADS) * u64::from(CLOCK_ROUNDS) * u64::from(CLOCK_MONITORS) * 4;
    assert_eq!(all.len() as u64, expected);
    let mut seqs: Vec<u64> = all.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len() as u64, expected, "no lost or duplicated events");
    assert_eq!(seqs.last().copied(), Some(expected));

    // Every published event carries a set, unsaturated stamp (four
    // threads fit the clock capacity).
    assert!(all.iter().all(|e| e.vc.is_set() && !e.vc.is_saturated()));

    // Same-thread events are strictly clock-ordered in seq order.
    all.sort_unstable_by_key(|e| e.seq);
    let mut last_of: HashMap<Pid, &Event> = HashMap::new();
    for e in &all {
        if let Some(prev) = last_of.insert(e.pid, e) {
            assert_eq!(
                prev.vc.partial_cmp(&e.vc),
                Some(std::cmp::Ordering::Less),
                "pid {}: stamp of l{} must precede l{}",
                e.pid,
                prev.seq,
                e.seq
            );
        }
    }

    // Across all pairs: clock order never contradicts seq order — the
    // executed schedule is a linear extension of happens-before.
    for (i, a) in all.iter().enumerate() {
        for b in &all[i + 1..] {
            assert_ne!(
                a.vc.partial_cmp(&b.vc),
                Some(std::cmp::Ordering::Greater),
                "l{} is stamped after l{} but sequenced before it",
                a.seq,
                b.seq
            );
        }
    }
}

#[test]
fn stress_violations_match_locked_reference_recorder() {
    // The same logical trace through the sharded pipeline and through
    // the old global-mutex shape: per-(monitor, pid) verdict sequences
    // must be identical.
    let recorder = Arc::new(Recorder::new());
    let reference = Arc::new(LockedRecorder::default());
    let (_, request, release) = allocator();

    let mut producers = Vec::new();
    for t in 0..THREADS {
        let recorder = Arc::clone(&recorder);
        let reference = Arc::clone(&reference);
        producers.push(std::thread::spawn(move || {
            let pid = Pid::new(100 + t);
            let record = |m: MonitorId, p: Pid, pr: ProcName, k: EventKind| {
                recorder.record(m, p, pr, k);
                reference.record(m, p, pr, k);
            };
            drive(&record, pid, request, release);
        }));
    }
    for p in producers {
        p.join().unwrap();
    }

    let pipeline_events = recorder.drain_window();
    let reference_events = reference.drain();
    assert_eq!(pipeline_events.len(), reference_events.len());

    let got = verdicts_by_caller(&pipeline_events);
    let want = verdicts_by_caller(&reference_events);
    assert!(!want.is_empty(), "the script must provoke violations");
    assert!(
        want.values().flatten().any(|r| *r == RuleId::St8DuplicateRequest),
        "duplicate requests must be flagged"
    );
    assert_eq!(got, want, "per-caller verdict sequences must match the locked recorder");
}
