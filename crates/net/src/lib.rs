//! # rmon-net — distributed detection
//!
//! Multi-process runtimes streaming monitor events to **one logical
//! detection service**: the DSN 2001 monitor-fleet checker stretched
//! across process (and machine) boundaries.
//!
//! The paper's run-time detector assumes every monitor's event stream
//! reaches one checker. This crate keeps that assumption true when the
//! monitored processes are separate OS processes: each worker embeds a
//! [`RemoteBackend`] (an ordinary
//! [`DetectionBackend`](rmon_core::detect::DetectionBackend), so
//! `rmon-rt` plugs it in unchanged) and the service side runs a
//! [`DetectionService`] wrapping the real inline/sharded backend.
//!
//! ## Layers (bottom up)
//!
//! * [`transport`] — byte-stream framing: the same
//!   `[len | crc32 | payload]` frame the oplog's segments use
//!   ([`rmon_storage::frame`]), over TCP, Unix sockets, or an
//!   in-process duplex channel for deterministic tests.
//! * [`proto`] — the wire envelope (`seq` + HLC stamp) and message
//!   codec. Event batches are carried as
//!   [`rmon_core::oplog::Record`] bytes verbatim, so a service can tee
//!   its ingress straight into an oplog.
//! * [`session`] — exactly-once in-order delivery over a
//!   delay/reorder/duplicate (never lose, never corrupt) fault model,
//!   plus hybrid-logical-clock exchange ([`rmon_core::Hlc`]) so
//!   cross-worker causality stays comparable under clock drift.
//! * [`harness`] — deterministic fault injection (partition, reorder,
//!   duplicate, delay) for tests; see
//!   `tests/distributed_equivalence.rs` at the workspace root.
//! * [`remote`] / [`service`] — the two ends: worker-side backend and
//!   service-side fleet checker with checkpoint fan-out, bounded
//!   deadlines, and per-worker quarantine.
//!
//! ## Equivalence claim
//!
//! Because the session layer repairs the link to exactly-once in-order
//! per worker, and real-time detection state is per-`Pid`, a
//! distributed run produces the **same verdicts** as feeding the same
//! traces to the backend in-process — under clean, partitioned,
//! reordered, or duplicated delivery. The workspace test
//! `distributed_equivalence` proves this against both backends.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod proto;
pub mod remote;
pub mod service;
pub mod session;
pub mod transport;

pub use harness::{chaos_pair, ChaosConfig, ChaosController};
pub use proto::{decode_envelope, encode_envelope, Envelope, Msg, PROTO_VERSION};
pub use remote::{RemoteBackend, RemoteConfig};
pub use service::{DetectionService, FleetReport, NameResolver, ServiceConfig, SessionSummary};
pub use session::{NodeClock, Polled, SessionRx, SessionTx};
pub use transport::{duplex, tcp_endpoint, Endpoint, FrameRx, FrameTx, Recv};

#[cfg(unix)]
pub use transport::unix_endpoint;
