//! The session layer: per-frame sequencing, reorder/duplicate repair,
//! and hybrid-logical-clock exchange over any transport.
//!
//! The fault model (see [`crate::harness`]) is *no loss, possible
//! delay/reorder/duplication* — a reliable stream with scheduling
//! freedom around it. That model needs exactly three mechanisms, all
//! here:
//!
//! * every [`SessionTx::send`] stamps a dense per-session `seq`;
//! * [`SessionRx`] delivers strictly in `seq` order, parking
//!   early-arrived envelopes in a bounded reorder buffer and dropping
//!   `seq`s it has already delivered (duplicates);
//! * both directions carry the sender's [`HlcStamp`], and the receiver
//!   folds each arrival into the shared [`NodeClock`] — so causally
//!   ordered cross-worker events carry comparable stamps even when the
//!   workers' physical clocks drift (the clock merge rule is
//!   [`rmon_core::Hlc::observe`]).

use crate::proto::{decode_envelope, encode_envelope, Envelope, Msg};
use crate::transport::{FrameRx, FrameTx, Recv};
use rmon_core::{Hlc, HlcStamp, Nanos};
use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Mutex};

/// One node's shared hybrid logical clock: every session (and both
/// halves of each) on the node ticks/merges the same clock, so local
/// send order and remote receive order both advance it.
#[derive(Debug, Clone, Default)]
pub struct NodeClock(Arc<Mutex<Hlc>>);

impl NodeClock {
    /// A fresh clock at zero.
    pub fn new() -> Self {
        NodeClock::default()
    }

    /// Stamps a local event (send path): [`rmon_core::Hlc::tick`].
    pub fn tick(&self, now: Nanos) -> HlcStamp {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).tick(now)
    }

    /// Merges a remote stamp (receive path):
    /// [`rmon_core::Hlc::observe`].
    pub fn observe(&self, remote: HlcStamp, now: Nanos) -> HlcStamp {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).observe(remote, now)
    }

    /// The largest stamp issued or observed so far.
    pub fn last(&self) -> HlcStamp {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).last()
    }
}

/// The sending half of a session: stamps and frames messages.
#[derive(Debug)]
pub struct SessionTx {
    tx: Box<dyn FrameTx>,
    next_seq: u64,
    clock: NodeClock,
}

impl SessionTx {
    /// Wraps a transport tx half with a node clock.
    pub fn new(tx: Box<dyn FrameTx>, clock: NodeClock) -> Self {
        SessionTx { tx, next_seq: 0, clock }
    }

    /// Sends one message, stamped with the next session `seq` and the
    /// node clock ticked at `now`. Returns the stamp it carried.
    pub fn send(&mut self, msg: &Msg, now: Nanos) -> io::Result<HlcStamp> {
        let hlc = self.clock.tick(now);
        let env = Envelope { seq: self.next_seq, hlc, msg: msg.clone() };
        self.tx.send_frame(&encode_envelope(&env))?;
        self.next_seq += 1;
        Ok(hlc)
    }

    /// Frames sent so far.
    pub fn sent(&self) -> u64 {
        self.next_seq
    }
}

/// What one [`SessionRx::poll`] produced.
#[derive(Debug)]
pub enum Polled {
    /// The next in-order envelope.
    Msg(Envelope),
    /// Nothing deliverable right now (transport idle, or only
    /// out-of-order frames have arrived).
    Idle,
    /// The peer is gone and nothing more can become deliverable.
    Closed,
}

/// The receiving half of a session: repairs reordering, drops
/// duplicates, folds remote HLC stamps into the node clock.
#[derive(Debug)]
pub struct SessionRx {
    rx: Box<dyn FrameRx>,
    next_seq: u64,
    parked: BTreeMap<u64, Envelope>,
    clock: NodeClock,
    duplicates: u64,
    reordered: u64,
}

impl SessionRx {
    /// Wraps a transport rx half with a node clock.
    pub fn new(rx: Box<dyn FrameRx>, clock: NodeClock) -> Self {
        SessionRx { rx, next_seq: 0, parked: BTreeMap::new(), clock, duplicates: 0, reordered: 0 }
    }

    /// Delivers the next in-order envelope if one is available,
    /// pulling frames from the transport as needed. Blocks at most one
    /// transport poll interval.
    ///
    /// A decode failure is a terminal protocol error (`InvalidData`):
    /// under the no-corruption fault model it means a non-speaker on
    /// the socket.
    pub fn poll(&mut self, now: Nanos) -> io::Result<Polled> {
        loop {
            if let Some(env) = self.parked.remove(&self.next_seq) {
                self.next_seq += 1;
                return Ok(Polled::Msg(env));
            }
            match self.rx.recv_frame()? {
                Recv::Frame(payload) => {
                    let env = decode_envelope(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    self.clock.observe(env.hlc, now);
                    if env.seq < self.next_seq {
                        self.duplicates += 1;
                        continue;
                    }
                    if env.seq == self.next_seq {
                        self.next_seq += 1;
                        return Ok(Polled::Msg(env));
                    }
                    // Early: park it and keep reading — under no-loss
                    // the gap frame is in flight.
                    if self.parked.insert(env.seq, env).is_none() {
                        self.reordered += 1;
                    } else {
                        self.duplicates += 1;
                    }
                }
                Recv::Idle => return Ok(Polled::Idle),
                Recv::Closed => {
                    // No-loss means a closed transport cannot fill a
                    // gap: anything still parked is undeliverable.
                    return Ok(Polled::Closed);
                }
            }
        }
    }

    /// Duplicate frames dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Frames that arrived ahead of a gap and were parked.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Envelopes currently parked behind a gap.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{chaos_pair, ChaosConfig};
    use crate::transport::duplex;

    fn hello(name: &str) -> Msg {
        Msg::Hello { proto: crate::proto::PROTO_VERSION, name: name.into() }
    }

    fn poll_msg(rx: &mut SessionRx, budget: u32) -> Option<Envelope> {
        for _ in 0..budget {
            match rx.poll(Nanos::ZERO).unwrap() {
                Polled::Msg(env) => return Some(env),
                Polled::Idle => continue,
                Polled::Closed => return None,
            }
        }
        None
    }

    #[test]
    fn clean_link_delivers_in_order_with_dense_seqs() {
        let (a, b) = duplex(16);
        let mut tx = SessionTx::new(a.tx, NodeClock::new());
        let mut rx = SessionRx::new(b.rx, NodeClock::new());
        for i in 0..5 {
            tx.send(&hello(&format!("m{i}")), Nanos::new(i * 10)).unwrap();
        }
        for i in 0..5 {
            let env = poll_msg(&mut rx, 100).unwrap();
            assert_eq!(env.seq, i);
            assert_eq!(env.msg, hello(&format!("m{i}")));
        }
        assert_eq!(rx.duplicates(), 0);
        assert_eq!(rx.parked(), 0);
    }

    #[test]
    fn chaotic_link_is_repaired_to_exactly_once_in_order() {
        let cfg =
            ChaosConfig { seed: 3, hold_per_mille: 350, dup_per_mille: 250, reorder_window: 3 };
        let (a, b, ctl) = chaos_pair(4096, cfg);
        let mut tx = SessionTx::new(a.tx, NodeClock::new());
        let mut rx = SessionRx::new(b.rx, NodeClock::new());
        let n = 100u64;
        for i in 0..n {
            tx.send(&hello(&format!("m{i}")), Nanos::new(i * 10)).unwrap();
        }
        ctl.flush().unwrap();
        for i in 0..n {
            let env = poll_msg(&mut rx, 10_000).expect("no frame may be lost");
            assert_eq!(env.seq, i, "delivery must be in-order and exactly-once");
        }
        assert!(rx.duplicates() + rx.reordered() > 0, "seed 3 must exercise the repair path");
        assert_eq!(rx.parked(), 0);
    }

    #[test]
    fn receiver_clock_dominates_sender_stamps() {
        // HLC law: after receiving, the receiver's clock is ≥ every
        // stamp it has seen.
        let (a, b) = duplex(16);
        let clock_tx = NodeClock::new();
        let clock_rx = NodeClock::new();
        let mut tx = SessionTx::new(a.tx, clock_tx.clone());
        let mut rx = SessionRx::new(b.rx, clock_rx.clone());
        let sent = tx.send(&hello("w"), Nanos::new(1_000_000)).unwrap();
        let env = poll_msg(&mut rx, 100).unwrap();
        assert_eq!(env.hlc, sent);
        assert!(clock_rx.last() >= sent, "receive merged the remote stamp");
    }

    #[test]
    fn partition_then_heal_loses_nothing() {
        let (a, b, ctl) = chaos_pair(4096, ChaosConfig::partition_only(1));
        let mut tx = SessionTx::new(a.tx, NodeClock::new());
        let mut rx = SessionRx::new(b.rx, NodeClock::new());
        tx.send(&hello("before"), Nanos::new(10)).unwrap();
        ctl.partition();
        for i in 0..10u64 {
            tx.send(&hello(&format!("during{i}")), Nanos::new(20 + i)).unwrap();
        }
        // Only the pre-partition frame arrives...
        assert_eq!(poll_msg(&mut rx, 100).unwrap().seq, 0);
        assert!(matches!(rx.poll(Nanos::ZERO).unwrap(), Polled::Idle));
        // ...until heal releases the backlog.
        ctl.heal().unwrap();
        for i in 1..=10u64 {
            assert_eq!(poll_msg(&mut rx, 10_000).unwrap().seq, i);
        }
    }
}
