//! Fault-injecting transport for distributed-detection tests: wraps
//! one direction of a [`duplex`](crate::transport::duplex)-style link
//! with deterministic partition, reordering, duplication and delayed
//! delivery.
//!
//! The fault model matches what the session layer is built for: frames
//! may be **delayed, reordered or duplicated, never lost or
//! corrupted** — the no-loss discipline of a reliable byte stream with
//! retransmission underneath it. A partition holds frames back (like an
//! unplugged cable in front of TCP's retransmit queue) and releases
//! them on heal; reordering stashes a frame and releases the stash
//! shuffled; duplication re-sends a frame verbatim. All randomness is
//! a seeded [`rand::rngs::StdRng`], so every schedule is reproducible
//! from its [`ChaosConfig`].
//!
//! Only the wrapped direction misbehaves (tests typically chaos the
//! worker→service event path and keep the reply path clean, isolating
//! what each layer must tolerate); wrap both directions with two
//! [`chaos_pair`] calls if needed.

use crate::transport::{ChannelRx, ChannelTx, Endpoint, FrameTx};
use crossbeam::channel::bounded;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Deterministic fault schedule for one chaotic direction.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the fault schedule (same seed, same faults).
    pub seed: u64,
    /// Per-mille probability a frame is stashed for later, reordered
    /// delivery (0 = off, 1000 = every frame).
    pub hold_per_mille: u32,
    /// Per-mille probability a delivered frame is sent twice.
    pub dup_per_mille: u32,
    /// Stash size at which held frames are force-released (shuffled),
    /// bounding how far behind a reordered frame can fall.
    pub reorder_window: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { seed: 0, hold_per_mille: 200, dup_per_mille: 100, reorder_window: 4 }
    }
}

impl ChaosConfig {
    /// A schedule that only partitions (no reorder/duplication) — the
    /// config for pure partition/heal tests.
    pub fn partition_only(seed: u64) -> Self {
        ChaosConfig { seed, hold_per_mille: 0, dup_per_mille: 0, reorder_window: 4 }
    }
}

#[derive(Debug, Default)]
struct ChaosShared {
    partitioned: AtomicBool,
    calm: AtomicBool,
    held: Mutex<Vec<Vec<u8>>>,
}

/// Operator handle for one chaotic direction: partition it, heal it,
/// flush anything still held.
#[derive(Debug, Clone)]
pub struct ChaosController {
    shared: Arc<ChaosShared>,
    out: ChannelTx,
}

impl ChaosController {
    /// Starts holding every sent frame (nothing is delivered until
    /// [`Self::heal`]).
    pub fn partition(&self) {
        self.shared.partitioned.store(true, Ordering::SeqCst);
    }

    /// Ends the partition and delivers everything held, in send order
    /// (the retransmit-after-reconnect shape).
    pub fn heal(&self) -> io::Result<()> {
        self.shared.partitioned.store(false, Ordering::SeqCst);
        self.flush()
    }

    /// Delivers every held frame (partition backlog and reorder stash)
    /// in send order. Call once traffic stops to guarantee nothing is
    /// still sitting in the harness.
    pub fn flush(&self) -> io::Result<()> {
        let drained: Vec<Vec<u8>> = {
            let mut held = self.shared.held.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *held)
        };
        let mut out = self.out.clone();
        for frame in drained {
            out.send_frame(&frame)?;
        }
        Ok(())
    }

    /// Ends the chaotic phase for good: releases everything held and
    /// delivers every subsequent frame cleanly (later
    /// [`Self::partition`] calls are ignored). Drive this before a
    /// phase that needs timely replies — e.g. chaos the event stream,
    /// then `calm()` before a checkpoint fan-out so its replies are
    /// not stuck in the reorder stash.
    pub fn calm(&self) -> io::Result<()> {
        self.shared.calm.store(true, Ordering::SeqCst);
        self.shared.partitioned.store(false, Ordering::SeqCst);
        self.flush()
    }

    /// Whether the direction is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned.load(Ordering::SeqCst)
    }

    /// Frames currently held (partition backlog + reorder stash).
    pub fn held_frames(&self) -> usize {
        self.shared.held.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// The chaotic sending half: applies the fault schedule frame by frame.
#[derive(Debug)]
pub struct ChaosTx {
    out: ChannelTx,
    shared: Arc<ChaosShared>,
    cfg: ChaosConfig,
    rng: StdRng,
}

impl FrameTx for ChaosTx {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.shared.calm.load(Ordering::SeqCst) {
            return self.out.send_frame(payload);
        }
        if self.shared.partitioned.load(Ordering::SeqCst) {
            self.shared.held.lock().unwrap_or_else(|e| e.into_inner()).push(payload.to_vec());
            return Ok(());
        }
        if self.cfg.hold_per_mille > 0 && self.rng.gen_range(0u32..1000) < self.cfg.hold_per_mille {
            let release = {
                let mut held = self.shared.held.lock().unwrap_or_else(|e| e.into_inner());
                held.push(payload.to_vec());
                if held.len() >= self.cfg.reorder_window.max(1) {
                    Some(std::mem::take(&mut *held))
                } else {
                    None
                }
            };
            if let Some(mut stash) = release {
                // Fisher–Yates off the seeded stream: the release order
                // is scrambled but reproducible.
                for i in (1..stash.len()).rev() {
                    let j = self.rng.gen_range(0usize..i + 1);
                    stash.swap(i, j);
                }
                for frame in stash {
                    self.out.send_frame(&frame)?;
                }
            }
            return Ok(());
        }
        self.out.send_frame(payload)?;
        if self.cfg.dup_per_mille > 0 && self.rng.gen_range(0u32..1000) < self.cfg.dup_per_mille {
            self.out.send_frame(payload)?;
        }
        Ok(())
    }
}

/// A connected endpoint pair whose **A→B direction** runs through the
/// fault harness (B→A is clean). Returns `(a, b, controller)`; give
/// `a` to the worker, `b` to the service, keep the controller to drive
/// partitions. `cap` bounds each direction's in-flight frames, as in
/// [`crate::transport::duplex`].
pub fn chaos_pair(cap: usize, cfg: ChaosConfig) -> (Endpoint, Endpoint, ChaosController) {
    let cap = cap.max(1);
    let (a_tx_raw, b_rx) = bounded::<Vec<u8>>(cap);
    let (b_tx, a_rx) = bounded::<Vec<u8>>(cap);
    let shared = Arc::new(ChaosShared::default());
    let chaotic = ChaosTx {
        out: ChannelTx(a_tx_raw.clone()),
        shared: Arc::clone(&shared),
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed),
    };
    let controller = ChaosController { shared, out: ChannelTx(a_tx_raw) };
    let a = Endpoint { tx: Box::new(chaotic), rx: Box::new(ChannelRx(a_rx)) };
    let b = Endpoint { tx: Box::new(ChannelTx(b_tx)), rx: Box::new(ChannelRx(b_rx)) };
    (a, b, controller)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{FrameRx, Recv};
    use std::collections::BTreeSet;

    fn drain(rx: &mut dyn FrameRx) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for _ in 0..2000 {
            match rx.recv_frame().unwrap() {
                Recv::Frame(p) => out.push(p),
                Recv::Idle => break,
                Recv::Closed => break,
            }
        }
        out
    }

    #[test]
    fn partition_holds_frames_and_heal_releases_them_in_order() {
        let (mut a, mut b, ctl) = chaos_pair(64, ChaosConfig::partition_only(7));
        ctl.partition();
        for i in 0..5u8 {
            a.tx.send_frame(&[i]).unwrap();
        }
        assert_eq!(drain(b.rx.as_mut()), Vec::<Vec<u8>>::new());
        assert_eq!(ctl.held_frames(), 5);
        ctl.heal().unwrap();
        assert_eq!(drain(b.rx.as_mut()), vec![vec![0], vec![1], vec![2], vec![3], vec![4]]);
        assert!(!ctl.is_partitioned());
    }

    #[test]
    fn chaos_reorders_and_duplicates_but_never_loses() {
        let cfg =
            ChaosConfig { seed: 42, hold_per_mille: 400, dup_per_mille: 300, reorder_window: 3 };
        let (mut a, mut b, ctl) = chaos_pair(4096, cfg);
        let sent: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i]).collect();
        for f in &sent {
            a.tx.send_frame(f).unwrap();
        }
        ctl.flush().unwrap();
        let got = drain(b.rx.as_mut());
        assert!(got.len() >= sent.len(), "duplication only adds: {} >= {}", got.len(), sent.len());
        let distinct: BTreeSet<_> = got.iter().cloned().collect();
        assert_eq!(distinct.len(), sent.len(), "no frame is ever lost");
        assert_ne!(got[..sent.len()], sent[..], "seed 42 must actually reorder");
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg =
            ChaosConfig { seed: 9, hold_per_mille: 300, dup_per_mille: 200, reorder_window: 2 };
        let mut runs = Vec::new();
        for _ in 0..2 {
            let (mut a, mut b, ctl) = chaos_pair(4096, cfg);
            for i in 0..50u8 {
                a.tx.send_frame(&[i]).unwrap();
            }
            ctl.flush().unwrap();
            runs.push(drain(b.rx.as_mut()));
        }
        assert_eq!(runs[0], runs[1]);
    }
}
