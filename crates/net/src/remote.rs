//! The worker side of distributed detection: a
//! [`DetectionBackend`] that streams everything to a remote
//! [`crate::service::DetectionService`] instead of checking locally.
//!
//! `RemoteBackend` implements the same trait the inline/sharded
//! backends do, so an embedding runtime (e.g. `rmon-rt`'s
//! `RuntimeBuilder::backend`) plugs it in unchanged: registrations,
//! event batches and checkpoint requests travel over a
//! [`crate::transport::Endpoint`]; the runtime's
//! [`SnapshotProvider`] registration works too — the backend answers
//! the service's checkpoint fan-out by running the
//! [`gather_snapshots`] seqlock dance against the local provider and
//! shipping `(snapshots, gates)` back, so Algorithm-1/2 comparisons
//! stay consistency-gated end to end.
//!
//! ## What stays local, what moves
//!
//! * **Local**: event batching (the [`ProducerHandle`] shape and its
//!   flush threshold), snapshot observation, the violation inbox
//!   (verdicts the service pushes back via `Verdicts` frames).
//! * **Remote**: all detection state — checking lists, order NFAs,
//!   watermarks, timers. Consequently
//!   [`DetectionBackend::call_would_violate`] answers `None` here: the
//!   synchronous ST-8 lookahead would cost a network round-trip on the
//!   caller's hot path, so remote deployments run prevention-free
//!   (detection still reports the violation; `rmon-rt`'s
//!   `OrderPolicy::Deny` simply never denies on a remote backend).
//!
//! Checkpoints are synchronous round-trips with a bounded wait:
//! [`DetectionBackend::checkpoint`] returns the service's verdicts, or
//! an empty report once [`RemoteConfig::checkpoint_timeout`] expires
//! (degraded, never stalled — the distributed mirror of a dead shard).

use crate::proto::{Msg, PROTO_VERSION};
use crate::session::{NodeClock, Polled, SessionRx, SessionTx};
use crate::transport::Endpoint;
use crossbeam::channel::{bounded, Sender};
use rmon_core::detect::{
    gather_snapshots, CheckpointScope, DetectionBackend, ProducerHandle, ServiceStats, ShardStats,
    SnapshotProvider,
};
use rmon_core::oplog::Record;
use rmon_core::{
    Event, FaultReport, MonitorId, MonitorSpec, MonitorState, Nanos, Pid, ProcName, RuleId,
    Violation,
};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for one worker's connection to the detection service.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Worker display name, sent in the `Hello` frame and used by the
    /// service in quarantine reports.
    pub name: String,
    /// Events a producer handle buffers before shipping one
    /// `Record::Events` frame.
    pub batch: usize,
    /// How long a synchronous checkpoint waits for the service's
    /// verdicts before degrading to an empty report.
    pub checkpoint_timeout: Duration,
}

impl RemoteConfig {
    /// Defaults: 64-event batches, 5 s checkpoint wait.
    pub fn named(name: impl Into<String>) -> Self {
        RemoteConfig { name: name.into(), batch: 64, checkpoint_timeout: Duration::from_secs(5) }
    }
}

#[derive(Debug, Default)]
struct RemoteShared {
    violations: Mutex<Vec<Violation>>,
    pending: Mutex<HashMap<u64, Sender<FaultReport>>>,
    provider: Mutex<Option<Arc<dyn SnapshotProvider>>>,
    monitors: Mutex<Vec<MonitorId>>,
    counters: Mutex<ShardStats>,
}

impl RemoteShared {
    fn fail_all_pending(&self) {
        let pending: Vec<Sender<FaultReport>> = {
            let mut map = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            map.drain().map(|(_, tx)| tx).collect()
        };
        for tx in pending {
            let _ = tx.send(FaultReport::default());
        }
    }
}

/// A [`DetectionBackend`] whose engine lives across a transport — see
/// the [module docs](self) for the division of labour.
#[derive(Debug)]
pub struct RemoteBackend {
    tx: Arc<Mutex<SessionTx>>,
    shared: Arc<RemoteShared>,
    open: Arc<AtomicBool>,
    reader: Mutex<Option<JoinHandle<()>>>,
    next_req: AtomicU64,
    clock: NodeClock,
    cfg: RemoteConfig,
}

impl RemoteBackend {
    /// Opens a session over `endpoint`: sends the `Hello` frame and
    /// spawns the reader thread that serves checkpoint fan-outs and
    /// collects pushed verdicts.
    pub fn connect(endpoint: Endpoint, cfg: RemoteConfig, now: Nanos) -> io::Result<Self> {
        let clock = NodeClock::new();
        let mut session_tx = SessionTx::new(endpoint.tx, clock.clone());
        session_tx.send(&Msg::Hello { proto: PROTO_VERSION, name: cfg.name.clone() }, now)?;
        let tx = Arc::new(Mutex::new(session_tx));
        let shared = Arc::new(RemoteShared::default());
        let open = Arc::new(AtomicBool::new(true));
        let reader = {
            let rx = SessionRx::new(endpoint.rx, clock.clone());
            let tx = Arc::clone(&tx);
            let shared = Arc::clone(&shared);
            let open = Arc::clone(&open);
            let clock = clock.clone();
            std::thread::Builder::new()
                .name(format!("rmon-net-{}", cfg.name))
                .spawn(move || reader_loop(rx, tx, shared, open, clock))
                .map_err(io::Error::other)?
        };
        Ok(RemoteBackend {
            tx,
            shared,
            open,
            reader: Mutex::new(Some(reader)),
            next_req: AtomicU64::new(0),
            clock,
            cfg,
        })
    }

    /// The worker's hybrid logical clock (ticked by every send, merged
    /// on every receive).
    pub fn clock(&self) -> &NodeClock {
        &self.clock
    }

    /// Whether the session is still up (false after [`Self::shutdown`]
    /// or a transport close).
    pub fn is_connected(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }

    fn send(&self, msg: &Msg, now: Nanos) -> io::Result<()> {
        let mut tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        tx.send(msg, now).map(|_| ())
    }

    /// One synchronous checkpoint round-trip; `monitors` are in this
    /// worker's id namespace.
    fn checkpoint_round_trip(
        &self,
        now: Nanos,
        monitors: Vec<MonitorId>,
        snapshots: Vec<(MonitorId, MonitorState)>,
        gates: Vec<(MonitorId, u64)>,
    ) -> FaultReport {
        if !self.open.load(Ordering::Acquire) {
            return FaultReport::default();
        }
        let id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        self.shared.pending.lock().unwrap_or_else(|e| e.into_inner()).insert(id, reply_tx);
        let req = Msg::CheckpointReq { id, now, monitors, snapshots, gates };
        if self.send(&req, now).is_err() {
            self.shared.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
            return FaultReport::default();
        }
        match reply_rx.recv_timeout(self.cfg.checkpoint_timeout) {
            Ok(report) => report,
            Err(_) => {
                // Degrade, never stall: forget the request and answer
                // empty. A late reply finds no pending entry and is
                // dropped by the reader.
                self.shared.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
                FaultReport::default()
            }
        }
    }

    fn local_monitors(&self) -> Vec<MonitorId> {
        self.shared.monitors.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

fn reader_loop(
    mut rx: SessionRx,
    tx: Arc<Mutex<SessionTx>>,
    shared: Arc<RemoteShared>,
    open: Arc<AtomicBool>,
    clock: NodeClock,
) {
    loop {
        let now = clock.last().physical;
        match rx.poll(now) {
            Ok(Polled::Msg(env)) => match env.msg {
                Msg::CheckpointReq { id, now, monitors, .. } => {
                    // Service-initiated fan-out: observe and answer.
                    let monitors = if monitors.is_empty() {
                        shared.monitors.lock().unwrap_or_else(|e| e.into_inner()).clone()
                    } else {
                        monitors
                    };
                    let provider =
                        shared.provider.lock().unwrap_or_else(|e| e.into_inner()).clone();
                    let (snapshots, gates) = gather_snapshots(provider.as_deref(), &monitors, now);
                    let mut snapshots: Vec<_> = snapshots.into_iter().collect();
                    snapshots.sort_by_key(|(m, _)| *m);
                    let mut gates: Vec<_> = gates.into_iter().collect();
                    gates.sort_by_key(|(m, _)| *m);
                    let resp = Msg::CheckpointResp {
                        id,
                        snapshots,
                        gates,
                        report: FaultReport::default(),
                    };
                    let mut tx = tx.lock().unwrap_or_else(|e| e.into_inner());
                    if tx.send(&resp, now).is_err() {
                        open.store(false, Ordering::Release);
                    }
                }
                Msg::CheckpointResp { id, report, .. } => {
                    let reply =
                        shared.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
                    if let Some(reply) = reply {
                        let _ = reply.send(report);
                    }
                }
                Msg::Verdicts(mut vs) => {
                    shared.violations.lock().unwrap_or_else(|e| e.into_inner()).append(&mut vs);
                }
                Msg::Shutdown => {
                    open.store(false, Ordering::Release);
                    break;
                }
                _ => {}
            },
            Ok(Polled::Idle) => {
                if !open.load(Ordering::Acquire) {
                    break;
                }
            }
            Ok(Polled::Closed) | Err(_) => {
                open.store(false, Ordering::Release);
                break;
            }
        }
    }
    // Whatever ended the session, no checkpoint may hang on it.
    shared.fail_all_pending();
}

impl DetectionBackend for RemoteBackend {
    fn register(
        &self,
        monitor: MonitorId,
        spec: Arc<MonitorSpec>,
        initial: &MonitorState,
        now: Nanos,
    ) {
        {
            let mut shared = self.shared.monitors.lock().unwrap_or_else(|e| e.into_inner());
            if !shared.contains(&monitor) {
                shared.push(monitor);
            }
        }
        self.shared.counters.lock().unwrap_or_else(|e| e.into_inner()).monitors += 1;
        let msg = Msg::Register { monitor, name: spec.name.clone(), now, initial: initial.clone() };
        let _ = self.send(&msg, now);
    }

    fn producer(&self) -> Box<dyn ProducerHandle> {
        Box::new(RemoteProducer {
            tx: Arc::clone(&self.tx),
            shared: Arc::clone(&self.shared),
            open: Arc::clone(&self.open),
            buf: Vec::new(),
            batch: self.cfg.batch.max(1),
        })
    }

    /// Always `None`: the ST-8 lookahead would be a network round-trip
    /// on the caller's hot path (see the [module docs](self)).
    fn call_would_violate(
        &self,
        _monitor: MonitorId,
        _pid: Pid,
        _proc_name: ProcName,
    ) -> Option<RuleId> {
        None
    }

    fn set_snapshot_provider(&self, provider: Arc<dyn SnapshotProvider>) {
        *self.shared.provider.lock().unwrap_or_else(|e| e.into_inner()) = Some(provider);
    }

    fn checkpoint(&self, scope: CheckpointScope, now: Nanos) -> FaultReport {
        let monitors = match scope {
            CheckpointScope::All | CheckpointScope::Shard(0) => self.local_monitors(),
            CheckpointScope::Shard(_) => return FaultReport::default(),
            CheckpointScope::Monitor(m) => vec![m],
        };
        let provider = self.shared.provider.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let (snapshots, gates) = gather_snapshots(provider.as_deref(), &monitors, now);
        let mut snapshots: Vec<_> = snapshots.into_iter().collect();
        snapshots.sort_by_key(|(m, _)| *m);
        let mut gates: Vec<_> = gates.into_iter().collect();
        gates.sort_by_key(|(m, _)| *m);
        self.checkpoint_round_trip(now, monitors, snapshots, gates)
    }

    fn checkpoint_window(
        &self,
        now: Nanos,
        events: &[Event],
        snapshots: &HashMap<MonitorId, MonitorState>,
    ) -> FaultReport {
        // The explicitly drained window travels as one event frame
        // ahead of the request (same-session FIFO: it arrives first).
        if !events.is_empty() {
            let _ = self.send(&Msg::Record(Record::Events(events.to_vec())), now);
        }
        let mut snaps: Vec<_> = snapshots.clone().into_iter().collect();
        snaps.sort_by_key(|(m, _)| *m);
        self.checkpoint_round_trip(now, self.local_monitors(), snaps, Vec::new())
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: vec![*self.shared.counters.lock().unwrap_or_else(|e| e.into_inner())],
        }
    }

    fn drain_violations(&self) -> Vec<Violation> {
        std::mem::take(&mut self.shared.violations.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn shutdown(&self) {
        if self.open.swap(false, Ordering::AcqRel) {
            let now = self.clock.last().physical;
            let _ = self.send(&Msg::Shutdown, now);
        }
        self.shared.fail_all_pending();
        if let Some(reader) = self.reader.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = reader.join();
        }
    }

    fn label(&self) -> &'static str {
        "remote"
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The remote backend's buffered handle: ships one `Record::Events`
/// frame per flush, exactly the bytes a single-process runtime would
/// journal for the same batch.
#[derive(Debug)]
struct RemoteProducer {
    tx: Arc<Mutex<SessionTx>>,
    shared: Arc<RemoteShared>,
    open: Arc<AtomicBool>,
    buf: Vec<Event>,
    batch: usize,
}

impl ProducerHandle for RemoteProducer {
    fn observe(&mut self, event: Event) {
        if !self.open.load(Ordering::Acquire) {
            return;
        }
        self.buf.push(event);
        if self.buf.len() >= self.batch {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() || !self.open.load(Ordering::Acquire) {
            return;
        }
        let now = self.buf.last().map(|e| e.time).unwrap_or(Nanos::ZERO);
        let events = std::mem::take(&mut self.buf);
        let count = events.len() as u64;
        let sent = {
            let mut tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
            tx.send(&Msg::Record(Record::Events(events)), now)
        };
        match sent {
            Ok(_) => {
                let mut counters = self.shared.counters.lock().unwrap_or_else(|e| e.into_inner());
                counters.batches += 1;
                counters.events_observed += count;
            }
            Err(_) => self.open.store(false, Ordering::Release),
        }
    }

    fn pending(&self) -> usize {
        self.buf.len()
    }

    fn is_closed(&self) -> bool {
        !self.open.load(Ordering::Acquire)
    }
}

impl Drop for RemoteProducer {
    fn drop(&mut self) {
        if self.open.load(Ordering::Acquire) {
            self.flush();
        }
    }
}
