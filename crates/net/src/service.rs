//! The service side of distributed detection: one logical
//! monitor-fleet checker that N worker sessions stream into.
//!
//! [`DetectionService`] owns an ordinary [`DetectionBackend`]
//! (inline or sharded — the service is backend-agnostic) and a thread
//! per attached worker session. Each session thread:
//!
//! * allocates **global monitor ids** for the worker's `Register`
//!   frames (two workers may both call their first monitor id 0; the
//!   service renames them into one fleet namespace and keeps the
//!   remote↔global maps);
//! * feeds remapped event batches into its own
//!   [`ProducerHandle`](rmon_core::detect::ProducerHandle) — sound
//!   because real-time checking state is per-`Pid` and the session
//!   layer already delivers each worker's frames exactly once in
//!   order;
//! * answers worker-initiated checkpoints: the request carries the
//!   worker's locally gathered `(snapshots, gates)` (see
//!   [`crate::proto`]), so the service never has to call back into the
//!   worker mid-request;
//! * pushes real-time verdicts back to whichever worker owns the
//!   violating monitor, as `Verdicts` frames.
//!
//! Cross-worker order comes from the hybrid logical clock: every
//! session folds arriving stamps into the service's [`NodeClock`], so
//! checkpoint `now` values chosen from [`DetectionService::clock`]
//! dominate everything already received.
//!
//! ## Fleet checkpoints and quarantine
//!
//! [`DetectionService::checkpoint_fleet`] is the paper's Algorithm-1/2
//! consistency check lifted to the fleet: it fans `CheckpointReq`
//! frames to every live session, waits under **one shared deadline**
//! ([`ServiceConfig::checkpoint_timeout`]), installs the returned
//! snapshots into the service-side [`SnapshotProvider`] cache, and
//! runs the backend checkpoint per healthy monitor. A worker that
//! misses the deadline is **quarantined**: its session is marked dead
//! and its monitors are reported in
//! [`FleetReport::quarantined`] instead of stalling the sweep — the
//! distributed analogue of the sharded backend's degraded-shard rule.

use crate::proto::{Msg, PROTO_VERSION};
use crate::session::{NodeClock, Polled, SessionRx, SessionTx};
use crate::transport::Endpoint;
use crossbeam::channel::{bounded, Sender};
use rmon_core::detect::{CheckpointScope, DetectionBackend, SnapshotProvider};
use rmon_core::oplog::Record;
use rmon_core::{
    Event, EventSink, FaultReport, MonitorId, MonitorSpec, MonitorState, Nanos, Violation,
    ViolationSink,
};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maps a worker-announced monitor name to its spec, the service-side
/// analogue of `rmon_storage`'s replay resolver.
pub type NameResolver = dyn Fn(&str) -> Option<Arc<MonitorSpec>> + Send + Sync;

/// Service tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shared deadline for one [`DetectionService::checkpoint_fleet`]
    /// fan-out; a worker that has not answered by then is quarantined.
    pub checkpoint_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { checkpoint_timeout: Duration::from_secs(2) }
    }
}

/// What one fleet checkpoint sweep produced.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Merged verdicts over every healthy monitor, in global ids.
    pub report: FaultReport,
    /// Global ids of monitors whose worker missed the deadline and was
    /// quarantined (their state was *not* checked this sweep).
    pub quarantined: Vec<MonitorId>,
}

/// One attached session as the operator sees it.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// Worker name from its `Hello` frame (empty until it arrives).
    pub name: String,
    /// False once the session closed, errored or was quarantined.
    pub alive: bool,
    /// Events ingested from this worker so far.
    pub events: u64,
    /// Monitors this worker registered.
    pub monitors: usize,
}

type SnapshotReply = (Vec<(MonitorId, MonitorState)>, Vec<(MonitorId, u64)>);

/// Per-session shared state (the session thread and the service API
/// both touch it).
struct SessionState {
    name: Mutex<String>,
    alive: AtomicBool,
    tx: Mutex<SessionTx>,
    /// remote id → global id.
    to_global: Mutex<HashMap<MonitorId, MonitorId>>,
    /// global id → remote id.
    from_global: Mutex<HashMap<MonitorId, MonitorId>>,
    events: AtomicU64,
    unresolved: Mutex<Vec<String>>,
    pending: Mutex<HashMap<u64, Sender<SnapshotReply>>>,
    next_req: AtomicU64,
}

impl fmt::Debug for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionState")
            .field("name", &*self.name.lock().unwrap_or_else(|e| e.into_inner()))
            .field("alive", &self.alive.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl SessionState {
    fn new(tx: SessionTx) -> Self {
        SessionState {
            name: Mutex::new(String::new()),
            alive: AtomicBool::new(true),
            tx: Mutex::new(tx),
            to_global: Mutex::new(HashMap::new()),
            from_global: Mutex::new(HashMap::new()),
            events: AtomicU64::new(0),
            unresolved: Mutex::new(Vec::new()),
            pending: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(0),
        }
    }

    fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
        let pending: Vec<Sender<SnapshotReply>> = {
            let mut map = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            map.drain().map(|(_, tx)| tx).collect()
        };
        drop(pending); // dropping the senders wakes blocked receivers
    }

    fn send(&self, msg: &Msg, now: Nanos) -> io::Result<()> {
        let mut tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        tx.send(msg, now).map(|_| ())
    }

    fn globals(&self) -> Vec<MonitorId> {
        let mut out: Vec<MonitorId> =
            self.from_global.lock().unwrap_or_else(|e| e.into_inner()).keys().copied().collect();
        out.sort();
        out
    }

    fn to_remote(&self, global: MonitorId) -> Option<MonitorId> {
        self.from_global.lock().unwrap_or_else(|e| e.into_inner()).get(&global).copied()
    }
}

/// The [`SnapshotProvider`] the service registers on its backend: a
/// cache of the latest fleet snapshots, populated from whichever
/// checkpoint direction supplied them (worker-attached or fan-out
/// replies). `events_recorded` serves the cached gate so the backend's
/// consistency gating works across the wire exactly as in-process.
#[derive(Debug, Default)]
struct FleetCache {
    inner: Mutex<HashMap<MonitorId, (MonitorState, Option<u64>)>>,
}

impl FleetCache {
    fn publish(&self, monitor: MonitorId, state: MonitorState, gate: Option<u64>) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).insert(monitor, (state, gate));
    }

    fn retract(&self, monitors: &[MonitorId]) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for m in monitors {
            inner.remove(m);
        }
    }
}

impl SnapshotProvider for FleetCache {
    fn snapshot(&self, monitor: MonitorId, _now: Nanos) -> Option<MonitorState> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&monitor)
            .map(|(state, _)| state.clone())
    }

    fn snapshot_all(&self, _now: Nanos) -> HashMap<MonitorId, MonitorState> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(m, (state, _))| (*m, state.clone()))
            .collect()
    }

    fn events_recorded(&self, monitor: MonitorId) -> Option<u64> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&monitor)
            .and_then(|(_, gate)| *gate)
    }
}

/// The service-side durable tee (see [`DetectionService::journal`]):
/// worker event frames append as `Events` records the moment they are
/// remapped to global ids, verdicts stage in `pending`, and every fleet
/// checkpoint commits the window with the `Realtime → Checkpoint`
/// sequence the `rmon-storage` replayer's commit protocol expects.
#[derive(Debug)]
struct JournalTee {
    events: Arc<dyn EventSink>,
    verdicts: Arc<dyn ViolationSink>,
    /// Verdicts produced since the last committing fleet checkpoint
    /// (real-time routes and worker-initiated checkpoint reports), in
    /// global ids.
    pending: Vec<Violation>,
}

#[derive(Debug)]
struct ServiceShared {
    clock: NodeClock,
    cache: Arc<FleetCache>,
    registry: Mutex<Vec<Arc<SessionState>>>,
    next_global: AtomicU32,
    /// Every verdict the service has produced, in global ids (the
    /// durable ground truth for equivalence checks and operators).
    verdicts: Mutex<Vec<Violation>>,
    /// Optional durable tee; `None` until
    /// [`DetectionService::journal`] installs one.
    journal: Mutex<Option<JournalTee>>,
    /// Journal appends that failed (disk errors). Detection never
    /// blocks or panics on a failing journal; operators watch
    /// [`DetectionService::journal_errors`].
    journal_errors: AtomicU64,
    /// Every registration the fleet has seen, post-renaming: the
    /// worker-announced name and the spec it resolved to (`None` for
    /// unresolved names). Input to [`DetectionService::lint_fleet`].
    registered: Mutex<Vec<(String, Option<Arc<MonitorSpec>>)>>,
    shutdown: AtomicBool,
}

impl ServiceShared {
    /// Folds an append result into the error counter — the journal is
    /// an observer, never a gate on detection.
    fn journal_try(&self, result: io::Result<()>) {
        if result.is_err() {
            self.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Journals one monitor registration (global id + declared name).
    fn journal_register(&self, monitor: MonitorId, name: &str, now: Nanos) {
        let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tee) = journal.as_ref() {
            self.journal_try(tee.events.append_register(monitor, name, now));
        }
    }

    /// Journals one remapped worker event frame.
    fn journal_events(&self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tee) = journal.as_ref() {
            self.journal_try(tee.events.append_events(events));
        }
    }

    /// Stages verdicts for the next committing fleet checkpoint.
    fn journal_pending(&self, verdicts: &[Violation]) {
        if verdicts.is_empty() {
            return;
        }
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tee) = journal.as_mut() {
            tee.pending.extend_from_slice(verdicts);
        }
    }

    /// Commits the window at a fleet checkpoint: staged verdicts as a
    /// `Realtime` record, then the `Checkpoint` marker with the
    /// snapshots this sweep compared against, then a sync.
    fn journal_commit(
        &self,
        now: Nanos,
        snapshots: &HashMap<MonitorId, MonitorState>,
        report: &FaultReport,
    ) {
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tee) = journal.as_mut() {
            let pending = std::mem::take(&mut tee.pending);
            if !pending.is_empty() {
                self.journal_try(tee.verdicts.append_realtime(&pending));
            }
            self.journal_try(tee.verdicts.append_checkpoint(now, snapshots, report));
            self.journal_try(tee.events.sync());
        }
    }
}

/// One logical detection service for a fleet of worker processes — see
/// the [module docs](self).
pub struct DetectionService {
    backend: Arc<dyn DetectionBackend>,
    resolve: Arc<NameResolver>,
    cfg: ServiceConfig,
    shared: Arc<ServiceShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for DetectionService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetectionService")
            .field("backend", &self.backend.label())
            .field(
                "sessions",
                &self.shared.registry.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish_non_exhaustive()
    }
}

impl DetectionService {
    /// Wraps `backend` as the fleet's checker. `resolve` maps
    /// worker-announced monitor names to specs (workers ship names, not
    /// spec bodies). Installs the fleet snapshot cache as the backend's
    /// [`SnapshotProvider`].
    pub fn new(
        backend: Arc<dyn DetectionBackend>,
        resolve: Arc<NameResolver>,
        cfg: ServiceConfig,
    ) -> Self {
        let cache = Arc::new(FleetCache::default());
        backend.set_snapshot_provider(Arc::clone(&cache) as Arc<dyn SnapshotProvider>);
        DetectionService {
            backend,
            resolve,
            cfg,
            shared: Arc::new(ServiceShared {
                clock: NodeClock::new(),
                cache,
                registry: Mutex::new(Vec::new()),
                next_global: AtomicU32::new(0),
                verdicts: Mutex::new(Vec::new()),
                journal: Mutex::new(None),
                journal_errors: AtomicU64::new(0),
                registered: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
            }),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Accepts one worker session over `endpoint` and spawns its
    /// session thread. Returns the session's index (stable for
    /// [`Self::sessions`]).
    pub fn attach(&self, endpoint: Endpoint) -> usize {
        let tx = SessionTx::new(endpoint.tx, self.shared.clock.clone());
        let session = Arc::new(SessionState::new(tx));
        let index = {
            let mut registry = self.shared.registry.lock().unwrap_or_else(|e| e.into_inner());
            registry.push(Arc::clone(&session));
            registry.len() - 1
        };
        let rx = SessionRx::new(endpoint.rx, self.shared.clock.clone());
        let shared = Arc::clone(&self.shared);
        let backend = Arc::clone(&self.backend);
        let resolve = Arc::clone(&self.resolve);
        let handle = std::thread::Builder::new()
            .name(format!("rmon-net-session-{index}"))
            .spawn(move || session_loop(rx, session, shared, backend, resolve))
            .expect("spawn session thread");
        self.threads.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
        index
    }

    /// Installs a durable journal tee (typically an `rmon-storage`
    /// `DurableSink`): incoming worker `Events` frames are appended —
    /// remapped to **global ids** — as they arrive, registrations as
    /// `Register` records, and every [`Self::checkpoint_fleet`] sweep
    /// commits the window with the replayer's `Realtime → Checkpoint`
    /// sequence. An `Epoch` record is appended now, so install the tee
    /// **before attaching workers** — the replayer needs the epoch
    /// ahead of every registration.
    ///
    /// Replay equivalence holds for fleet-barrier-paced operation over
    /// event-deterministic verdicts (the same guarantee the
    /// single-process journal gives): a window's events are all
    /// journaled before the barrier that commits their verdicts, so a
    /// fresh detector driven over the log reproduces the recorded
    /// verdict sequence. Frames still in flight *during* a commit land
    /// in the next window; end a run with a final
    /// [`Self::checkpoint_fleet`] so nothing is left staged.
    pub fn journal<S: EventSink + ViolationSink + 'static>(&self, sink: Arc<S>) {
        let now = self.shared.clock.last().physical;
        self.shared.journal_try(sink.append_epoch(now));
        let tee = JournalTee {
            events: Arc::clone(&sink) as Arc<dyn EventSink>,
            verdicts: sink as Arc<dyn ViolationSink>,
            pending: Vec::new(),
        };
        *self.shared.journal.lock().unwrap_or_else(|e| e.into_inner()) = Some(tee);
    }

    /// Lints the fleet as registered so far: full static analysis
    /// ([`rmon_core::spec::analyze`](rmon_core::analyze)) of every
    /// distinct resolved declaration, plus the cross-monitor `RML04x`
    /// checks over the post-renaming namespace — name collisions
    /// (`RML040`), capacity drift between paired coordinator specs
    /// (`RML041`), names the resolver could not resolve (`RML042`,
    /// those monitors are not being checked), and duplicate
    /// registrations of one name (`RML043`).
    ///
    /// Cheap and read-only: computed on demand from the registration
    /// log, so operators can poll it while the fleet runs.
    pub fn lint_fleet(&self) -> rmon_core::LintReport {
        let entries = self.shared.registered.lock().unwrap_or_else(|e| e.into_inner()).clone();
        rmon_core::analyze_all(entries)
    }

    /// Journal appends that have failed so far (disk errors on the
    /// installed tee). A nonzero counter means the durable log is
    /// missing records and replay from it is incomplete.
    pub fn journal_errors(&self) -> u64 {
        self.shared.journal_errors.load(Ordering::Relaxed)
    }

    /// The service's hybrid logical clock; `last().physical` is a
    /// checkpoint `now` that dominates every event already received.
    pub fn clock(&self) -> &NodeClock {
        &self.shared.clock
    }

    /// The backend doing the actual checking.
    pub fn backend(&self) -> &Arc<dyn DetectionBackend> {
        &self.backend
    }

    /// Operator view of every attached session, in attach order.
    pub fn sessions(&self) -> Vec<SessionSummary> {
        self.shared
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|s| SessionSummary {
                name: s.name.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                alive: s.alive.load(Ordering::Acquire),
                events: s.events.load(Ordering::Acquire),
                monitors: s.from_global.lock().unwrap_or_else(|e| e.into_inner()).len(),
            })
            .collect()
    }

    /// Which worker session (by name) and remote id a global monitor id
    /// belongs to.
    pub fn describe(&self, global: MonitorId) -> Option<(String, MonitorId)> {
        let registry = self.shared.registry.lock().unwrap_or_else(|e| e.into_inner());
        for session in registry.iter() {
            if let Some(remote) = session.to_remote(global) {
                let name = session.name.lock().unwrap_or_else(|e| e.into_inner()).clone();
                return Some((name, remote));
            }
        }
        None
    }

    /// Monitor names workers announced that `resolve` could not map to
    /// a spec (those monitors are not checked).
    pub fn unresolved(&self) -> Vec<String> {
        let registry = self.shared.registry.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for session in registry.iter() {
            out.extend(session.unresolved.lock().unwrap_or_else(|e| e.into_inner()).clone());
        }
        out
    }

    /// Every verdict produced so far (real-time and checkpoint), in
    /// global ids — the service-side ground truth.
    pub fn verdict_log(&self) -> Vec<Violation> {
        self.shared.verdicts.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// One Algorithm-1/2 sweep over the whole fleet: snapshot fan-out
    /// under a shared deadline, quarantine of non-answering workers,
    /// backend checkpoint over every healthy monitor. See the
    /// [module docs](self).
    pub fn checkpoint_fleet(&self, now: Nanos) -> FleetReport {
        let sessions: Vec<Arc<SessionState>> = self
            .shared
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|s| s.alive.load(Ordering::Acquire))
            .cloned()
            .collect();

        // Fan out: one request per live session, reply channels kept.
        let mut waiting = Vec::new();
        for session in sessions {
            let monitors: Vec<MonitorId> = {
                let map = session.to_global.lock().unwrap_or_else(|e| e.into_inner());
                let mut remote: Vec<MonitorId> = map.keys().copied().collect();
                remote.sort();
                remote
            };
            let id = session.next_req.fetch_add(1, Ordering::Relaxed);
            let (reply_tx, reply_rx) = bounded(1);
            session.pending.lock().unwrap_or_else(|e| e.into_inner()).insert(id, reply_tx);
            let req =
                Msg::CheckpointReq { id, now, monitors, snapshots: Vec::new(), gates: Vec::new() };
            if session.send(&req, now).is_err() {
                session.mark_dead();
                continue;
            }
            waiting.push((session, id, reply_rx));
        }

        // Collect under one shared deadline; a missed deadline
        // quarantines the worker rather than stalling the sweep.
        let deadline = Instant::now() + self.cfg.checkpoint_timeout;
        let mut quarantined = Vec::new();
        let mut published = Vec::new();
        let mut snap_map: HashMap<MonitorId, MonitorState> = HashMap::new();
        for (session, id, reply_rx) in waiting {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match reply_rx.recv_timeout(remaining) {
                Ok((snapshots, gates)) => {
                    let gates: HashMap<MonitorId, u64> = gates.into_iter().collect();
                    let to_global = session.to_global.lock().unwrap_or_else(|e| e.into_inner());
                    for (remote, state) in snapshots {
                        if let Some(&global) = to_global.get(&remote) {
                            snap_map.insert(global, state.clone());
                            self.shared.cache.publish(global, state, gates.get(&remote).copied());
                            published.push(global);
                        }
                    }
                }
                Err(_) => {
                    session.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
                    session.mark_dead();
                    quarantined.extend(session.globals());
                }
            }
        }

        // Check every monitor still owned by a live worker.
        let healthy: Vec<MonitorId> = {
            let registry = self.shared.registry.lock().unwrap_or_else(|e| e.into_inner());
            let mut out = Vec::new();
            for session in registry.iter() {
                if session.alive.load(Ordering::Acquire) {
                    out.extend(session.globals());
                }
            }
            out.sort();
            out
        };
        let report = FaultReport::merged(
            healthy.iter().map(|&m| self.backend.checkpoint(CheckpointScope::Monitor(m), now)),
        );
        self.shared.cache.retract(&published);

        self.shared.verdicts.lock().unwrap_or_else(|e| e.into_inner()).extend(
            report.violations.iter().chain(report.predicted.iter().map(|p| &p.violation)).cloned(),
        );
        push_verdicts(
            &self.shared,
            report.violations.iter().chain(report.predicted.iter().map(|p| &p.violation)),
            now,
        );
        route_realtime(&self.shared, self.backend.as_ref());
        // Commit after the drain above, so real-time verdicts of
        // already-journaled events land in this window, not the next.
        self.shared.journal_commit(now, &snap_map, &report);

        quarantined.sort();
        FleetReport { report, quarantined }
    }

    /// Stops every session thread (best-effort `Shutdown` frame to each
    /// live worker first) and shuts the backend down.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        let now = self.shared.clock.last().physical;
        {
            let registry = self.shared.registry.lock().unwrap_or_else(|e| e.into_inner());
            for session in registry.iter() {
                if session.alive.load(Ordering::Acquire) {
                    let _ = session.send(&Msg::Shutdown, now);
                }
                session.mark_dead();
            }
        }
        let threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.threads.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in threads {
            let _ = handle.join();
        }
        self.backend.shutdown();
    }
}

impl Drop for DetectionService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drains the backend's real-time verdicts, logs them, and pushes each
/// back to the worker session that owns the violating monitor
/// (translated into that worker's id namespace).
fn route_realtime(shared: &ServiceShared, backend: &dyn DetectionBackend) {
    let verdicts = backend.drain_violations();
    if verdicts.is_empty() {
        return;
    }
    shared.verdicts.lock().unwrap_or_else(|e| e.into_inner()).extend(verdicts.iter().cloned());
    shared.journal_pending(&verdicts);
    let now = shared.clock.last().physical;
    push_verdicts(shared, verdicts.iter(), now);
}

/// Pushes verdicts (given in global ids) to their owning sessions.
fn push_verdicts<'a>(
    shared: &ServiceShared,
    verdicts: impl Iterator<Item = &'a Violation>,
    now: Nanos,
) {
    let registry: Vec<Arc<SessionState>> = {
        let lock = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
        lock.clone()
    };
    let mut by_session: HashMap<usize, Vec<Violation>> = HashMap::new();
    for v in verdicts {
        for (i, session) in registry.iter().enumerate() {
            if let Some(remote) = session.to_remote(v.monitor) {
                let mut v = v.clone();
                v.monitor = remote;
                by_session.entry(i).or_default().push(v);
                break;
            }
        }
    }
    for (i, batch) in by_session {
        let session = &registry[i];
        if session.alive.load(Ordering::Acquire)
            && session.send(&Msg::Verdicts(batch), now).is_err()
        {
            session.mark_dead();
        }
    }
}

fn session_loop(
    mut rx: SessionRx,
    session: Arc<SessionState>,
    shared: Arc<ServiceShared>,
    backend: Arc<dyn DetectionBackend>,
    resolve: Arc<NameResolver>,
) {
    // Each session gets its own producer handle: per-worker events stay
    // in worker order (exactly-once from the session layer), and
    // real-time state is per-`Pid`, so cross-session interleaving at
    // the backend is harmless.
    let mut producer = backend.producer();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let now = shared.clock.last().physical;
        match rx.poll(now) {
            Ok(Polled::Msg(env)) => match env.msg {
                Msg::Hello { proto, name } => {
                    if proto != PROTO_VERSION {
                        session.mark_dead();
                        break;
                    }
                    *session.name.lock().unwrap_or_else(|e| e.into_inner()) = name;
                }
                Msg::Register { monitor, name, now, initial } => {
                    let global = MonitorId::new(shared.next_global.fetch_add(1, Ordering::Relaxed));
                    session
                        .to_global
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(monitor, global);
                    session
                        .from_global
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(global, monitor);
                    let spec = resolve(&name);
                    shared
                        .registered
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((name.clone(), spec.clone()));
                    match spec {
                        Some(spec) => {
                            backend.register(global, spec, &initial, now);
                            // Journal in the global namespace, like the
                            // event frames — the replayer then resolves
                            // and checks exactly what the service did.
                            shared.journal_register(global, &name, now);
                        }
                        None => {
                            session.unresolved.lock().unwrap_or_else(|e| e.into_inner()).push(name)
                        }
                    }
                }
                Msg::Record(Record::Events(events)) => {
                    let remapped: Vec<Event> = {
                        let to_global = session.to_global.lock().unwrap_or_else(|e| e.into_inner());
                        events
                            .into_iter()
                            .filter_map(|mut event| {
                                // Unregistered monitor: drop.
                                let &global = to_global.get(&event.monitor)?;
                                event.monitor = global;
                                Some(event)
                            })
                            .collect()
                    };
                    // Tee the frame to the journal before ingestion, so
                    // every verdict's cause precedes it in the log.
                    shared.journal_events(&remapped);
                    for event in &remapped {
                        producer.observe(*event);
                    }
                    producer.flush();
                    session.events.fetch_add(remapped.len() as u64, Ordering::Release);
                    route_realtime(&shared, backend.as_ref());
                }
                Msg::Record(_) => {}
                Msg::CheckpointReq { id, now, monitors, snapshots, gates } => {
                    // Worker-initiated: the request carries the
                    // worker's own snapshots, so no call-back needed.
                    let report = worker_checkpoint(
                        &shared,
                        backend.as_ref(),
                        &session,
                        now,
                        monitors,
                        snapshots,
                        gates,
                    );
                    let resp = Msg::CheckpointResp {
                        id,
                        snapshots: Vec::new(),
                        gates: Vec::new(),
                        report,
                    };
                    if session.send(&resp, now).is_err() {
                        session.mark_dead();
                        break;
                    }
                }
                Msg::CheckpointResp { id, snapshots, gates, .. } => {
                    let reply =
                        session.pending.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
                    if let Some(reply) = reply {
                        let _ = reply.send((snapshots, gates));
                    }
                }
                Msg::Verdicts(_) => {}
                Msg::Shutdown => {
                    producer.flush();
                    route_realtime(&shared, backend.as_ref());
                    session.mark_dead();
                    break;
                }
            },
            Ok(Polled::Idle) => {
                if !session.alive.load(Ordering::Acquire) {
                    break;
                }
            }
            Ok(Polled::Closed) | Err(_) => {
                producer.flush();
                route_realtime(&shared, backend.as_ref());
                session.mark_dead();
                break;
            }
        }
    }
    session.mark_dead();
}

/// Serves one worker-initiated checkpoint: installs the attached
/// snapshots under global ids, runs the backend checkpoint per
/// requested monitor, and returns the report translated back into the
/// worker's id namespace.
fn worker_checkpoint(
    shared: &ServiceShared,
    backend: &dyn DetectionBackend,
    session: &SessionState,
    now: Nanos,
    monitors: Vec<MonitorId>,
    snapshots: Vec<(MonitorId, MonitorState)>,
    gates: Vec<(MonitorId, u64)>,
) -> FaultReport {
    let (globals, published) = {
        let to_global = session.to_global.lock().unwrap_or_else(|e| e.into_inner());
        let requested: Vec<MonitorId> = if monitors.is_empty() {
            let mut all: Vec<MonitorId> = to_global.values().copied().collect();
            all.sort();
            all
        } else {
            monitors.iter().filter_map(|m| to_global.get(m).copied()).collect()
        };
        let gates: HashMap<MonitorId, u64> = gates.into_iter().collect();
        let mut published = Vec::new();
        for (remote, state) in snapshots {
            if let Some(&global) = to_global.get(&remote) {
                shared.cache.publish(global, state, gates.get(&remote).copied());
                published.push(global);
            }
        }
        (requested, published)
    };

    // Per-monitor scope keeps the sweep inside this worker's slice of
    // the fleet (CheckpointScope::All would drag other workers'
    // monitors into a request they never made).
    let report = FaultReport::merged(
        globals.iter().map(|&m| backend.checkpoint(CheckpointScope::Monitor(m), now)),
    );
    shared.cache.retract(&published);

    shared.verdicts.lock().unwrap_or_else(|e| e.into_inner()).extend(
        report.violations.iter().chain(report.predicted.iter().map(|p| &p.violation)).cloned(),
    );
    // Stage for the next committing fleet barrier (violations only:
    // the replayer recomputes violations, never predictions).
    shared.journal_pending(&report.violations);

    // Translate back into the worker's namespace.
    let mut translated = report;
    let from_global = session.from_global.lock().unwrap_or_else(|e| e.into_inner());
    for v in translated
        .violations
        .iter_mut()
        .chain(translated.predicted.iter_mut().map(|p| &mut p.violation))
    {
        if let Some(&remote) = from_global.get(&v.monitor) {
            v.monitor = remote;
        }
    }
    translated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::{RemoteBackend, RemoteConfig};
    use crate::transport::duplex;
    use rmon_core::detect::{DetectionBackend, InlineBackend};
    use rmon_core::{DetectorConfig, Event, Pid};
    use std::time::Instant;

    fn resolver() -> Arc<NameResolver> {
        Arc::new(|name: &str| {
            (name == "res").then(|| Arc::new(MonitorSpec::allocator("res", 1).spec))
        })
    }

    fn inline_service(timeout: Duration) -> DetectionService {
        DetectionService::new(
            Arc::new(InlineBackend::new(DetectorConfig::without_timeouts())),
            resolver(),
            ServiceConfig { checkpoint_timeout: timeout },
        )
    }

    fn wait_until(mut pred: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Pid 2 releasing a never-requested unit: a deterministic FD-1
    /// real-time violation on the allocator spec.
    fn faulty_release(monitor: MonitorId, seq: u64) -> Event {
        let al = MonitorSpec::allocator("res", 1);
        Event::enter(seq, Nanos::new(seq * 10), monitor, Pid::new(2), al.release, false)
    }

    #[test]
    fn worker_events_reach_the_service_and_verdicts_come_back() {
        let service = inline_service(Duration::from_secs(2));
        let (worker_end, service_end) = duplex(1024);
        service.attach(service_end);
        let worker =
            RemoteBackend::connect(worker_end, RemoteConfig::named("w0"), Nanos::ZERO).unwrap();

        let m = MonitorId::new(0);
        let spec = Arc::new(MonitorSpec::allocator("res", 1).spec);
        worker.register(m, Arc::clone(&spec), &spec.empty_state(), Nanos::ZERO);
        let mut producer = worker.producer();
        producer.observe(faulty_release(m, 1));
        producer.flush();

        wait_until(|| !service.verdict_log().is_empty(), "service verdict");
        let logged = service.verdict_log();
        for v in &logged {
            assert_eq!(service.describe(v.monitor), Some(("w0".into(), m)));
        }

        // The verdict is pushed back to the owning worker, translated
        // into its own id namespace.
        wait_until(|| !worker.is_connected() || worker.stats().total_events() > 0, "ingest");
        let mut got = Vec::new();
        wait_until(
            || {
                got.extend(worker.drain_violations());
                !got.is_empty()
            },
            "verdict push-back",
        );
        assert_eq!(got[0].monitor, m);
        worker.shutdown();
        service.shutdown();
    }

    #[test]
    fn two_workers_get_disjoint_global_ids_and_their_own_verdicts() {
        let service = inline_service(Duration::from_secs(2));
        let mut workers = Vec::new();
        for name in ["w0", "w1"] {
            let (worker_end, service_end) = duplex(1024);
            service.attach(service_end);
            let worker =
                RemoteBackend::connect(worker_end, RemoteConfig::named(name), Nanos::ZERO).unwrap();
            // Both workers call their monitor id 0 — the service must
            // rename them apart.
            let spec = Arc::new(MonitorSpec::allocator("res", 1).spec);
            worker.register(MonitorId::new(0), Arc::clone(&spec), &spec.empty_state(), Nanos::ZERO);
            workers.push(worker);
        }
        // Only worker 1 misbehaves.
        let mut producer = workers[1].producer();
        producer.observe(faulty_release(MonitorId::new(0), 1));
        producer.flush();

        wait_until(|| !service.verdict_log().is_empty(), "service verdict");
        let logged = service.verdict_log();
        assert_eq!(service.describe(logged[0].monitor), Some(("w1".into(), MonitorId::new(0))));

        let mut got = Vec::new();
        wait_until(
            || {
                got.extend(workers[1].drain_violations());
                !got.is_empty()
            },
            "verdict routed to w1",
        );
        assert!(workers[0].drain_violations().is_empty(), "w0 must not receive w1's verdicts");
        for w in &workers {
            w.shutdown();
        }
        service.shutdown();
    }

    #[test]
    fn lint_fleet_reports_duplicates_and_unresolved_names() {
        use rmon_core::DiagCode;
        let service = inline_service(Duration::from_secs(2));
        let mut workers = Vec::new();
        for name in ["w0", "w1"] {
            let (worker_end, service_end) = duplex(1024);
            service.attach(service_end);
            let worker =
                RemoteBackend::connect(worker_end, RemoteConfig::named(name), Nanos::ZERO).unwrap();
            // Both workers announce "res" (identical spec — lint-level
            // duplicate), and w1 also announces a name the resolver
            // does not know (warn: that monitor is unchecked).
            let spec = Arc::new(MonitorSpec::allocator("res", 1).spec);
            worker.register(MonitorId::new(0), Arc::clone(&spec), &spec.empty_state(), Nanos::ZERO);
            if name == "w1" {
                let ghost = Arc::new(MonitorSpec::allocator("ghost", 1).spec);
                worker.register(
                    MonitorId::new(1),
                    ghost.clone(),
                    &ghost.empty_state(),
                    Nanos::ZERO,
                );
            }
            workers.push(worker);
        }
        wait_until(|| service.lint_fleet().diagnostics.len() >= 2, "registrations recorded");

        let report = service.lint_fleet();
        let codes: Vec<DiagCode> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&DiagCode::FleetDuplicateRegistration), "{report}");
        assert!(codes.contains(&DiagCode::FleetUnresolved), "{report}");
        assert!(!report.has_errors(), "{report}");
        for w in &workers {
            w.shutdown();
        }
        service.shutdown();
    }

    #[test]
    fn worker_initiated_checkpoint_round_trips() {
        let service = inline_service(Duration::from_secs(2));
        let (worker_end, service_end) = duplex(1024);
        service.attach(service_end);
        let worker =
            RemoteBackend::connect(worker_end, RemoteConfig::named("w0"), Nanos::ZERO).unwrap();
        let spec = Arc::new(MonitorSpec::allocator("res", 1).spec);
        worker.register(MonitorId::new(0), Arc::clone(&spec), &spec.empty_state(), Nanos::ZERO);

        let report = worker.checkpoint(CheckpointScope::All, Nanos::new(1_000));
        assert!(report.is_clean());
        worker.shutdown();
        service.shutdown();
    }

    #[test]
    fn fleet_checkpoint_quarantines_a_silent_worker_without_stalling() {
        let service = inline_service(Duration::from_millis(100));

        // Worker 0: a real backend that answers fan-outs.
        let (worker_end, service_end) = duplex(1024);
        service.attach(service_end);
        let live =
            RemoteBackend::connect(worker_end, RemoteConfig::named("live"), Nanos::ZERO).unwrap();
        let spec = Arc::new(MonitorSpec::allocator("res", 1).spec);
        live.register(MonitorId::new(0), Arc::clone(&spec), &spec.empty_state(), Nanos::ZERO);

        // Worker 1: registers a monitor, then never answers anything.
        let (silent_end, service_end) = duplex(1024);
        service.attach(service_end);
        let mut silent_tx = SessionTx::new(silent_end.tx, NodeClock::new());
        silent_tx
            .send(&Msg::Hello { proto: PROTO_VERSION, name: "silent".into() }, Nanos::ZERO)
            .unwrap();
        silent_tx
            .send(
                &Msg::Register {
                    monitor: MonitorId::new(0),
                    name: "res".into(),
                    now: Nanos::ZERO,
                    initial: spec.empty_state(),
                },
                Nanos::ZERO,
            )
            .unwrap();
        wait_until(
            || service.sessions().iter().map(|s| s.monitors).sum::<usize>() == 2,
            "both registrations",
        );

        let started = Instant::now();
        let fleet = service.checkpoint_fleet(Nanos::new(1_000));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "the sweep must degrade, not stall, on a dead worker"
        );
        assert_eq!(fleet.quarantined.len(), 1);
        assert_eq!(service.describe(fleet.quarantined[0]).unwrap().0, "silent");
        assert!(fleet.report.is_clean());

        let sessions = service.sessions();
        assert!(sessions[0].alive, "the healthy worker stays attached");
        assert!(!sessions[1].alive, "the silent worker is quarantined");

        // A second sweep skips the quarantined worker entirely (fast).
        let started = Instant::now();
        let again = service.checkpoint_fleet(Nanos::new(2_000));
        assert!(again.quarantined.is_empty());
        assert!(started.elapsed() < Duration::from_millis(100) + Duration::from_secs(1));

        live.shutdown();
        service.shutdown();
    }
}
