//! The wire protocol: one [`Envelope`] per frame, carrying either a
//! journal [`Record`] or a control message.
//!
//! ## Layout
//!
//! Every frame payload (see [`rmon_storage::frame`] for the framing
//! itself) is
//!
//! ```text
//! [session_seq u64 LE | hlc.physical u64 LE | hlc.logical u32 LE | msg]
//! ```
//!
//! `session_seq` is the sender's per-session frame counter (the
//! [`crate::session`] layer uses it to reorder and deduplicate) and the
//! HLC stamp is the sender's [`rmon_core::Hlc`] at send time. `msg`
//! starts with a tag byte:
//!
//! | tag    | message |
//! |--------|---------|
//! | 1–5    | a journal [`Record`], byte-identical to the oplog codec |
//! | 16     | [`Msg::Hello`] |
//! | 17     | [`Msg::Register`] |
//! | 19     | [`Msg::CheckpointReq`] |
//! | 20     | [`Msg::CheckpointResp`] |
//! | 21     | [`Msg::Verdicts`] |
//! | 22     | [`Msg::Shutdown`] |
//!
//! Reusing the oplog codec for the event path means a worker's event
//! batch crosses the wire in exactly the bytes a single-process runtime
//! would journal — the service can tee frames straight into a
//! [`rmon_storage::Oplog`] without re-encoding, and the oplog codec's
//! corruption tests cover the wire too.
//!
//! Checkpoint messages are direction-symmetric: the service fans out a
//! [`Msg::CheckpointReq`] naming the monitors it wants observed and the
//! worker answers with a [`Msg::CheckpointResp`] carrying `(snapshots,
//! gates)` gathered by [`rmon_core::detect::gather_snapshots`]; a
//! *worker-initiated* checkpoint sends the same request shape with the
//! snapshots already attached, and the service answers with the same
//! response shape carrying only the verdict [`FaultReport`].

use rmon_core::oplog::{
    decode_record, decode_report, decode_state, decode_violations, encode_record, encode_report,
    encode_state, encode_violations, DecodeError, Record,
};
use rmon_core::{FaultReport, HlcStamp, MonitorId, MonitorState, Nanos, Violation};

/// Protocol version sent in [`Msg::Hello`]; a service refuses sessions
/// speaking a newer major version.
pub const PROTO_VERSION: u16 = 1;

/// Envelope header length in bytes (`seq` + HLC stamp).
pub const ENVELOPE_HEADER_BYTES: usize = 20;

const TAG_HELLO: u8 = 16;
const TAG_REGISTER: u8 = 17;
const TAG_CHECKPOINT_REQ: u8 = 19;
const TAG_CHECKPOINT_RESP: u8 = 20;
const TAG_VERDICTS: u8 = 21;
const TAG_SHUTDOWN: u8 = 22;

/// One message, sequenced and HLC-stamped by its sender.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Per-session frame counter, starting at 0, incremented per send.
    pub seq: u64,
    /// The sender's hybrid logical clock at send time.
    pub hlc: HlcStamp,
    /// The message itself.
    pub msg: Msg,
}

/// The message body of an [`Envelope`].
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// A journal record in the oplog codec. Workers stream their event
    /// batches as [`Record::Events`]; a service rejects the other
    /// record variants (registration travels as [`Msg::Register`],
    /// which carries the initial state a `Record` cannot).
    Record(Record),
    /// Session opener: protocol version and the worker's display name.
    Hello {
        /// The sender's [`PROTO_VERSION`].
        proto: u16,
        /// Worker name, for operator-facing reports.
        name: String,
    },
    /// A worker registered a monitor; ids are in the **worker's**
    /// namespace (the service remaps them to fleet-global ids).
    Register {
        /// The worker-local monitor id.
        monitor: MonitorId,
        /// Declared monitor name — the service resolves it to a spec,
        /// exactly like replay resolution in `rmon-storage`.
        name: String,
        /// Registration time on the worker's clock.
        now: Nanos,
        /// The monitor's initial observed state.
        initial: MonitorState,
    },
    /// A checkpoint request. Service → worker: "observe `monitors` and
    /// answer with snapshots" (`snapshots`/`gates` empty). Worker →
    /// service: "run the periodic check over my `monitors`, here are my
    /// observed states" (snapshots attached, so the service never has
    /// to call back mid-request).
    CheckpointReq {
        /// Correlates the eventual [`Msg::CheckpointResp`].
        id: u64,
        /// Checking time `t` on the requester's clock.
        now: Nanos,
        /// Monitors in scope, in the **worker's** id namespace; empty
        /// means every monitor the worker registered.
        monitors: Vec<MonitorId>,
        /// Observed states (worker-initiated requests only).
        snapshots: Vec<(MonitorId, MonitorState)>,
        /// Consistency gates for `snapshots` (see
        /// [`rmon_core::detect::SnapshotProvider::events_recorded`]).
        gates: Vec<(MonitorId, u64)>,
    },
    /// The answer to a [`Msg::CheckpointReq`] with the matching `id`.
    /// Worker → service: the gathered `(snapshots, gates)`, report
    /// empty. Service → worker: the verdict `report` (ids translated
    /// back to the worker's namespace), snapshots empty.
    CheckpointResp {
        /// The request this answers.
        id: u64,
        /// Observed states, worker id namespace.
        snapshots: Vec<(MonitorId, MonitorState)>,
        /// Consistency gates for `snapshots`.
        gates: Vec<(MonitorId, u64)>,
        /// The checking verdicts.
        report: FaultReport,
    },
    /// Real-time verdicts pushed service → worker, ids translated to
    /// the worker's namespace.
    Verdicts(Vec<Violation>),
    /// Graceful session close (either direction). Frames after a
    /// `Shutdown` are ignored.
    Shutdown,
}

/// Encodes one envelope to a frame payload.
pub fn encode_envelope(env: &Envelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_BYTES + 16);
    out.extend_from_slice(&env.seq.to_le_bytes());
    out.extend_from_slice(&env.hlc.physical.as_nanos().to_le_bytes());
    out.extend_from_slice(&env.hlc.logical.to_le_bytes());
    match &env.msg {
        Msg::Record(record) => out.extend_from_slice(&encode_record(record)),
        Msg::Hello { proto, name } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&proto.to_le_bytes());
            put_string(&mut out, name);
        }
        Msg::Register { monitor, name, now, initial } => {
            out.push(TAG_REGISTER);
            put_monitor(&mut out, *monitor);
            put_string(&mut out, name);
            out.extend_from_slice(&now.as_nanos().to_le_bytes());
            encode_state(&mut out, initial);
        }
        Msg::CheckpointReq { id, now, monitors, snapshots, gates } => {
            out.push(TAG_CHECKPOINT_REQ);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&now.as_nanos().to_le_bytes());
            put_monitor_list(&mut out, monitors);
            put_snapshots(&mut out, snapshots);
            put_gates(&mut out, gates);
        }
        Msg::CheckpointResp { id, snapshots, gates, report } => {
            out.push(TAG_CHECKPOINT_RESP);
            out.extend_from_slice(&id.to_le_bytes());
            put_snapshots(&mut out, snapshots);
            put_gates(&mut out, gates);
            encode_report(&mut out, report);
        }
        Msg::Verdicts(violations) => {
            out.push(TAG_VERDICTS);
            encode_violations(&mut out, violations);
        }
        Msg::Shutdown => out.push(TAG_SHUTDOWN),
    }
    out
}

/// Decodes a frame payload back into an [`Envelope`].
pub fn decode_envelope(payload: &[u8]) -> Result<Envelope, DecodeError> {
    if payload.len() <= ENVELOPE_HEADER_BYTES {
        return Err(DecodeError {
            detail: "payload shorter than envelope header".into(),
            offset: payload.len(),
        });
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let physical = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let logical = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes"));
    let hlc = HlcStamp { physical: Nanos::new(physical), logical };
    let body = &payload[ENVELOPE_HEADER_BYTES..];
    let msg = match body[0] {
        1..=5 => Msg::Record(decode_record(body)?),
        TAG_HELLO => {
            let mut pos = 1;
            let proto = get_u16(body, &mut pos)?;
            let name = get_string(body, &mut pos)?;
            Msg::Hello { proto, name }
        }
        TAG_REGISTER => {
            let mut pos = 1;
            let monitor = get_monitor(body, &mut pos)?;
            let name = get_string(body, &mut pos)?;
            let now = Nanos::new(get_u64(body, &mut pos)?);
            let initial = decode_state(body, &mut pos)?;
            Msg::Register { monitor, name, now, initial }
        }
        TAG_CHECKPOINT_REQ => {
            let mut pos = 1;
            let id = get_u64(body, &mut pos)?;
            let now = Nanos::new(get_u64(body, &mut pos)?);
            let monitors = get_monitor_list(body, &mut pos)?;
            let snapshots = get_snapshots(body, &mut pos)?;
            let gates = get_gates(body, &mut pos)?;
            Msg::CheckpointReq { id, now, monitors, snapshots, gates }
        }
        TAG_CHECKPOINT_RESP => {
            let mut pos = 1;
            let id = get_u64(body, &mut pos)?;
            let snapshots = get_snapshots(body, &mut pos)?;
            let gates = get_gates(body, &mut pos)?;
            let report = decode_report(body, &mut pos)?;
            Msg::CheckpointResp { id, snapshots, gates, report }
        }
        TAG_VERDICTS => {
            let mut pos = 1;
            Msg::Verdicts(decode_violations(body, &mut pos)?)
        }
        TAG_SHUTDOWN => Msg::Shutdown,
        tag => {
            return Err(DecodeError {
                detail: format!("unknown message tag {tag}"),
                offset: ENVELOPE_HEADER_BYTES,
            })
        }
    };
    Ok(Envelope { seq, hlc, msg })
}

// --- primitive helpers ------------------------------------------------

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_monitor(out: &mut Vec<u8>, m: MonitorId) {
    out.extend_from_slice(&m.index().to_le_bytes());
}

fn put_monitor_list(out: &mut Vec<u8>, monitors: &[MonitorId]) {
    out.extend_from_slice(&(monitors.len() as u32).to_le_bytes());
    for &m in monitors {
        put_monitor(out, m);
    }
}

fn put_snapshots(out: &mut Vec<u8>, snapshots: &[(MonitorId, MonitorState)]) {
    out.extend_from_slice(&(snapshots.len() as u32).to_le_bytes());
    for (m, state) in snapshots {
        put_monitor(out, *m);
        encode_state(out, state);
    }
}

fn put_gates(out: &mut Vec<u8>, gates: &[(MonitorId, u64)]) {
    out.extend_from_slice(&(gates.len() as u32).to_le_bytes());
    for &(m, count) in gates {
        put_monitor(out, m);
        out.extend_from_slice(&count.to_le_bytes());
    }
}

fn err_at(pos: usize, detail: &str) -> DecodeError {
    DecodeError { detail: detail.into(), offset: pos }
}

fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], DecodeError> {
    if buf.len() - *pos < n {
        return Err(err_at(*pos, "truncated message"));
    }
    let out = &buf[*pos..*pos + n];
    *pos += n;
    Ok(out)
}

fn get_u16(buf: &[u8], pos: &mut usize) -> Result<u16, DecodeError> {
    Ok(u16::from_le_bytes(get_bytes(buf, pos, 2)?.try_into().expect("2 bytes")))
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    Ok(u32::from_le_bytes(get_bytes(buf, pos, 4)?.try_into().expect("4 bytes")))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    Ok(u64::from_le_bytes(get_bytes(buf, pos, 8)?.try_into().expect("8 bytes")))
}

fn get_len(buf: &[u8], pos: &mut usize) -> Result<usize, DecodeError> {
    let n = get_u32(buf, pos)? as usize;
    // A corrupt length cannot force an allocation beyond the buffer.
    if n > buf.len() - *pos {
        return Err(err_at(*pos, "length field exceeds message"));
    }
    Ok(n)
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String, DecodeError> {
    let n = get_len(buf, pos)?;
    let bytes = get_bytes(buf, pos, n)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| err_at(*pos, "invalid utf-8 string"))
}

fn get_monitor(buf: &[u8], pos: &mut usize) -> Result<MonitorId, DecodeError> {
    Ok(MonitorId::new(get_u32(buf, pos)?))
}

fn get_monitor_list(buf: &[u8], pos: &mut usize) -> Result<Vec<MonitorId>, DecodeError> {
    let n = get_len(buf, pos)?;
    (0..n).map(|_| get_monitor(buf, pos)).collect()
}

fn get_snapshots(
    buf: &[u8],
    pos: &mut usize,
) -> Result<Vec<(MonitorId, MonitorState)>, DecodeError> {
    let n = get_len(buf, pos)?;
    (0..n).map(|_| Ok((get_monitor(buf, pos)?, decode_state(buf, pos)?))).collect()
}

fn get_gates(buf: &[u8], pos: &mut usize) -> Result<Vec<(MonitorId, u64)>, DecodeError> {
    let n = get_len(buf, pos)?;
    (0..n).map(|_| Ok((get_monitor(buf, pos)?, get_u64(buf, pos)?))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmon_core::{Event, MonitorSpec, Pid};

    fn roundtrip(msg: Msg) -> Envelope {
        let env =
            Envelope { seq: 42, hlc: HlcStamp { physical: Nanos::new(1_000), logical: 7 }, msg };
        let bytes = encode_envelope(&env);
        let back = decode_envelope(&bytes).expect("decode");
        assert_eq!(back, env);
        back
    }

    #[test]
    fn every_message_shape_roundtrips() {
        let al = MonitorSpec::allocator("res", 1);
        let m = MonitorId::new(3);
        let event = Event::enter(9, Nanos::new(90), m, Pid::new(2), al.release, true);
        let state = al.spec.empty_state();
        let report = FaultReport { events_checked: 5, ..FaultReport::default() };

        roundtrip(Msg::Hello { proto: PROTO_VERSION, name: "worker-a".into() });
        roundtrip(Msg::Register {
            monitor: m,
            name: "res".into(),
            now: Nanos::new(5),
            initial: state.clone(),
        });
        roundtrip(Msg::Record(Record::Events(vec![event])));
        roundtrip(Msg::CheckpointReq {
            id: 11,
            now: Nanos::new(100),
            monitors: vec![m, MonitorId::new(4)],
            snapshots: vec![(m, state.clone())],
            gates: vec![(m, 17)],
        });
        roundtrip(Msg::CheckpointResp {
            id: 11,
            snapshots: vec![(m, state)],
            gates: vec![],
            report,
        });
        roundtrip(Msg::Verdicts(Vec::new()));
        roundtrip(Msg::Shutdown);
    }

    #[test]
    fn event_batches_use_the_oplog_codec_bytes() {
        // The wire bytes after the envelope header ARE the journal
        // record — a service can tee them into an oplog unmodified.
        let al = MonitorSpec::allocator("res", 1);
        let record = Record::Events(vec![Event::enter(
            1,
            Nanos::new(10),
            MonitorId::new(0),
            Pid::new(1),
            al.request,
            true,
        )]);
        let env = Envelope { seq: 0, hlc: HlcStamp::ZERO, msg: Msg::Record(record.clone()) };
        let bytes = encode_envelope(&env);
        assert_eq!(&bytes[ENVELOPE_HEADER_BYTES..], &encode_record(&record)[..]);
    }

    #[test]
    fn corrupt_and_truncated_payloads_are_rejected_not_panicked() {
        let env = Envelope {
            seq: 1,
            hlc: HlcStamp::ZERO,
            msg: Msg::Hello { proto: 1, name: "w".into() },
        };
        let bytes = encode_envelope(&env);
        for cut in 0..bytes.len() {
            assert!(decode_envelope(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[ENVELOPE_HEADER_BYTES] = 99; // unknown tag
        assert!(decode_envelope(&bad).is_err());
        // A length field pointing past the buffer is an error, not an
        // allocation.
        let mut oversized = bytes;
        let len_off = ENVELOPE_HEADER_BYTES + 3;
        oversized[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_envelope(&oversized).is_err());
    }
}
