//! Pluggable byte transports carrying one frame stream each way.
//!
//! A transport is just a pair of directional halves — [`FrameTx`] /
//! [`FrameRx`] — moving whole frame *payloads* (the framing itself is
//! [`rmon_storage::frame`]'s, shared with the on-disk segment format).
//! Three carriers are provided:
//!
//! * [`tcp_endpoint`] / [`unix_endpoint`] — a connected stream socket,
//!   split with `try_clone`; the reader uses a short read timeout so
//!   [`FrameRx::recv_frame`] degrades to [`Recv::Idle`] instead of
//!   blocking forever (session loops interleave receiving with other
//!   work).
//! * [`duplex`] — an in-process pair over bounded channels, the
//!   deterministic transport tests and benchmarks use. Frames cross at
//!   payload granularity (already parsed), which keeps the fault
//!   harness ([`crate::harness`]) byte-exact and allocation-cheap.
//!
//! Everything here is `std`-only — no async runtime, no vendored
//! network stack; blocking reads with timeouts are all a detection
//! session needs.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use rmon_storage::frame::{frame_into, FrameBuf};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Maximum frame payload a transport will decode (16 MiB, matching the
/// oplog's default record cap).
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// How long a socket reader blocks before reporting [`Recv::Idle`].
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// How long a duplex reader blocks before reporting [`Recv::Idle`].
const DUPLEX_TIMEOUT: Duration = Duration::from_millis(2);

/// One receive attempt's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// A whole frame payload arrived.
    Frame(Vec<u8>),
    /// Nothing arrived within the transport's poll interval; the
    /// connection is still up.
    Idle,
    /// The peer closed the connection (every buffered frame was
    /// delivered first).
    Closed,
}

/// The sending half of a transport: delivers whole frame payloads,
/// preserving send order. An `Err` means the connection is unusable.
pub trait FrameTx: Send + fmt::Debug {
    /// Sends one frame payload.
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()>;
}

/// The receiving half of a transport. `recv_frame` blocks briefly and
/// reports [`Recv::Idle`] on timeout so callers can interleave work; a
/// corrupt byte stream is an `Err` (stream decoders cannot resync).
pub trait FrameRx: Send + fmt::Debug {
    /// Receives the next frame, [`Recv::Idle`] on timeout,
    /// [`Recv::Closed`] once the peer is gone.
    fn recv_frame(&mut self) -> io::Result<Recv>;
}

/// One direction-complete connection end: a tx half and an rx half.
#[derive(Debug)]
pub struct Endpoint {
    /// The sending half.
    pub tx: Box<dyn FrameTx>,
    /// The receiving half.
    pub rx: Box<dyn FrameRx>,
}

// --- in-process duplex ------------------------------------------------

/// Creates a connected in-process transport pair: frames sent on one
/// endpoint arrive on the other, each direction a bounded channel of
/// `cap` frames (backpressure via blocking send, like a socket buffer).
pub fn duplex(cap: usize) -> (Endpoint, Endpoint) {
    let (a_tx, b_rx) = bounded::<Vec<u8>>(cap.max(1));
    let (b_tx, a_rx) = bounded::<Vec<u8>>(cap.max(1));
    (
        Endpoint { tx: Box::new(ChannelTx(a_tx)), rx: Box::new(ChannelRx(a_rx)) },
        Endpoint { tx: Box::new(ChannelTx(b_tx)), rx: Box::new(ChannelRx(b_rx)) },
    )
}

/// The sending half of a [`duplex`] direction. Public so the fault
/// harness can wrap raw channel ends.
#[derive(Debug, Clone)]
pub struct ChannelTx(pub(crate) Sender<Vec<u8>>);

impl FrameTx for ChannelTx {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        self.0
            .send(payload.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "duplex peer gone"))
    }
}

/// The receiving half of a [`duplex`] direction.
#[derive(Debug)]
pub struct ChannelRx(pub(crate) Receiver<Vec<u8>>);

impl FrameRx for ChannelRx {
    fn recv_frame(&mut self) -> io::Result<Recv> {
        match self.0.recv_timeout(DUPLEX_TIMEOUT) {
            Ok(payload) => Ok(Recv::Frame(payload)),
            Err(RecvTimeoutError::Timeout) => Ok(Recv::Idle),
            Err(RecvTimeoutError::Disconnected) => Ok(Recv::Closed),
        }
    }
}

// --- stream sockets ---------------------------------------------------

/// Frame writer over any byte sink: frames each payload with the
/// shared `[len][crc32][payload]` codec and writes it whole.
pub struct StreamTx<W: Write + Send> {
    inner: W,
    scratch: Vec<u8>,
}

impl<W: Write + Send> fmt::Debug for StreamTx<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamTx").finish_non_exhaustive()
    }
}

impl<W: Write + Send> StreamTx<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        StreamTx { inner, scratch: Vec::new() }
    }
}

impl<W: Write + Send> FrameTx for StreamTx<W> {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        self.scratch.clear();
        frame_into(&mut self.scratch, payload);
        self.inner.write_all(&self.scratch)?;
        self.inner.flush()
    }
}

/// Frame reader over any byte source with read timeouts: accumulates
/// bytes in a [`FrameBuf`] and pops whole payloads. A decode error is
/// terminal (`InvalidData`).
pub struct StreamRx<R: Read + Send> {
    inner: R,
    buf: FrameBuf,
    ready: VecDeque<Vec<u8>>,
    chunk: Vec<u8>,
}

impl<R: Read + Send> fmt::Debug for StreamRx<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamRx").field("buffered", &self.ready.len()).finish_non_exhaustive()
    }
}

impl<R: Read + Send> StreamRx<R> {
    /// Wraps a byte source whose reads time out (the constructor
    /// functions below configure the socket timeout).
    pub fn new(inner: R) -> Self {
        StreamRx {
            inner,
            buf: FrameBuf::new(MAX_FRAME_BYTES),
            ready: VecDeque::new(),
            chunk: vec![0; 64 << 10],
        }
    }

    fn drain_decoded(&mut self) -> io::Result<()> {
        while let Some(payload) = self
            .buf
            .next_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        {
            self.ready.push_back(payload);
        }
        Ok(())
    }
}

impl<R: Read + Send> FrameRx for StreamRx<R> {
    fn recv_frame(&mut self) -> io::Result<Recv> {
        if let Some(payload) = self.ready.pop_front() {
            return Ok(Recv::Frame(payload));
        }
        match self.inner.read(&mut self.chunk) {
            Ok(0) => Ok(Recv::Closed),
            Ok(n) => {
                let chunk = std::mem::take(&mut self.chunk);
                self.buf.extend(&chunk[..n]);
                self.chunk = chunk;
                self.drain_decoded()?;
                match self.ready.pop_front() {
                    Some(payload) => Ok(Recv::Frame(payload)),
                    None => Ok(Recv::Idle),
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                Ok(Recv::Idle)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(Recv::Idle),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset | io::ErrorKind::BrokenPipe
                ) =>
            {
                Ok(Recv::Closed)
            }
            Err(e) => Err(e),
        }
    }
}

/// Splits a connected TCP stream into an [`Endpoint`] (clones the
/// descriptor, arms the read timeout, disables Nagle so small event
/// batches are not held back).
pub fn tcp_endpoint(stream: TcpStream) -> io::Result<Endpoint> {
    stream.set_nodelay(true)?;
    let reader = stream.try_clone()?;
    reader.set_read_timeout(Some(READ_TIMEOUT))?;
    Ok(Endpoint { tx: Box::new(StreamTx::new(stream)), rx: Box::new(StreamRx::new(reader)) })
}

/// Splits a connected Unix-domain stream into an [`Endpoint`].
#[cfg(unix)]
pub fn unix_endpoint(stream: UnixStream) -> io::Result<Endpoint> {
    let reader = stream.try_clone()?;
    reader.set_read_timeout(Some(READ_TIMEOUT))?;
    Ok(Endpoint { tx: Box::new(StreamTx::new(stream)), rx: Box::new(StreamRx::new(reader)) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_until_frame(rx: &mut dyn FrameRx, budget: u32) -> Option<Vec<u8>> {
        for _ in 0..budget {
            match rx.recv_frame().expect("recv") {
                Recv::Frame(p) => return Some(p),
                Recv::Idle => continue,
                Recv::Closed => return None,
            }
        }
        None
    }

    #[test]
    fn duplex_delivers_both_directions_in_order() {
        let (mut a, mut b) = duplex(8);
        a.tx.send_frame(b"one").unwrap();
        a.tx.send_frame(b"two").unwrap();
        b.tx.send_frame(b"ack").unwrap();
        assert_eq!(recv_until_frame(b.rx.as_mut(), 10).unwrap(), b"one");
        assert_eq!(recv_until_frame(b.rx.as_mut(), 10).unwrap(), b"two");
        assert_eq!(recv_until_frame(a.rx.as_mut(), 10).unwrap(), b"ack");
        drop(a);
        assert_eq!(b.rx.recv_frame().unwrap(), Recv::Closed);
        assert!(b.tx.send_frame(b"x").is_err(), "send to a gone peer errors");
    }

    #[test]
    fn tcp_endpoints_frame_and_reassemble() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut c = tcp_endpoint(client).unwrap();
        let mut s = tcp_endpoint(server).unwrap();
        let big = vec![0xABu8; 100_000];
        c.tx.send_frame(&big).unwrap();
        c.tx.send_frame(b"tail").unwrap();
        assert_eq!(recv_until_frame(s.rx.as_mut(), 400).unwrap(), big);
        assert_eq!(recv_until_frame(s.rx.as_mut(), 400).unwrap(), b"tail");
        // Idle while the peer is quiet, Closed once it hangs up.
        assert_eq!(s.rx.recv_frame().unwrap(), Recv::Idle);
        drop(c);
        let mut saw_closed = false;
        for _ in 0..400 {
            if s.rx.recv_frame().unwrap() == Recv::Closed {
                saw_closed = true;
                break;
            }
        }
        assert!(saw_closed);
    }

    #[cfg(unix)]
    #[test]
    fn unix_endpoints_roundtrip() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut a = unix_endpoint(a).unwrap();
        let mut b = unix_endpoint(b).unwrap();
        a.tx.send_frame(b"over unix").unwrap();
        assert_eq!(recv_until_frame(b.rx.as_mut(), 400).unwrap(), b"over unix");
    }

    #[test]
    fn corrupt_stream_bytes_are_a_terminal_error() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut s = tcp_endpoint(server).unwrap();
        // A frame header claiming a zero-length payload is invalid.
        client.write_all(&[0u8; 16]).unwrap();
        client.flush().unwrap();
        let mut saw_err = false;
        for _ in 0..400 {
            match s.rx.recv_frame() {
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::InvalidData);
                    saw_err = true;
                    break;
                }
                Ok(Recv::Idle) => continue,
                Ok(other) => panic!("expected decode error, got {other:?}"),
            }
        }
        assert!(saw_err);
    }
}
