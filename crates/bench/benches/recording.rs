//! Cost of the data-gathering routine in isolation: event recording
//! into the history database and the thread-safe recorder.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rmon_core::{EventKind, HistoryDb, MonitorId, Nanos, Pid, ProcName};
use rmon_rt::Recorder;
use std::time::Duration;

fn bench_history_db(c: &mut Criterion) {
    let mut group = c.benchmark_group("recording");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(1));
    group.bench_function("history_db_record", |b| {
        let mut db = HistoryDb::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            db.record(
                Nanos::new(t),
                MonitorId::new(0),
                Pid::new(1),
                ProcName::new(0),
                EventKind::Enter { granted: true },
            )
        });
        db.drain_window();
    });
    group.bench_function("recorder_record", |b| {
        let rec = Recorder::new();
        b.iter(|| {
            rec.record(
                MonitorId::new(0),
                Pid::new(1),
                ProcName::new(0),
                EventKind::Enter { granted: true },
            )
        });
        rec.drain_window();
    });
    group.bench_function("history_db_record_drain_cycle", |b| {
        let mut db = HistoryDb::new();
        b.iter(|| {
            for t in 0..64u64 {
                db.record(
                    Nanos::new(t),
                    MonitorId::new(0),
                    Pid::new(1),
                    ProcName::new(0),
                    EventKind::Enter { granted: true },
                );
            }
            db.drain_window()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_history_db);
criterion_main!(benches);
