//! Criterion companion to EXP-T1 (Table 1): per-operation cost of the
//! producer/consumer workload under the three instrumentation modes and
//! two scaled checking intervals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmon_rt::overhead::{measure, Mode, Workload};
use std::time::Duration;

fn bench_overhead_modes(c: &mut Criterion) {
    let workload = Workload { producers: 2, consumers: 2, items_per_producer: 2_000, capacity: 8 };
    let mut group = c.benchmark_group("table1_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    let cases = [
        ("plain", Mode::Plain),
        ("recording_only", Mode::RecordingOnly),
        ("full_interval_25ms", Mode::Full { interval: Duration::from_millis(25) }),
        ("full_interval_150ms", Mode::Full { interval: Duration::from_millis(150) }),
    ];
    for (name, mode) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| measure(workload, mode));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead_modes);
criterion_main!(benches);
