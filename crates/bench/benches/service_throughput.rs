//! EXP-SVC in Criterion form: end-to-end throughput of the sharded
//! detection service (ingest + flush + checkpoint over a fleet of
//! monitors) against the inline single-detector baseline.
//!
//! The recorded baseline lives in `BENCH_sharded.json`, produced by the
//! `sharded` binary; this bench is the statistically instrumented view
//! of the same measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmon_core::detect::{ServiceConfig, ShardedBackend};
use rmon_core::DetectorConfig;
use rmon_workloads::sweep::{drive_fleet_multi, fleet_trace, run_inline_fleet, run_sharded_fleet};
use std::time::Duration;

const FLEET_MONITORS: usize = 8;
const ITEMS_PER_PRODUCER: usize = 60;
const BATCH: usize = 256;

fn bench_service_throughput(c: &mut Criterion) {
    let fleet = fleet_trace(FLEET_MONITORS, ITEMS_PER_PRODUCER, 7);
    let events = fleet.events.len() as u64;

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(events));

    group.bench_function("inline", |b| {
        b.iter(|| {
            let report = run_inline_fleet(&fleet);
            assert!(report.is_clean());
            report
        });
    });
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &shards| {
            b.iter(|| {
                let (report, _) = run_sharded_fleet(&fleet, shards, BATCH);
                assert!(report.is_clean());
                report
            });
        });
    }
    // Multi-producer ingestion: 4 shards, N concurrent threads each
    // owning its own producer handle.
    for producers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("sharded-4-multi", producers),
            &producers,
            |b, &producers| {
                b.iter(|| {
                    let backend = ShardedBackend::new(
                        DetectorConfig::without_timeouts(),
                        ServiceConfig::new(4),
                    )
                    .with_batch(BATCH);
                    let (report, _, _) = drive_fleet_multi(&fleet, &backend, producers);
                    assert!(report.is_clean());
                    report
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
