//! Throughput of the sharded recording pipeline (EXP-REC): the
//! hot-path cost of recording scheduling events, single- and
//! multi-threaded, and the end-to-end instrumented monitor operation
//! it serves.
//!
//! This is the Criterion twin of the `recording_only` rows in the
//! `table1` / `ablation` binaries: those record the overhead *ratio*
//! baselines (`BENCH_table1.json`, `BENCH_ablation.json`), this bench
//! watches the absolute per-event cost so recorder regressions show up
//! in isolation, away from the monitor-protocol noise.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rmon_core::{DetectorConfig, EventKind, MonitorId, Nanos, Pid, ProcName};
use rmon_rt::{BoundedBuffer, Recorder, Runtime};
use std::sync::Arc;
use std::time::Duration;

fn bench_recorder_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("recorder_throughput");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(1));

    // One thread appending to its own segment: the per-event floor of
    // the pipeline (seq fetch_add + clock + segment push). Drained
    // every 64 Ki events so a long Criterion run measures steady-state
    // recording, not unbounded window growth.
    group.bench_function("record_single_thread", |b| {
        let rec = Recorder::new();
        let mut since_drain = 0u32;
        b.iter(|| {
            since_drain += 1;
            if since_drain == 65_536 {
                since_drain = 0;
                rec.drain_window();
            }
            rec.record(
                MonitorId::new(0),
                Pid::new(1),
                ProcName::new(0),
                EventKind::Enter { granted: true },
            )
        });
        rec.drain_window();
    });

    // Contended recording: 4 threads × 1024 events per iteration, all
    // into one recorder. With the old global window mutex this was the
    // hottest lock in the system; segments make it contention-free
    // (only the shared seq counter is touched by more than one
    // thread). Note the 1-hardware-thread container time-slices these
    // threads; re-measure on a multi-core host for the real scaling.
    group.bench_function("record_4_threads_4096_events", |b| {
        let rec = Arc::new(Recorder::new());
        let mut iters = 0u32;
        b.iter(|| {
            // Bound window growth across the Criterion run (16 windows
            // ≈ 64 Ki events between drains; the drain itself is the
            // next bench's subject).
            iters += 1;
            if iters == 16 {
                iters = 0;
                rec.drain_window();
            }
            std::thread::scope(|scope| {
                for t in 0..4u32 {
                    let rec = Arc::clone(&rec);
                    scope.spawn(move || {
                        for _ in 0..1024 {
                            rec.record(
                                MonitorId::new(t),
                                Pid::new(t + 1),
                                ProcName::new(0),
                                EventKind::Enter { granted: true },
                            );
                        }
                    });
                }
            });
        });
        rec.drain_window();
    });

    // The drain/merge half: record a 4-thread window, then k-way merge
    // it back into the global order.
    group.bench_function("record_drain_merge_cycle_4096", |b| {
        let rec = Arc::new(Recorder::new());
        b.iter(|| {
            std::thread::scope(|scope| {
                for t in 0..4u32 {
                    let rec = Arc::clone(&rec);
                    scope.spawn(move || {
                        for _ in 0..1024 {
                            rec.record(
                                MonitorId::new(t),
                                Pid::new(t + 1),
                                ProcName::new(0),
                                EventKind::Enter { granted: true },
                            );
                        }
                    });
                }
            });
            rec.drain_window()
        });
    });

    // End-to-end: one instrumented bounded-buffer send/receive pair —
    // what the recording cost buys in context (2 monitor ops, 4
    // recorded events).
    group.bench_function("instrumented_send_receive", |b| {
        let cfg = DetectorConfig::builder()
            .t_max(Nanos::from_secs(600))
            .t_io(Nanos::from_secs(600))
            .t_limit(Nanos::from_secs(600))
            .check_interval(Nanos::from_secs(600))
            .build();
        let rt = Runtime::builder(cfg).park_timeout(Duration::from_secs(30)).build();
        let buf = BoundedBuffer::new(&rt, "bench", 64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // Periodic checkpoint: drains the recorded window like a
            // production checker would, so the window stays bounded
            // over the Criterion run (amortized to noise at this
            // interval).
            if i.is_multiple_of(32_768) {
                rt.checkpoint_now();
            }
            buf.send(i).expect("send");
            buf.receive().expect("receive")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_recorder_throughput);
criterion_main!(benches);
