//! EXP-ABL-DET in Criterion form: cost of one periodic checkpoint
//! (Algorithms 1–3 over the checking lists) as a function of the
//! event-window size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmon_core::detect::Detector;
use rmon_core::{DetectorConfig, Nanos};
use rmon_workloads::sweep;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_window");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    for (target, trace) in sweep::window_sweep(1) {
        let events = trace.events[..target].to_vec();
        group.throughput(Throughput::Elements(target as u64));
        group.bench_with_input(BenchmarkId::from_parameter(target), &events, |b, events| {
            b.iter(|| {
                let mut det = Detector::new(DetectorConfig::without_timeouts());
                det.register_empty(trace.monitor, Arc::clone(&trace.spec), Nanos::ZERO);
                det.checkpoint(trace.end_time, events, &HashMap::new())
            });
        });
    }
    group.finish();
}

fn bench_reference_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_checker");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    let trace = sweep::pc_trace(60, 1);
    group.throughput(Throughput::Elements(trace.events.len() as u64));
    group.bench_function("full_history", |b| {
        b.iter(|| {
            rmon_core::reference::check_history(
                trace.monitor,
                &trace.spec,
                &DetectorConfig::without_timeouts(),
                &trace.events,
                Some(&trace.final_state),
                trace.end_time,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint, bench_reference_checker);
criterion_main!(benches);
