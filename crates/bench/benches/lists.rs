//! Micro-costs of the checking-list state machines: Algorithm-1 replay
//! per event, Algorithm-3 order tracking, and path-expression NFA
//! stepping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rmon_core::{
    DetectorConfig, GeneralLists, MonitorId, MonitorSpec, OrderState, PathExpr, ResourceState,
};
use rmon_workloads::sweep;
use std::time::Duration;

fn bench_general_replay(c: &mut Criterion) {
    let trace = sweep::pc_trace(60, 1);
    let mut group = c.benchmark_group("lists");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(trace.events.len() as u64));
    group.bench_function("general_lists_replay", |b| {
        b.iter(|| {
            let mut lists = GeneralLists::new(trace.monitor, trace.spec.cond_count());
            let mut out = Vec::new();
            for e in &trace.events {
                lists.apply(&trace.spec, e, &mut out);
            }
            out
        });
    });
    group.bench_function("resource_state_replay", |b| {
        b.iter(|| {
            let mut rs = ResourceState::new(
                trace.monitor,
                trace.spec.capacity.unwrap_or(0),
                trace.spec.capacity.unwrap_or(0),
            );
            let mut out = Vec::new();
            for e in &trace.events {
                rs.apply(&trace.spec, e, &mut out);
            }
            out
        });
    });
    group.finish();
}

fn bench_order_tracking(c: &mut Criterion) {
    let al = MonitorSpec::allocator("res", 4);
    let mut events = Vec::new();
    let mut seq = 0u64;
    for round in 0..200u64 {
        let pid = rmon_core::Pid::new((round % 4) as u32);
        for proc_name in [al.request, al.release] {
            seq += 1;
            events.push(rmon_core::Event::enter(
                seq,
                rmon_core::Nanos::new(seq * 10),
                MonitorId::new(0),
                pid,
                proc_name,
                true,
            ));
            seq += 1;
            events.push(rmon_core::Event::signal_exit(
                seq,
                rmon_core::Nanos::new(seq * 10),
                MonitorId::new(0),
                pid,
                proc_name,
                None,
                false,
            ));
        }
    }
    let mut group = c.benchmark_group("order_state");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("request_release_tracking", |b| {
        b.iter(|| {
            let mut os = OrderState::new(MonitorId::new(0), &al.spec);
            let mut out = Vec::new();
            for e in &events {
                os.apply(&al.spec, e, &mut out);
            }
            os.check_hold_timeout(
                &DetectorConfig::without_timeouts(),
                rmon_core::Nanos::new(seq * 10),
                &mut out,
            );
            out
        });
    });
    group.finish();
}

fn bench_path_nfa(c: &mut Criterion) {
    let spec = MonitorSpec::allocator("res", 1).spec;
    let expr = PathExpr::parse("path (request ; release)* end").expect("parses");
    let compiled = expr.compile(|n| spec.proc_by_name(n)).expect("compiles");
    let request = spec.proc_by_name("request").expect("declared");
    let release = spec.proc_by_name("release").expect("declared");
    let mut group = c.benchmark_group("path_expr");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("nfa_advance_1000_cycles", |b| {
        b.iter(|| {
            let mut tracker = compiled.tracker();
            for _ in 0..1_000 {
                tracker.advance(request).expect("allowed");
                tracker.advance(release).expect("allowed");
            }
            tracker.is_complete()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_general_replay, bench_order_tracking, bench_path_nfa);
criterion_main!(benches);
