//! EXP-T1 — regenerates **Table 1** of the paper: the overhead ratio
//! between monitor operations with the fault-detection extension and
//! without, as a function of the checking time interval.
//!
//! Run with: `cargo run -p rmon-bench --bin table1 --release`
//!
//! Usage: `table1 [OUT.json]` (default `BENCH_table1.json` in the
//! current directory) — the measured ratios are also recorded as a
//! JSON baseline next to `BENCH_sharded.json`.
//!
//! Paper setup: checking intervals 0.5 s – 3.0 s; overhead computed as
//! the average ratio between the time spent executing monitor
//! operations with the extension and without. Here one paper-second is
//! scaled to [`rmon_bench::paper_second`] (default 50 ms; override with
//! `RMON_PAPER_SECOND_MS`).
//!
//! Two checker variants are measured:
//!
//! * **faithful** — the paper's §3.1 cost model: every invocation
//!   re-checks the complete recorded history with all processes
//!   suspended. This reproduces Table 1's *shape*: the ratio falls as
//!   the interval grows (≈7× at 0.5 s down to ≈4× at 3.0 s on their
//!   2001 JVM).
//! * **incremental** — our §3.3 checking-list engine, whose
//!   per-invocation cost is proportional to the window only; the
//!   interval-dependence all but disappears, which is exactly the
//!   point of the paper's checking-list optimization.

use rmon_bench::{paper_second, row, rule_line, TABLE1_INTERVALS};
use rmon_rt::overhead::{measure, table1_with, Mode, Workload};
use std::fmt::Write as _;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_table1.json".to_string());
    let ps = paper_second();
    // A single thread alternating send/receive: monitor calls never
    // block, so the measurement isolates the cost of executing the
    // monitor *operations* — the paper's ratio definition — rather
    // than hand-off parking under contention.
    let workload = Workload {
        producers: 1,
        consumers: 0,
        items_per_producer: std::env::var("RMON_TABLE1_ITEMS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(400_000),
        capacity: 64,
    };
    // 3 interleaved repeats by default: the 1-hardware-thread container
    // time-slices everything, so single measurements of the base/rec
    // rows wander by ~10%; averaging three keeps the recorded ratios
    // honest.
    let repeats: usize =
        std::env::var("RMON_TABLE1_REPEATS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);

    println!("Table 1 — overhead ratio vs. checking interval");
    println!(
        "workload: {} producers, {} consumers, {} ops total, capacity {}; \
         1 paper-second = {:?}; {} repeat(s)",
        workload.producers,
        workload.consumers,
        workload.total_ops(),
        workload.capacity,
        ps,
        repeats
    );
    println!();

    // Shared plain baseline and the recording-only floor.
    let mut base_sum = 0.0;
    let mut rec_sum = 0.0;
    for _ in 0..repeats {
        base_sum += measure(workload, Mode::Plain).ns_per_op;
        rec_sum += measure(workload, Mode::RecordingOnly).ns_per_op;
    }
    let base = base_sum / repeats as f64;
    let rec = rec_sum / repeats as f64;

    let widths = [14usize, 10, 12, 16, 14, 18, 16];
    println!(
        "{}",
        row(
            &[
                "interval (ps)".into(),
                "interval".into(),
                "base ns/op".into(),
                "faithful ns/op".into(),
                "ratio (paper)".into(),
                "incremental ns/op".into(),
                "ratio (ours)".into(),
            ],
            &widths
        )
    );
    println!("{}", rule_line(&widths));

    let intervals: Vec<std::time::Duration> =
        TABLE1_INTERVALS.iter().map(|s| ps.mul_f64(*s)).collect();
    let mut faithful_ratios = Vec::new();
    let mut incremental_ratios = Vec::new();
    for (i, &iv) in intervals.iter().enumerate() {
        let mut faithful_sum = 0.0;
        let mut incr_sum = 0.0;
        for _ in 0..repeats {
            faithful_sum += table1_with(workload, &[iv], true)[0].ext_ns_per_op;
            incr_sum += table1_with(workload, &[iv], false)[0].ext_ns_per_op;
        }
        let faithful = faithful_sum / repeats as f64;
        let incr = incr_sum / repeats as f64;
        faithful_ratios.push(faithful / base);
        incremental_ratios.push(incr / base);
        println!(
            "{}",
            row(
                &[
                    format!("{:.1}", TABLE1_INTERVALS[i]),
                    format!("{iv:?}"),
                    format!("{base:.0}"),
                    format!("{faithful:.0}"),
                    format!("{:.3}", faithful / base),
                    format!("{incr:.0}"),
                    format!("{:.3}", incr / base),
                ],
                &widths
            )
        );
    }
    println!("{}", rule_line(&widths));
    println!(
        "{}",
        row(
            &[
                "rec-only".into(),
                "-".into(),
                format!("{base:.0}"),
                "-".into(),
                "-".into(),
                format!("{rec:.0}"),
                format!("{:.3}", rec / base),
            ],
            &widths
        )
    );
    println!();
    let f_first = faithful_ratios.first().copied().unwrap_or(1.0);
    let f_last = faithful_ratios.last().copied().unwrap_or(1.0);
    println!(
        "shape check (faithful checker): ratio({}) = {:.3} vs ratio({}) = {:.3} → {}",
        TABLE1_INTERVALS[0],
        f_first,
        TABLE1_INTERVALS[TABLE1_INTERVALS.len() - 1],
        f_last,
        if f_first > f_last {
            "decreasing with interval (matches paper)"
        } else {
            "NOT decreasing"
        }
    );
    let i_first = incremental_ratios.first().copied().unwrap_or(1.0);
    let i_last = incremental_ratios.last().copied().unwrap_or(1.0);
    println!(
        "ablation (incremental checker): ratio({}) = {:.3} vs ratio({}) = {:.3} → \
         interval-dependence removed by the checking-list optimization",
        TABLE1_INTERVALS[0],
        i_first,
        TABLE1_INTERVALS[TABLE1_INTERVALS.len() - 1],
        i_last,
    );

    // Record the baseline (hand-rolled JSON; see BENCH_sharded.json).
    let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"EXP-T1 overhead ratio vs checking interval\",");
    let _ = writeln!(json, "  \"workload\": \"rmon_rt::overhead single-thread send/receive\",");
    let _ = writeln!(json, "  \"ops_total\": {},", workload.total_ops());
    let _ = writeln!(json, "  \"paper_second_ms\": {},", ps.as_millis());
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"hardware_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"base_ns_per_op\": {base:.1},");
    let _ = writeln!(json, "  \"recording_only_ratio\": {:.3},", rec / base);
    let _ = writeln!(
        json,
        "  \"caveats\": \"Wall-clock scaled: 1 paper-second = {} ms. The paper's Table 1 \
         shape is the faithful (full-history) checker; the incremental column is the \
         checking-list ablation. Single-thread workload, so hardware thread count only \
         affects background checker scheduling noise.\",",
        ps.as_millis()
    );
    let _ = writeln!(json, "  \"rows\": [");
    for (i, s) in TABLE1_INTERVALS.iter().enumerate() {
        let comma = if i + 1 == TABLE1_INTERVALS.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"interval_paper_seconds\": {s:.1}, \"faithful_ratio\": {:.3}, \
             \"incremental_ratio\": {:.3}}}{comma}",
            faithful_ratios[i], incremental_ratios[i]
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"faithful_ratio_decreases_with_interval\": {}",
        if f_first > f_last { "true" } else { "false" }
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("\nwrote {out_path}");
}
