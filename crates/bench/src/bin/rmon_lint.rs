//! `rmon-lint` — offline spec and fleet linter.
//!
//! Runs the `rmon_core::spec::analyze` diagnostics engine (the
//! `RML0xx` catalogue, see `docs/DIAGNOSTICS.md`) outside any running
//! detector: over spec files, over the built-in declarations, and over
//! the monitor fleet recorded in a durable oplog directory.
//!
//! ```text
//! rmon-lint [--strict] [--builtin] [--specs FILE] [--oplog DIR] [FILE.mspec ...]
//! ```
//!
//! * `FILE.mspec` — lint every declaration in the file, then the file
//!   as one fleet (name collisions, capacity mismatches, …).
//! * `--builtin` — lint the canonical constructor specs
//!   (`bounded_buffer` / `allocator` / `operation_manager`) and the
//!   workload declarations shipped with the repo.
//! * `--oplog DIR` — reconstruct the registered fleet from the
//!   `Register` frames of a durable oplog (one fleet per runtime
//!   epoch) and lint it. With `--specs FILE` the recorded names are
//!   resolved against the file's declarations, so unresolved names
//!   surface as `RML042`; without it resolution is skipped.
//! * `--strict` — warnings count as failures, not just errors.
//!
//! Exit codes: `0` nothing at or above the failure threshold (Error,
//! or Warn with `--strict`); `1` findings at the threshold; `2` usage
//! or I/O error.

use rmon_core::oplog::{decode_record, Record};
use rmon_core::spec::textfmt;
use rmon_core::{analyze_all, analyze_fleet, DiagCode, LintReport, MonitorSpec, Severity};
use rmon_storage::Oplog;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Parsed command line.
struct Options {
    strict: bool,
    builtin: bool,
    oplog: Option<PathBuf>,
    specs: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: rmon-lint [--strict] [--builtin] [--specs FILE] [--oplog DIR] [FILE.mspec ...]"
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts =
        Options { strict: false, builtin: false, oplog: None, specs: None, files: Vec::new() };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => opts.strict = true,
            "--builtin" => opts.builtin = true,
            "--oplog" => {
                let dir = args.next().ok_or("--oplog needs a directory argument")?;
                opts.oplog = Some(PathBuf::from(dir));
            }
            "--specs" => {
                let file = args.next().ok_or("--specs needs a file argument")?;
                opts.specs = Some(PathBuf::from(file));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            _ => opts.files.push(PathBuf::from(arg)),
        }
    }
    if !opts.builtin && opts.oplog.is_none() && opts.files.is_empty() {
        return Err("nothing to lint: give spec files, --builtin, or --oplog DIR".into());
    }
    if opts.specs.is_some() && opts.oplog.is_none() {
        return Err("--specs only makes sense together with --oplog".into());
    }
    Ok(opts)
}

/// Reads and parses one `.mspec` file (hard structural errors abort).
fn load_specs(path: &Path) -> Result<textfmt::SpecFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    textfmt::parse_specs(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Lints one spec file: front-end diagnostics (e.g. `RML016` for an
/// unparsable call order) merged with the full per-spec and fleet
/// analysis of its declarations.
fn lint_file(path: &Path) -> Result<LintReport, String> {
    let file = load_specs(path)?;
    let mut report = file.diagnostics;
    report
        .merge(analyze_all(file.specs.iter().map(|s| (s.name.clone(), Some(Arc::new(s.clone()))))));
    Ok(report)
}

/// The declarations the repo itself ships: canonical constructors plus
/// the workload monitors.
fn builtin_specs() -> Vec<MonitorSpec> {
    vec![
        MonitorSpec::bounded_buffer("bounded_buffer", 4).spec,
        MonitorSpec::allocator("allocator", 2).spec,
        MonitorSpec::operation_manager("operation_manager").spec,
        rmon_workloads::ReadersWriters::spec("readers_writers"),
    ]
}

fn lint_builtin() -> LintReport {
    analyze_all(builtin_specs().into_iter().map(|s| (s.name.clone(), Some(Arc::new(s)))))
}

/// Lints the fleet recorded in an oplog directory: `Register` frames
/// grouped per runtime epoch, each epoch linted as one fleet, the
/// reports deduplicated (a soak restarts many epochs that re-register
/// the same monitors).
fn lint_oplog(
    dir: &Path,
    resolver: Option<&BTreeMap<String, Arc<MonitorSpec>>>,
) -> Result<LintReport, String> {
    let (payloads, read) =
        Oplog::read_dir_records(dir, 16 << 20).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut epochs: Vec<Vec<String>> = Vec::new();
    let mut current: Vec<String> = Vec::new();
    let mut undecodable = 0usize;
    for payload in &payloads {
        match decode_record(payload) {
            Ok(Record::Epoch { .. }) => {
                if !current.is_empty() {
                    epochs.push(std::mem::take(&mut current));
                }
            }
            Ok(Record::Register { name, .. }) => current.push(name),
            Ok(_) => {}
            Err(_) => undecodable += 1,
        }
    }
    if !current.is_empty() {
        epochs.push(current);
    }
    eprintln!(
        "rmon-lint: oplog {}: {} records in {} segment(s), {} epoch fleet(s){}",
        dir.display(),
        read.records,
        read.segments,
        epochs.len(),
        if undecodable > 0 { format!(", {undecodable} undecodable") } else { String::new() },
    );
    let mut merged = LintReport::default();
    let mut seen = std::collections::BTreeSet::new();
    for names in epochs {
        let entries = names
            .into_iter()
            .map(|n| {
                let spec = resolver.and_then(|map| map.get(&n).cloned());
                (n, spec)
            })
            .collect::<Vec<_>>();
        let report = analyze_fleet(entries);
        for diag in report.diagnostics {
            // Without --specs every name is unresolved by construction;
            // reporting RML042 for all of them would be pure noise.
            if resolver.is_none() && diag.code == DiagCode::FleetUnresolved {
                continue;
            }
            if seen.insert(format!("{diag}")) {
                merged.merge(LintReport { diagnostics: vec![diag] });
            }
        }
    }
    Ok(merged)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("rmon-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let threshold = if opts.strict { Severity::Warn } else { Severity::Error };

    // (source label, report) pairs, in command-line order.
    let mut sources: Vec<(String, LintReport)> = Vec::new();
    if opts.builtin {
        sources.push(("builtin".into(), lint_builtin()));
    }
    for file in &opts.files {
        match lint_file(file) {
            Ok(report) => sources.push((file.display().to_string(), report)),
            Err(msg) => {
                eprintln!("rmon-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(dir) = &opts.oplog {
        let resolver = match &opts.specs {
            Some(path) => match load_specs(path) {
                Ok(file) => Some(
                    file.specs
                        .into_iter()
                        .map(|s| (s.name.clone(), Arc::new(s)))
                        .collect::<BTreeMap<_, _>>(),
                ),
                Err(msg) => {
                    eprintln!("rmon-lint: {msg}");
                    return ExitCode::from(2);
                }
            },
            None => None,
        };
        match lint_oplog(dir, resolver.as_ref()) {
            Ok(report) => sources.push((format!("oplog {}", dir.display()), report)),
            Err(msg) => {
                eprintln!("rmon-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failing = 0usize;
    let mut findings = 0usize;
    for (label, report) in &sources {
        println!("== {label}: {report}");
        findings += report.diagnostics.len();
        if report.worst().is_some_and(|w| w >= threshold) {
            failing += 1;
        }
    }
    println!(
        "rmon-lint: {} source(s), {} finding(s), {} failing at threshold {threshold}",
        sources.len(),
        findings,
        failing,
    );
    if failing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
