//! EXP-COV — regenerates the robustness evaluation (§4): faults of all
//! 21 classes of the taxonomy are injected and the detection coverage
//! is reported. The paper: *"The results show that all injected faults
//! are detected."*
//!
//! Run with: `cargo run -p rmon-bench --bin coverage --release`
//!
//! Seeds: seed 0 is the engineered round-robin interleaving; the others
//! use random scheduling (the paper injected "randomly"; we keep it
//! reproducible).

use rmon_bench::{row, rule_line};
use rmon_core::FaultKind;
use rmon_workloads::faultset;

fn main() {
    let seeds: Vec<u64> = std::env::var("RMON_COVERAGE_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|n| (0..n).collect())
        .unwrap_or_else(|| (0..8).collect());

    println!("Fault-injection coverage — all 21 classes × {} seeds", seeds.len());
    println!();
    let widths = [4usize, 18, 9, 9, 9, 12, 36];
    println!(
        "{}",
        row(
            &[
                "id".into(),
                "level".into(),
                "runs".into(),
                "injected".into(),
                "detected".into(),
                "latency".into(),
                "rules triggered".into(),
            ],
            &widths
        )
    );
    println!("{}", rule_line(&widths));

    let rows = faultset::run_campaign(&seeds);
    let mut all_covered = true;
    for r in &rows {
        let rules: Vec<String> = r.rules.iter().map(|x| x.to_string()).collect();
        let latency = r.mean_latency.map(|l| l.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "{}",
            row(
                &[
                    r.fault.code().into(),
                    r.fault.level().to_string(),
                    r.runs.to_string(),
                    r.injected.to_string(),
                    r.detected.to_string(),
                    latency,
                    rules.join(","),
                ],
                &widths
            )
        );
        all_covered &= r.injected > 0 && r.detected == r.injected;
    }
    println!("{}", rule_line(&widths));

    let injected: usize = rows.iter().map(|r| r.injected).sum();
    let detected: usize = rows.iter().map(|r| r.detected).sum();
    println!(
        "totals: {injected} injected runs, {detected} detected ({}%)",
        (100 * detected).checked_div(injected).unwrap_or(0)
    );
    println!(
        "paper claim \"all injected faults are detected\": {}",
        if all_covered { "REPRODUCED" } else { "NOT reproduced" }
    );
    assert_eq!(FaultKind::ALL.len(), rows.len());
    std::process::exit(if all_covered { 0 } else { 1 });
}
