//! Soak/chaos smoke driver: runs the durable-oplog soak
//! ([`rmon_workloads::soak`]) — monitor churn, backpressure storms,
//! crash injection between runtime epochs — and closes with the
//! differential replay. Exits nonzero when the replay does not
//! reproduce the recorded verdicts or the journal reported errors.
//!
//! Run with: `cargo run --release -p rmon-bench --bin soak`
//!
//! Usage: `soak [DIR]` (default: a fresh directory under the system
//! temp dir, removed on success). `RMON_SOAK_SECS` sets the wall-clock
//! budget (default 10); CI's `soak-smoke` step runs it at 10 s on every
//! push.

use rmon_workloads::soak::{run_soak, SoakConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cfg = SoakConfig::from_env();
    let (dir, ephemeral) = match std::env::args().nth(1) {
        Some(dir) => (PathBuf::from(dir), false),
        None => (std::env::temp_dir().join(format!("rmon-soak-{}", std::process::id())), true),
    };
    println!(
        "soak: {:?} over {} phases into {} (threads={}, allocators={}, segment={} KiB)",
        cfg.duration,
        cfg.phases,
        dir.display(),
        cfg.threads,
        cfg.allocators,
        cfg.segment_bytes >> 10,
    );
    let report = match run_soak(&dir, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("soak: driver error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "soak: {} checkpoints, {} events, {} crash injections, {} B recovered, \
         {} rotations, {} segments, rss {} KiB -> {} KiB",
        report.checkpoints,
        report.events_recorded,
        report.crash_injections,
        report.recovered_truncated_bytes,
        report.rotated,
        report.segments,
        report.first_rss_kb,
        report.max_rss_kb,
    );
    println!(
        "replay: {} epochs, {} checkpoints, {} events, {} recorded vs {} recomputed verdicts, \
         {} uncommitted records",
        report.replay.epochs,
        report.replay.checkpoints,
        report.replay.events_replayed,
        report.replay.recorded.len(),
        report.replay.recomputed.len(),
        report.replay.uncommitted_records,
    );
    if report.journal_errors > 0 {
        eprintln!("soak: FAIL — {} journal errors", report.journal_errors);
        return ExitCode::FAILURE;
    }
    if report.rotated == 0 {
        eprintln!("soak: FAIL — no segment rotation (segment_bytes too large for the run?)");
        return ExitCode::FAILURE;
    }
    // RSS bound: a leaky pipeline shows up as runaway growth across
    // phases. Allow generous slack over the first sample for arena and
    // backend warm-up; skip where /proc is unavailable.
    if report.first_rss_kb > 0 && report.max_rss_kb > report.first_rss_kb * 4 + 262_144 {
        eprintln!("soak: FAIL — RSS grew {} KiB -> {} KiB", report.first_rss_kb, report.max_rss_kb);
        return ExitCode::FAILURE;
    }
    if let Some(why) = report.replay.mismatch() {
        eprintln!("soak: FAIL — differential replay diverged: {why}");
        return ExitCode::FAILURE;
    }
    println!("soak: PASS — replay reproduced the recorded verdict sequence exactly");
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    ExitCode::SUCCESS
}
