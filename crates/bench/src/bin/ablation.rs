//! Ablation studies backing the design discussion:
//!
//! * **EXP-ABL-REC** — the cost split between event recording and
//!   periodic checking (the paper's text attributes the overhead to
//!   both; we separate them);
//! * **EXP-ABL-RT** — detection latency vs. checking interval, down to
//!   the paper's *"when T = 1, the checking becomes real-time"* limit;
//! * **EXP-ABL-DET** — checkpoint cost as a function of the event-window
//!   size (the scalability of the checking lists);
//! * **EXP-ABL-CKPT** — the cost of one scoped per-shard checkpoint
//!   sweep: timer-only (the scheduler's no-provider fallback) vs. the
//!   full snapshot + Algorithm-1/2 comparison through a registered
//!   `SnapshotProvider`;
//! * **EXP-ABL-PRD** — the cost of the predictive pass
//!   (`rmon_core::detect::predict`) at a checkpoint over a contended
//!   seeded schedule: `PredictMode::Off` (the default — the pass must
//!   cost nothing) vs. `PredictMode::Checkpoint`.
//!
//! Run with: `cargo run --release -p rmon-bench --bin ablation`
//!
//! Usage: `ablation [OUT.json]` (default `BENCH_ablation.json` in the
//! current directory) — the measurements are recorded as a JSON
//! baseline next to `BENCH_table1.json` / `BENCH_sharded.json`.
//! `RMON_ABLATION_ITEMS` scales the EXP-ABL-REC workload (default
//! 150 000 items; CI uses a smaller value so the baseline can be
//! exercised on every push without owning the job's wall clock).

use rmon_bench::{paper_second, row, rule_line};
use rmon_core::detect::{
    CheckpointScope, DetectionBackend, Detector, ServiceConfig, ShardedBackend,
};
use rmon_core::{DetectorConfig, FaultKind, MonitorId, MonitorState, Nanos, PredictMode};
use rmon_rt::overhead::{measure, Mode, Workload};
use rmon_workloads::{faultset, sweep};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_ablation.json".to_string());
    let rec = ablation_recording();
    println!();
    let latency = ablation_latency();
    println!();
    let det = ablation_detector_cost();
    println!();
    let ckpt = ablation_checkpoint_sweep();
    println!();
    let predict = ablation_predict_sweep();
    write_baseline(&out_path, &rec, &latency, &det, &ckpt, &predict);
    println!("\nwrote {out_path}");
}

/// One EXP-ABL-REC row: a mode's per-op cost and ratio to plain.
struct RecRow {
    name: &'static str,
    ns_per_op: f64,
    ratio: f64,
}

/// EXP-ABL-REC: Plain vs. RecordingOnly vs. Full.
fn ablation_recording() -> Vec<RecRow> {
    let ps = paper_second();
    // Uncontended alternating workload: isolates per-op instrumentation
    // cost (see the table1 binary for the rationale).
    let items =
        std::env::var("RMON_ABLATION_ITEMS").ok().and_then(|v| v.parse().ok()).unwrap_or(150_000);
    let w = Workload { producers: 1, consumers: 0, items_per_producer: items, capacity: 64 };
    println!("EXP-ABL-REC — recording vs. checking cost ({} ops)", w.total_ops());
    let widths = [22usize, 14, 10];
    println!("{}", row(&["mode".into(), "ns/op".into(), "ratio".into()], &widths));
    println!("{}", rule_line(&widths));
    let base = measure(w, Mode::Plain).ns_per_op;
    let mut rows = Vec::new();
    for (name, mode) in [
        ("plain (baseline)", Mode::Plain),
        ("recording only", Mode::RecordingOnly),
        ("full, T = 1 ps", Mode::Full { interval: ps }),
    ] {
        let m = measure(w, mode);
        println!(
            "{}",
            row(
                &[name.into(), format!("{:.1}", m.ns_per_op), format!("{:.3}", m.ns_per_op / base)],
                &widths
            )
        );
        rows.push(RecRow { name, ns_per_op: m.ns_per_op, ratio: m.ns_per_op / base });
    }
    rows
}

/// One EXP-ABL-RT row: detection latency for a fault at an interval.
struct LatencyRow {
    interval_us: u64,
    fault: &'static str,
    latency_ns: Option<u64>,
    checks: usize,
}

/// EXP-ABL-RT: detection latency vs. checking interval in the
/// simulator (virtual time, fully deterministic).
fn ablation_latency() -> Vec<LatencyRow> {
    println!("EXP-ABL-RT — detection latency vs. checking interval (virtual time)");
    let widths = [16usize, 10, 14, 14];
    println!(
        "{}",
        row(&["interval".into(), "fault".into(), "latency".into(), "checks/run".into()], &widths)
    );
    println!("{}", rule_line(&widths));
    // Faults detected by the periodic algorithms (latency ≈ interval)
    // vs. a user-process fault caught in real time (latency ≈ 0).
    let cases =
        [FaultKind::EnterProcessLost, FaultKind::SendExceedsCapacity, FaultKind::DoubleAcquire];
    let mut rows = Vec::new();
    for interval_us in [50u64, 200, 1_000, 5_000] {
        for fault in cases {
            let mut sim = faultset::build_case(fault, 0);
            let cfg = DetectorConfig::builder()
                .check_interval(Nanos::from_micros(interval_us))
                .t_max(Nanos::from_millis(2))
                .t_io(Nanos::from_millis(4))
                .t_limit(Nanos::from_millis(3))
                .build();
            let out = rmon_sim::run_with_detection(&mut sim, cfg);
            let latency = out.detection_latency();
            let lat = latency.map(|l| l.to_string()).unwrap_or_else(|| "realtime".into());
            println!(
                "{}",
                row(
                    &[
                        format!("{interval_us} us"),
                        fault.code().into(),
                        lat,
                        out.reports.len().to_string(),
                    ],
                    &widths
                )
            );
            rows.push(LatencyRow {
                interval_us,
                fault: fault.code(),
                latency_ns: latency.map(|l| l.as_nanos()),
                checks: out.reports.len(),
            });
        }
    }
    rows
}

/// One EXP-ABL-DET row: checkpoint cost at a window size.
struct DetRow {
    events: usize,
    ns_per_event: f64,
}

/// EXP-ABL-DET: wall time of one checkpoint vs. window size.
fn ablation_detector_cost() -> Vec<DetRow> {
    println!("EXP-ABL-DET — checkpoint cost vs. event-window size");
    let widths = [12usize, 14, 14];
    println!("{}", row(&["events".into(), "total".into(), "ns/event".into()], &widths));
    println!("{}", rule_line(&widths));
    let mut rows = Vec::new();
    for (target, trace) in sweep::window_sweep(1) {
        let events = &trace.events[..target];
        // Fresh detector per run; replay the window once, timed.
        let iterations = 50;
        let mut total = std::time::Duration::ZERO;
        for _ in 0..iterations {
            let mut det = Detector::new(DetectorConfig::without_timeouts());
            det.register_empty(trace.monitor, Arc::clone(&trace.spec), Nanos::ZERO);
            let snaps: HashMap<_, _> = HashMap::new();
            let start = Instant::now();
            let report = det.checkpoint(trace.end_time, events, &snaps);
            total += start.elapsed();
            assert_eq!(report.events_checked as usize, events.len());
        }
        let per = total / iterations as u32;
        println!(
            "{}",
            row(
                &[
                    target.to_string(),
                    format!("{per:?}"),
                    format!("{:.1}", per.as_nanos() as f64 / target as f64),
                ],
                &widths
            )
        );
        rows.push(DetRow { events: target, ns_per_event: per.as_nanos() as f64 / target as f64 });
    }
    rows
}

/// One EXP-ABL-CKPT row: cost of a scoped per-shard checkpoint sweep.
struct CkptRow {
    mode: &'static str,
    ns_per_sweep: f64,
}

/// EXP-ABL-CKPT: per-shard sweep cost, timer-only vs. the full
/// snapshot + Algorithm-1/2 comparison through a `SnapshotProvider`.
/// The backend is quiescent (stream fully ingested and replayed), so
/// the rows isolate the steady-state sweep cost — what the scheduled
/// backend's ticker pays per tick in each mode.
fn ablation_checkpoint_sweep() -> Vec<CkptRow> {
    const SHARDS: usize = 4;
    println!("EXP-ABL-CKPT — per-shard sweep cost (8 monitors over {SHARDS} shards)");
    let widths = [28usize, 16];
    println!("{}", row(&["mode".into(), "ns/sweep".into()], &widths));
    println!("{}", rule_line(&widths));
    let fleet = sweep::fleet_trace(8, 30, 7);
    let mut rows = Vec::new();
    for (mode, with_provider) in [("timer-only sweep", false), ("snapshot + alg1/2 sweep", true)] {
        let backend =
            ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(SHARDS));
        for (&id, spec) in &fleet.specs {
            backend.register_empty(id, Arc::clone(spec), Nanos::ZERO);
        }
        let mut producer = backend.producer();
        for event in &fleet.events {
            producer.observe(*event);
        }
        producer.flush();
        // Consume the pending replay window once so the timed sweeps
        // measure comparison + timers, not first-replay cost.
        let _ = backend.checkpoint_window(fleet.end_time, &[], &fleet.snapshots);
        if with_provider {
            backend.set_snapshot_provider(fleet.snapshot_table());
        }
        let iters = 400u32;
        let start = Instant::now();
        for i in 0..iters {
            let _ = backend.checkpoint(CheckpointScope::Shard(i as usize % SHARDS), fleet.end_time);
        }
        let per = start.elapsed() / iters;
        let _ = backend.drain_violations();
        backend.shutdown();
        println!("{}", row(&[mode.into(), format!("{}", per.as_nanos())], &widths));
        rows.push(CkptRow { mode, ns_per_sweep: per.as_nanos() as f64 });
    }
    rows
}

/// One EXP-ABL-PRD row: checkpoint cost with the predictive pass off
/// vs. on, over the same contended window.
struct PredictRow {
    mode: &'static str,
    ns_per_checkpoint: f64,
    predictions: usize,
}

/// EXP-ABL-PRD: cost of the happens-before predictive pass at a
/// checkpoint. Both rows replay the same seeded contended allocator
/// schedule (`sweep::seeded_allocator_schedule`) through a fresh
/// `Detector`; the only difference is the `PredictMode` knob. The off
/// row is the default configuration — its cost must match plain
/// checkpointing, which is the "default-off hot path is unchanged"
/// claim the baseline records.
fn ablation_predict_sweep() -> Vec<PredictRow> {
    println!("EXP-ABL-PRD — predictive pass cost at a checkpoint (contended window)");
    let widths = [26usize, 18, 14];
    println!("{}", row(&["mode".into(), "ns/checkpoint".into(), "predicted".into()], &widths));
    println!("{}", rule_line(&widths));
    let (al, events) = sweep::seeded_allocator_schedule(4, 3, 11);
    let spec = Arc::new(al.spec.clone());
    let conds = al.spec.cond_count();
    let monitor = MonitorId::new(0);
    let end = Nanos::new(10 * (events.len() as u64 + 1));
    let mut rows = Vec::new();
    for (mode, predict) in [
        ("predict off (default)", PredictMode::Off),
        ("predict at checkpoint", PredictMode::Checkpoint),
    ] {
        let cfg = DetectorConfig::builder()
            .t_max(Nanos::MAX)
            .t_io(Nanos::MAX)
            .t_limit(Nanos::new(150))
            .predict(predict)
            .build();
        let iters = 200u32;
        let mut total = std::time::Duration::ZERO;
        let mut predictions = 0usize;
        for _ in 0..iters {
            let mut det = Detector::new(cfg);
            det.register(
                monitor,
                Arc::clone(&spec),
                &MonitorState::with_resources(conds, 1),
                Nanos::ZERO,
            );
            let snaps: HashMap<_, _> = HashMap::new();
            let start = Instant::now();
            let report = det.checkpoint(end, &events, &snaps);
            total += start.elapsed();
            predictions = report.predicted.len();
        }
        let per = total / iters;
        println!(
            "{}",
            row(&[mode.into(), format!("{}", per.as_nanos()), predictions.to_string()], &widths)
        );
        rows.push(PredictRow { mode, ns_per_checkpoint: per.as_nanos() as f64, predictions });
    }
    rows
}

/// Records the five ablations as a JSON baseline (hand-rolled JSON,
/// consistent with `BENCH_sharded.json` / `BENCH_table1.json`).
fn write_baseline(
    out_path: &str,
    rec: &[RecRow],
    latency: &[LatencyRow],
    det: &[DetRow],
    ckpt: &[CkptRow],
    predict: &[PredictRow],
) {
    let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"EXP-ABL recording/latency/detector ablations\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"paper_second_ms\": {},", paper_second().as_millis());
    let _ = writeln!(
        json,
        "  \"caveats\": \"Recorded on a {hw_threads}-hardware-thread container: wall-clock \
         rows (EXP-ABL-REC, EXP-ABL-DET, EXP-ABL-CKPT) are time-sliced and noisy; re-record \
         on a multi-core host. EXP-ABL-RT runs in simulator virtual time and is \
         deterministic. The recording-only ratio here uses the RMON_ABLATION_ITEMS workload; \
         the canonical recording_only_ratio baseline lives in BENCH_table1.json. \
         shard_sweep_cost times one scoped per-shard checkpoint round-trip on a quiescent \
         4-shard backend: timer-only vs snapshot + Algorithm-1/2 through a \
         SnapshotProvider. predict_sweep_cost times one full-window checkpoint over a \
         contended seeded allocator schedule with PredictMode Off (the default) vs \
         Checkpoint; the off row documents that the predictive pass costs nothing unless \
         opted in.\",",
    );
    let _ = writeln!(json, "  \"recording_cost\": [");
    for (i, r) in rec.iter().enumerate() {
        let comma = if i + 1 == rec.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"ns_per_op\": {:.1}, \"ratio\": {:.3}}}{comma}",
            r.name, r.ns_per_op, r.ratio
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"detection_latency\": [");
    for (i, r) in latency.iter().enumerate() {
        let comma = if i + 1 == latency.len() { "" } else { "," };
        let lat = r.latency_ns.map(|l| l.to_string()).unwrap_or_else(|| "\"realtime\"".to_string());
        let _ = writeln!(
            json,
            "    {{\"interval_us\": {}, \"fault\": \"{}\", \"latency_ns\": {lat}, \
             \"checks\": {}}}{comma}",
            r.interval_us, r.fault, r.checks
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"checkpoint_cost\": [");
    for (i, r) in det.iter().enumerate() {
        let comma = if i + 1 == det.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"window_events\": {}, \"ns_per_event\": {:.1}}}{comma}",
            r.events, r.ns_per_event
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"shard_sweep_cost\": [");
    for (i, r) in ckpt.iter().enumerate() {
        let comma = if i + 1 == ckpt.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"ns_per_sweep\": {:.0}}}{comma}",
            r.mode, r.ns_per_sweep
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"predict_sweep_cost\": [");
    for (i, r) in predict.iter().enumerate() {
        let comma = if i + 1 == predict.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"ns_per_checkpoint\": {:.0}, \"predictions\": {}}}{comma}",
            r.mode, r.ns_per_checkpoint, r.predictions
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write baseline json");
}
