//! Ablation studies backing the design discussion:
//!
//! * **EXP-ABL-REC** — the cost split between event recording and
//!   periodic checking (the paper's text attributes the overhead to
//!   both; we separate them);
//! * **EXP-ABL-RT** — detection latency vs. checking interval, down to
//!   the paper's *"when T = 1, the checking becomes real-time"* limit;
//! * **EXP-ABL-DET** — checkpoint cost as a function of the event-window
//!   size (the scalability of the checking lists).
//!
//! Run with: `cargo run -p rmon-bench --bin ablation --release`

use rmon_bench::{paper_second, row, rule_line};
use rmon_core::detect::Detector;
use rmon_core::{DetectorConfig, FaultKind, Nanos};
use rmon_rt::overhead::{measure, Mode, Workload};
use rmon_workloads::{faultset, sweep};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    ablation_recording();
    println!();
    ablation_latency();
    println!();
    ablation_detector_cost();
}

/// EXP-ABL-REC: Plain vs. RecordingOnly vs. Full.
fn ablation_recording() {
    let ps = paper_second();
    // Uncontended alternating workload: isolates per-op instrumentation
    // cost (see the table1 binary for the rationale).
    let w = Workload { producers: 1, consumers: 0, items_per_producer: 150_000, capacity: 64 };
    println!("EXP-ABL-REC — recording vs. checking cost ({} ops)", w.total_ops());
    let widths = [22usize, 14, 10];
    println!("{}", row(&["mode".into(), "ns/op".into(), "ratio".into()], &widths));
    println!("{}", rule_line(&widths));
    let base = measure(w, Mode::Plain).ns_per_op;
    for (name, mode) in [
        ("plain (baseline)", Mode::Plain),
        ("recording only", Mode::RecordingOnly),
        ("full, T = 1 ps", Mode::Full { interval: ps }),
    ] {
        let m = measure(w, mode);
        println!(
            "{}",
            row(
                &[name.into(), format!("{:.1}", m.ns_per_op), format!("{:.3}", m.ns_per_op / base)],
                &widths
            )
        );
    }
}

/// EXP-ABL-RT: detection latency vs. checking interval in the
/// simulator (virtual time, fully deterministic).
fn ablation_latency() {
    println!("EXP-ABL-RT — detection latency vs. checking interval (virtual time)");
    let widths = [16usize, 10, 14, 14];
    println!(
        "{}",
        row(&["interval".into(), "fault".into(), "latency".into(), "checks/run".into()], &widths)
    );
    println!("{}", rule_line(&widths));
    // Faults detected by the periodic algorithms (latency ≈ interval)
    // vs. a user-process fault caught in real time (latency ≈ 0).
    let cases =
        [FaultKind::EnterProcessLost, FaultKind::SendExceedsCapacity, FaultKind::DoubleAcquire];
    for interval_us in [50u64, 200, 1_000, 5_000] {
        for fault in cases {
            let mut sim = faultset::build_case(fault, 0);
            let cfg = DetectorConfig::builder()
                .check_interval(Nanos::from_micros(interval_us))
                .t_max(Nanos::from_millis(2))
                .t_io(Nanos::from_millis(4))
                .t_limit(Nanos::from_millis(3))
                .build();
            let out = rmon_sim::run_with_detection(&mut sim, cfg);
            let lat =
                out.detection_latency().map(|l| l.to_string()).unwrap_or_else(|| "realtime".into());
            println!(
                "{}",
                row(
                    &[
                        format!("{interval_us} us"),
                        fault.code().into(),
                        lat,
                        out.reports.len().to_string(),
                    ],
                    &widths
                )
            );
        }
    }
}

/// EXP-ABL-DET: wall time of one checkpoint vs. window size.
fn ablation_detector_cost() {
    println!("EXP-ABL-DET — checkpoint cost vs. event-window size");
    let widths = [12usize, 14, 14];
    println!("{}", row(&["events".into(), "total".into(), "ns/event".into()], &widths));
    println!("{}", rule_line(&widths));
    for (target, trace) in sweep::window_sweep(1) {
        let events = &trace.events[..target];
        // Fresh detector per run; replay the window once, timed.
        let iterations = 50;
        let mut total = std::time::Duration::ZERO;
        for _ in 0..iterations {
            let mut det = Detector::new(DetectorConfig::without_timeouts());
            det.register_empty(trace.monitor, Arc::clone(&trace.spec), Nanos::ZERO);
            let snaps: HashMap<_, _> = HashMap::new();
            let start = Instant::now();
            let report = det.checkpoint(trace.end_time, events, &snaps);
            total += start.elapsed();
            assert_eq!(report.events_checked as usize, events.len());
        }
        let per = total / iterations as u32;
        println!(
            "{}",
            row(
                &[
                    target.to_string(),
                    format!("{per:?}"),
                    format!("{:.1}", per.as_nanos() as f64 / target as f64),
                ],
                &widths
            )
        );
    }
}
