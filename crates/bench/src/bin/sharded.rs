//! EXP-SVC — detection-backend throughput (inline vs. sharded vs.
//! scheduled, single- and multi-producer), recorded as the
//! `BENCH_sharded.json` baseline.
//!
//! Drives the `rmon-workloads::sweep` fleet scenario (8 concurrent
//! producer/consumer monitors, interleaved into one stream) through
//! the [`DetectionBackend`] trait:
//!
//! * the inline baseline: one [`Detector`] observing every event and
//!   running the periodic checkpoint on the caller's thread;
//! * the sharded backend at 1 / 2 / 4 shards, one producer handle:
//!   per-handle batch buffers drained by bounded-channel sends into
//!   per-shard workers, then a fanned-out checkpoint;
//! * the sharded backend at 4 shards with 2 / 4 **concurrent producer
//!   threads**, each owning its own handle (the multi-producer
//!   ingestion front-end — no mutex shared between the producers on
//!   the observe path);
//! * the scheduled backend at 4 shards (sharding plus the per-shard
//!   checkpoint scheduler ticking in the background);
//! * the scheduled backend at 4 shards with the fleet's gated
//!   `SnapshotTable` registered as its `SnapshotProvider`
//!   (`scheduled-4-ckpt`): the background ticks are full per-shard
//!   snapshot + Algorithm-1/2 sweeps instead of timer-only checks —
//!   the cost of continuous full-fidelity checkpointing riding on the
//!   same ingest path;
//! * the distributed path (`distributed-w1/2/4`): the same fleet
//!   split across 1 / 2 / 4 `rmon-net` remote workers streaming over
//!   an in-process duplex transport into one `DetectionService` over
//!   the inline backend — the wire-protocol + session-layer overhead
//!   relative to the in-process rows. On one hardware thread the
//!   workers and the service time-slice, so these rows price the
//!   codec and session machinery, not network parallelism;
//! * the async backend at 4 shards in each instrumentation mode
//!   (`async-sync-4` / `async-async-4` / `async-hybrid-4`): the same
//!   fleet through the executor-driven drainers, pricing the futures
//!   machinery against the plain sharded path mode by mode.
//!
//! A separate **saturation** block runs the
//! `rmon-workloads::saturation` workload — ≥ 1000 concurrent producer
//! threads, one monitor each, tiny handle batches — against the
//! blocking sharded backend and the async backend (`Mode::Async` and
//! `Mode::Hybrid`). Its headline number is `slowest_producer`: the
//! worst wall time instrumentation charged any single monitored
//! thread. Under saturation the synchronous hand-off parks producers
//! on full shard inboxes while the async queues absorb the burst, so
//! the sync row degrades where the async row stays flat — both rows
//! must stay lossless (every offered event ingested after the closing
//! barrier).
//!
//! Two throughputs are reported per mode, both in events per second of
//! *measured wall time*:
//!
//! * `ingest` — the caller-side cost of handing the stream to the
//!   detection layer. For the inline detector this includes the
//!   Algorithm-3 checks (they run synchronously on the caller); for
//!   the sharded paths it is buffer-append + batch send, with checking
//!   proceeding on the worker shards. This is the paper's own lens:
//!   Table 1 measures the overhead detection imposes *on the monitored
//!   application*, and offloading it is what the service is for.
//! * `end_to_end` — ingest + checkpoint barrier, i.e. until every
//!   violation verdict is in. On a multi-core host the shards
//!   parallelize the checking; on a single core the service costs a
//!   small scheduling overhead over inline.
//!
//! Usage: `sharded [OUT.json]` (default `BENCH_sharded.json` in the
//! current directory). Environment: `RMON_SHARDED_RUNS` (default 5),
//! `RMON_SHARDED_ITEMS` (default 60), `RMON_SAT_PRODUCERS` (default
//! 1000), `RMON_SAT_ROUNDS` (default 16), `RMON_SAT_RUNS` (default 2).
//!
//! [`Detector`]: rmon_core::detect::Detector
//! [`DetectionBackend`]: rmon_core::detect::DetectionBackend

use rmon_bench::{row, rule_line};
use rmon_core::detect::{
    AsyncBackend, DetectionBackend, InlineBackend, ScheduledBackend, SchedulerConfig,
    ServiceConfig, ShardedBackend,
};
use rmon_core::{DetectorConfig, Mode, Nanos};
use rmon_workloads::distributed::{drive_fleet_distributed, DistributedConfig};
use rmon_workloads::saturation::{run_saturation, SaturationConfig};
use rmon_workloads::sweep::{
    drive_fleet_backend, drive_fleet_multi, drive_inline_fleet, fleet_trace, FleetTrace,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

const FLEET_MONITORS: usize = 8;
const BATCH: usize = 256;
/// Tiny handle batch for the saturation block: with far more producers
/// than shards, small batches are what turn the blocking hand-off into
/// the bottleneck the async modes exist to remove.
const SAT_BATCH: usize = 8;
/// Shallow per-shard inbox for the saturation block. The sync hand-off
/// blocks on a full inbox, so with 1000 producers and 4 two-deep
/// inboxes the stall is structural; the async producers enqueue into
/// the backend's unbounded queues and never see this bound (only its
/// drainers do).
const SAT_INBOX: usize = 2;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const PRODUCER_COUNTS: [usize; 2] = [2, 4];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// One mode's best-of-N measurement.
struct Measurement {
    mode: String,
    shards: usize,
    producers: usize,
    ingest_events_per_sec: f64,
    end_to_end_events_per_sec: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default).max(1)
}

/// Times one inline run via the shared fleet driver (raw detector —
/// the paper's exact shape, no trait indirection).
fn run_inline(fleet: &FleetTrace) -> (f64, f64) {
    let (report, timing) = drive_inline_fleet(fleet);
    assert!(report.is_clean(), "clean fleet must stay clean");
    (timing.ingest.as_secs_f64(), timing.total.as_secs_f64())
}

/// Times one single-handle run against a fresh backend.
fn run_backend(fleet: &FleetTrace, backend: &dyn DetectionBackend) -> (f64, f64) {
    let (report, _, timing) = drive_fleet_backend(fleet, backend);
    assert!(report.is_clean(), "clean fleet must stay clean");
    (timing.ingest.as_secs_f64(), timing.total.as_secs_f64())
}

/// Times one multi-producer run against a fresh backend.
fn run_multi(fleet: &FleetTrace, backend: &dyn DetectionBackend, producers: usize) -> (f64, f64) {
    let (report, _, timing) = drive_fleet_multi(fleet, backend, producers);
    assert!(report.is_clean(), "clean fleet must stay clean");
    (timing.ingest.as_secs_f64(), timing.total.as_secs_f64())
}

/// Times one distributed run: `workers` remote workers over in-process
/// duplex transports into a `DetectionService` over the inline
/// backend. `ingest` spans until the service has ingested the whole
/// stream (wire + session + remap included), `total` adds the fleet
/// checkpoint sweep.
fn run_distributed(fleet: &FleetTrace, workers: usize) -> (f64, f64) {
    let backend = Arc::new(InlineBackend::new(DetectorConfig::without_timeouts()));
    let cfg = DistributedConfig { workers, batch: BATCH, ..DistributedConfig::default() };
    let outcome = drive_fleet_distributed(fleet, backend, &cfg);
    assert!(outcome.verdicts.is_empty(), "clean fleet must stay clean");
    assert!(outcome.quarantined.is_empty(), "healthy workers must not be quarantined");
    (outcome.ingest.as_secs_f64(), outcome.total.as_secs_f64())
}

fn measure<F: FnMut() -> (f64, f64)>(runs: usize, events: u64, mut f: F) -> (f64, f64) {
    let mut best_ingest = 0f64;
    let mut best_total = 0f64;
    for _ in 0..runs {
        let (ingest, total) = f();
        best_ingest = best_ingest.max(events as f64 / ingest.max(1e-12));
        best_total = best_total.max(events as f64 / total.max(1e-12));
    }
    (best_ingest, best_total)
}

fn sharded_backend(shards: usize) -> ShardedBackend {
    ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(shards))
        .with_batch(BATCH)
}

/// The adaptive-batch variant: handles start at a small batch (low
/// latency) and double toward `4 × BATCH` while the shard inboxes keep
/// absorbing flushes without pressure.
fn adaptive_backend(shards: usize) -> ShardedBackend {
    ShardedBackend::new(DetectorConfig::without_timeouts(), ServiceConfig::new(shards))
        .with_adaptive_batch(8, BATCH * 4)
}

fn scheduled_backend(shards: usize) -> ScheduledBackend {
    ScheduledBackend::new(
        DetectorConfig::without_timeouts(),
        ServiceConfig::new(shards),
        SchedulerConfig::new(Duration::from_millis(5)),
    )
    .with_batch(BATCH)
}

/// The checkpointing-scheduled mode: the background ticks run the full
/// snapshot + Algorithm-1/2 sweep through the fleet's gated snapshot
/// table (comparisons defer until the replay is quiescent, so mid-drive
/// sweeps stay sound).
fn scheduled_ckpt_backend(shards: usize, fleet: &FleetTrace) -> ScheduledBackend {
    let backend = scheduled_backend(shards);
    backend.set_snapshot_provider(fleet.snapshot_table());
    backend
}

/// The async backend with every monitor starting in `mode`.
fn async_backend(mode: Mode, shards: usize, batch: usize) -> AsyncBackend {
    let cfg = DetectorConfig { mode, ..DetectorConfig::without_timeouts() };
    AsyncBackend::new(cfg, ServiceConfig::new(shards)).with_batch(batch)
}

/// The saturation-block service shape: `SAT_INBOX`-deep shard inboxes.
fn sat_service() -> ServiceConfig {
    ServiceConfig::new(4).queue_capacity(SAT_INBOX)
}

/// The saturation-block async backend: same shallow inner inboxes, so
/// only the producer-facing hand-off differs between the rows.
fn sat_async_backend(mode: Mode) -> AsyncBackend {
    let cfg = DetectorConfig { mode, ..DetectorConfig::without_timeouts() };
    AsyncBackend::new(cfg, sat_service()).with_batch(SAT_BATCH)
}

/// One saturation mode's best-of-N measurement. `slowest_producer_ms`
/// is the minimum across runs of the worst single-producer wall time —
/// the steady-state instrumentation charge, not a scheduler hiccup.
struct SatMeasurement {
    mode: String,
    shards: usize,
    producers: usize,
    ingest_events_per_sec: f64,
    end_to_end_events_per_sec: f64,
    slowest_producer_ms: f64,
    lossless: bool,
}

/// Runs the saturation workload `runs` times against fresh backends
/// from `make`, folding the best throughputs and the lowest
/// worst-producer time; `lossless` must hold on every run.
fn measure_saturation<F: Fn() -> Box<dyn DetectionBackend>>(
    label: &str,
    shards: usize,
    runs: usize,
    cfg: &SaturationConfig,
    make: F,
) -> SatMeasurement {
    let events = cfg.events();
    let mut best_ingest = 0f64;
    let mut best_total = 0f64;
    let mut best_slowest = f64::INFINITY;
    let mut lossless = true;
    for _ in 0..runs {
        let backend = make();
        let report = run_saturation(backend.as_ref(), cfg);
        assert!(report.clean, "{label}: the saturation workload is clean by construction");
        lossless &= report.lossless();
        best_ingest = best_ingest.max(events as f64 / report.ingest.as_secs_f64().max(1e-12));
        best_total = best_total.max(events as f64 / report.total.as_secs_f64().max(1e-12));
        best_slowest = best_slowest.min(report.slowest_producer.as_secs_f64() * 1e3);
        backend.shutdown();
    }
    SatMeasurement {
        mode: label.to_string(),
        shards,
        producers: cfg.producers,
        ingest_events_per_sec: best_ingest,
        end_to_end_events_per_sec: best_total,
        slowest_producer_ms: best_slowest,
        lossless,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sharded.json".to_string());
    let runs = env_usize("RMON_SHARDED_RUNS", 5);
    let items = env_usize("RMON_SHARDED_ITEMS", 60);
    let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let fleet = fleet_trace(FLEET_MONITORS, items, 7);
    let events = fleet.events.len() as u64;
    println!(
        "EXP-SVC: {} monitors, {} events, batch {}, best of {} runs, {} hardware thread(s)\n",
        fleet.monitors(),
        events,
        BATCH,
        runs,
        hw_threads
    );

    let mut results = Vec::new();
    // Warm-up pass so first-touch costs (page faults, lazy init) hit
    // nobody's measurement in particular.
    let _ = run_inline(&fleet);

    let (ingest, total) = measure(runs, events, || run_inline(&fleet));
    results.push(Measurement {
        mode: "inline".into(),
        shards: 0,
        producers: 1,
        ingest_events_per_sec: ingest,
        end_to_end_events_per_sec: total,
    });
    for &shards in &SHARD_COUNTS {
        let (ingest, total) =
            measure(runs, events, || run_backend(&fleet, &sharded_backend(shards)));
        results.push(Measurement {
            mode: format!("sharded-{shards}"),
            shards,
            producers: 1,
            ingest_events_per_sec: ingest,
            end_to_end_events_per_sec: total,
        });
    }
    for &producers in &PRODUCER_COUNTS {
        let (ingest, total) =
            measure(runs, events, || run_multi(&fleet, &sharded_backend(4), producers));
        results.push(Measurement {
            mode: format!("sharded-4xp{producers}"),
            shards: 4,
            producers,
            ingest_events_per_sec: ingest,
            end_to_end_events_per_sec: total,
        });
    }
    let (ingest, total) = measure(runs, events, || run_backend(&fleet, &adaptive_backend(4)));
    results.push(Measurement {
        mode: "sharded-4-adaptive".into(),
        shards: 4,
        producers: 1,
        ingest_events_per_sec: ingest,
        end_to_end_events_per_sec: total,
    });
    let (ingest, total) = measure(runs, events, || run_backend(&fleet, &scheduled_backend(4)));
    results.push(Measurement {
        mode: "scheduled-4".into(),
        shards: 4,
        producers: 1,
        ingest_events_per_sec: ingest,
        end_to_end_events_per_sec: total,
    });
    let (ingest, total) =
        measure(runs, events, || run_backend(&fleet, &scheduled_ckpt_backend(4, &fleet)));
    results.push(Measurement {
        mode: "scheduled-4-ckpt".into(),
        shards: 4,
        producers: 1,
        ingest_events_per_sec: ingest,
        end_to_end_events_per_sec: total,
    });
    for &workers in &WORKER_COUNTS {
        let (ingest, total) = measure(runs, events, || run_distributed(&fleet, workers));
        results.push(Measurement {
            mode: format!("distributed-w{workers}"),
            shards: 0,
            producers: workers,
            ingest_events_per_sec: ingest,
            end_to_end_events_per_sec: total,
        });
    }
    for (label, mode) in [
        ("async-sync-4", Mode::Sync),
        ("async-async-4", Mode::Async),
        ("async-hybrid-4", Mode::Hybrid(Nanos::from_micros(50))),
    ] {
        let (ingest, total) =
            measure(runs, events, || run_backend(&fleet, &async_backend(mode, 4, BATCH)));
        results.push(Measurement {
            mode: label.into(),
            shards: 4,
            producers: 1,
            ingest_events_per_sec: ingest,
            end_to_end_events_per_sec: total,
        });
    }

    // The saturation block: the many-producer stress shape, sync
    // hand-off vs. the async instrumentation modes.
    let sat_cfg = SaturationConfig {
        producers: env_usize("RMON_SAT_PRODUCERS", 1000),
        rounds: env_usize("RMON_SAT_ROUNDS", 16),
    };
    let sat_runs = env_usize("RMON_SAT_RUNS", 2);
    println!(
        "\nsaturation: {} producers x {} rounds ({} events), batch {}, inbox depth {}, \
         best of {} runs",
        sat_cfg.producers,
        sat_cfg.rounds,
        sat_cfg.events(),
        SAT_BATCH,
        SAT_INBOX,
        sat_runs
    );
    let p = sat_cfg.producers;
    let sat_results = vec![
        measure_saturation(&format!("saturation-sync-p{p}"), 4, sat_runs, &sat_cfg, || {
            Box::new(
                ShardedBackend::new(DetectorConfig::without_timeouts(), sat_service())
                    .with_batch(SAT_BATCH),
            )
        }),
        measure_saturation(&format!("saturation-async-p{p}"), 4, sat_runs, &sat_cfg, || {
            Box::new(sat_async_backend(Mode::Async))
        }),
        measure_saturation(&format!("saturation-hybrid-p{p}"), 4, sat_runs, &sat_cfg, || {
            Box::new(sat_async_backend(Mode::Hybrid(Nanos::from_micros(50))))
        }),
    ];
    for m in &sat_results {
        assert!(m.lossless, "{}: every offered event must be ingested", m.mode);
    }

    let widths = [14usize, 8, 10, 18, 18];
    println!(
        "{}",
        row(
            &[
                "mode".into(),
                "shards".into(),
                "producers".into(),
                "ingest ev/s".into(),
                "end-to-end ev/s".into()
            ],
            &widths
        )
    );
    println!("{}", rule_line(&widths));
    for m in &results {
        println!(
            "{}",
            row(
                &[
                    m.mode.clone(),
                    if m.shards == 0 { "-".into() } else { m.shards.to_string() },
                    m.producers.to_string(),
                    format!("{:.0}", m.ingest_events_per_sec),
                    format!("{:.0}", m.end_to_end_events_per_sec),
                ],
                &widths
            )
        );
    }

    let sat_widths = [22usize, 8, 10, 18, 18, 14];
    println!(
        "\n{}",
        row(
            &[
                "saturation mode".into(),
                "shards".into(),
                "producers".into(),
                "ingest ev/s".into(),
                "end-to-end ev/s".into(),
                "slowest (ms)".into(),
            ],
            &sat_widths
        )
    );
    println!("{}", rule_line(&sat_widths));
    for m in &sat_results {
        println!(
            "{}",
            row(
                &[
                    m.mode.clone(),
                    m.shards.to_string(),
                    m.producers.to_string(),
                    format!("{:.0}", m.ingest_events_per_sec),
                    format!("{:.0}", m.end_to_end_events_per_sec),
                    format!("{:.3}", m.slowest_producer_ms),
                ],
                &sat_widths
            )
        );
    }
    let sat_degradation =
        sat_results[0].slowest_producer_ms / sat_results[1].slowest_producer_ms.max(1e-9);
    println!(
        "\nsaturation: sync slowest producer is {sat_degradation:.1}x the async slowest producer"
    );

    let inline = &results[0];
    let at4 = results
        .iter()
        .find(|m| m.shards == 4 && m.producers == 1 && m.mode.starts_with("sharded"))
        .expect("4-shard mode measured");
    let ingest_speedup = at4.ingest_events_per_sec / inline.ingest_events_per_sec;
    let e2e_ratio = at4.end_to_end_events_per_sec / inline.end_to_end_events_per_sec;
    println!(
        "\nsharded-4 vs inline: ingest {ingest_speedup:.2}x, end-to-end {e2e_ratio:.2}x \
         ({hw_threads} hardware threads)"
    );

    // Hand-rolled JSON: the serde shim has no real formats, and the
    // schema is flat enough that string assembly stays readable.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"EXP-SVC detection backend throughput\",");
    let _ = writeln!(json, "  \"workload\": \"rmon-workloads::sweep::fleet_trace\",");
    let _ = writeln!(json, "  \"monitors\": {FLEET_MONITORS},");
    let _ = writeln!(json, "  \"items_per_producer\": {items},");
    let _ = writeln!(json, "  \"events\": {events},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"runs\": {runs},");
    let _ = writeln!(json, "  \"hardware_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"metric\": \"events per second, best of runs\",");
    let _ = writeln!(
        json,
        "  \"caveats\": \"With 1 hardware thread the end-to-end ratios understate the \
         sharded/scheduled backends (worker checking cannot run in parallel) and the \
         multi-producer ingest numbers measure time-sliced, not concurrent, producers; \
         re-record on a multi-core host for the parallel-checking and concurrent-ingest \
         wins. Ingest speedups (caller-side offload) are meaningful at any thread \
         count. The distributed rows run worker sessions and the service time-sliced \
         on the same thread over an in-process transport: they price the wire codec \
         and session layer, not network parallelism — per-worker rates divide the \
         fleet rate by the worker count. The async-sync/async-hybrid rows block (or \
         wait out a timeout) on a cross-thread delivery ticket per event, so on one \
         hardware thread they pay a scheduler round-trip per event; async-async is \
         the fire-and-forget fast path.\","
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"shards\": {}, \"producers\": {}, \
             \"ingest_events_per_sec\": {:.0}, \"end_to_end_events_per_sec\": {:.0}}}{comma}",
            m.mode, m.shards, m.producers, m.ingest_events_per_sec, m.end_to_end_events_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"saturation\": {{");
    let _ = writeln!(json, "    \"workload\": \"rmon-workloads::saturation\",");
    let _ = writeln!(json, "    \"producers\": {},", sat_cfg.producers);
    let _ = writeln!(json, "    \"rounds\": {},", sat_cfg.rounds);
    let _ = writeln!(json, "    \"events\": {},", sat_cfg.events());
    let _ = writeln!(json, "    \"batch\": {SAT_BATCH},");
    let _ = writeln!(json, "    \"inbox_depth\": {SAT_INBOX},");
    let _ = writeln!(json, "    \"runs\": {sat_runs},");
    let _ = writeln!(
        json,
        "    \"caveats\": \"slowest_producer_ms is the worst wall time instrumentation \
         charged any single monitored thread (best across runs). With {SAT_INBOX}-deep \
         shard inboxes and far more producers than shard workers, the sync row blocks \
         producers on full inboxes — it degrades by design; the async and hybrid rows \
         enqueue into the backend's unbounded per-shard queues (only its drainers see \
         the inbox bound) and charge producers a lock-and-push. On 1 hardware thread \
         all producers time-slice, which understates the sync stall (a blocked producer \
         just yields its slice) — re-record on a multi-core host for the real gap. \
         Every row must stay lossless: offered events == ingested events after the \
         closing barrier.\","
    );
    let _ = writeln!(json, "    \"results\": [");
    for (i, m) in sat_results.iter().enumerate() {
        let comma = if i + 1 == sat_results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"mode\": \"{}\", \"shards\": {}, \"producers\": {}, \
             \"ingest_events_per_sec\": {:.0}, \"end_to_end_events_per_sec\": {:.0}, \
             \"slowest_producer_ms\": {:.3}, \"lossless\": {}}}{comma}",
            m.mode,
            m.shards,
            m.producers,
            m.ingest_events_per_sec,
            m.end_to_end_events_per_sec,
            m.slowest_producer_ms,
            m.lossless
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"sync_vs_async_slowest_producer_ratio\": {sat_degradation:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"distributed_per_worker_events_per_sec\": {{");
    for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
        let m = results
            .iter()
            .find(|m| m.mode == format!("distributed-w{workers}"))
            .expect("distributed mode measured");
        let comma = if i + 1 == WORKER_COUNTS.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"w{workers}\": {:.0}{comma}",
            m.ingest_events_per_sec / workers as f64
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sharded4_vs_inline_ingest_speedup\": {ingest_speedup:.3},");
    let _ = writeln!(json, "  \"sharded4_vs_inline_end_to_end_ratio\": {e2e_ratio:.3}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("\nwrote {out_path}");
}
