//! EXP-SVC — inline vs. sharded detection-service throughput, recorded
//! as the `BENCH_sharded.json` baseline.
//!
//! Drives the `rmon-workloads::sweep` fleet scenario (8 concurrent
//! producer/consumer monitors, interleaved into one stream) through
//!
//! * the inline baseline: one [`Detector`] observing every event and
//!   running the periodic checkpoint on the caller's thread, and
//! * the sharded service at 1 / 2 / 4 shards: batched ingestion over
//!   bounded channels into per-shard workers, then a fanned-out
//!   checkpoint.
//!
//! Two throughputs are reported per mode, both in events per second of
//! *measured wall time*:
//!
//! * `ingest` — the caller-side cost of handing the stream to the
//!   detection layer. For the inline detector this includes the
//!   Algorithm-3 checks (they run synchronously on the caller); for
//!   the service it is partition + bounded-channel send, with checking
//!   proceeding on the worker shards. This is the paper's own lens:
//!   Table 1 measures the overhead detection imposes *on the monitored
//!   application*, and offloading it is what the service is for.
//! * `end_to_end` — ingest + flush barrier + full checkpoint, i.e.
//!   until every violation verdict is in. On a multi-core host the
//!   shards parallelize the checking; on a single core the service
//!   costs a small scheduling overhead over inline.
//!
//! Usage: `sharded [OUT.json]` (default `BENCH_sharded.json` in the
//! current directory). Environment: `RMON_SHARDED_RUNS` (default 5),
//! `RMON_SHARDED_ITEMS` (default 60).
//!
//! [`Detector`]: rmon_core::detect::Detector

use rmon_bench::{row, rule_line};
use rmon_workloads::sweep::{drive_inline_fleet, drive_sharded_fleet, fleet_trace, FleetTrace};
use std::fmt::Write as _;

const FLEET_MONITORS: usize = 8;
const BATCH: usize = 256;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One mode's best-of-N measurement.
struct Measurement {
    mode: String,
    shards: usize,
    ingest_events_per_sec: f64,
    end_to_end_events_per_sec: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default).max(1)
}

/// Times one inline run via the shared fleet driver.
fn run_inline(fleet: &FleetTrace) -> (f64, f64) {
    let (report, timing) = drive_inline_fleet(fleet);
    assert!(report.is_clean(), "clean fleet must stay clean");
    (timing.ingest.as_secs_f64(), timing.total.as_secs_f64())
}

/// Times one sharded run via the shared fleet driver.
fn run_sharded(fleet: &FleetTrace, shards: usize) -> (f64, f64) {
    let (report, _, timing) = drive_sharded_fleet(fleet, shards, BATCH);
    assert!(report.is_clean(), "clean fleet must stay clean");
    (timing.ingest.as_secs_f64(), timing.total.as_secs_f64())
}

fn measure<F: FnMut() -> (f64, f64)>(runs: usize, events: u64, mut f: F) -> (f64, f64) {
    let mut best_ingest = 0f64;
    let mut best_total = 0f64;
    for _ in 0..runs {
        let (ingest, total) = f();
        best_ingest = best_ingest.max(events as f64 / ingest.max(1e-12));
        best_total = best_total.max(events as f64 / total.max(1e-12));
    }
    (best_ingest, best_total)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sharded.json".to_string());
    let runs = env_usize("RMON_SHARDED_RUNS", 5);
    let items = env_usize("RMON_SHARDED_ITEMS", 60);

    let fleet = fleet_trace(FLEET_MONITORS, items, 7);
    let events = fleet.events.len() as u64;
    println!(
        "EXP-SVC: {} monitors, {} events, batch {}, best of {} runs\n",
        fleet.monitors(),
        events,
        BATCH,
        runs
    );

    let mut results = Vec::new();
    // Warm-up pass so first-touch costs (page faults, lazy init) hit
    // nobody's measurement in particular.
    let _ = run_inline(&fleet);

    let (ingest, total) = measure(runs, events, || run_inline(&fleet));
    results.push(Measurement {
        mode: "inline".into(),
        shards: 0,
        ingest_events_per_sec: ingest,
        end_to_end_events_per_sec: total,
    });
    for &shards in &SHARD_COUNTS {
        let (ingest, total) = measure(runs, events, || run_sharded(&fleet, shards));
        results.push(Measurement {
            mode: format!("sharded-{shards}"),
            shards,
            ingest_events_per_sec: ingest,
            end_to_end_events_per_sec: total,
        });
    }

    let widths = [12usize, 8, 18, 18];
    println!(
        "{}",
        row(
            &["mode".into(), "shards".into(), "ingest ev/s".into(), "end-to-end ev/s".into()],
            &widths
        )
    );
    println!("{}", rule_line(&widths));
    for m in &results {
        println!(
            "{}",
            row(
                &[
                    m.mode.clone(),
                    if m.shards == 0 { "-".into() } else { m.shards.to_string() },
                    format!("{:.0}", m.ingest_events_per_sec),
                    format!("{:.0}", m.end_to_end_events_per_sec),
                ],
                &widths
            )
        );
    }

    let inline = &results[0];
    let at4 = results.iter().find(|m| m.shards == 4).expect("4-shard mode measured");
    let ingest_speedup = at4.ingest_events_per_sec / inline.ingest_events_per_sec;
    let e2e_ratio = at4.end_to_end_events_per_sec / inline.end_to_end_events_per_sec;
    println!(
        "\nsharded-4 vs inline: ingest {ingest_speedup:.2}x, end-to-end {e2e_ratio:.2}x \
         ({} hardware threads)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // Hand-rolled JSON: the serde shim has no real formats, and the
    // schema is flat enough that string assembly stays readable.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"EXP-SVC sharded detection service throughput\",");
    let _ = writeln!(json, "  \"workload\": \"rmon-workloads::sweep::fleet_trace\",");
    let _ = writeln!(json, "  \"monitors\": {FLEET_MONITORS},");
    let _ = writeln!(json, "  \"items_per_producer\": {items},");
    let _ = writeln!(json, "  \"events\": {events},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"runs\": {runs},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let _ = writeln!(json, "  \"metric\": \"events per second, best of runs\",");
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"shards\": {}, \"ingest_events_per_sec\": {:.0}, \
             \"end_to_end_events_per_sec\": {:.0}}}{comma}",
            m.mode, m.shards, m.ingest_events_per_sec, m.end_to_end_events_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"sharded4_vs_inline_ingest_speedup\": {ingest_speedup:.3},");
    let _ = writeln!(json, "  \"sharded4_vs_inline_end_to_end_ratio\": {e2e_ratio:.3}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("\nwrote {out_path}");
}
