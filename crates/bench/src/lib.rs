//! Shared helpers for the `rmon` benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the paper's evaluation:
//!
//! * `table1` — Table 1: overhead ratio vs. checking interval (EXP-T1);
//! * `coverage` — the robustness/fault-injection experiment (EXP-COV);
//! * `ablation` — recording-vs-checking split (EXP-ABL-REC), detection
//!   latency vs. interval (EXP-ABL-RT), and detector cost vs. window
//!   size (EXP-ABL-DET).
//!
//! The Criterion benches in `benches/` cover the same measurements in
//! statistically instrumented form.

use std::time::Duration;

/// The scale between a *paper second* (the checking intervals of
/// Table 1 are 0.5 s – 3.0 s) and our bench wall clock. Default
/// 50 ms ≙ 1 paper-second; override with `RMON_PAPER_SECOND_MS`.
///
/// The overhead curve depends on the ratio between checking work and
/// monitor work per interval, not on absolute seconds, so a scaled
/// reproduction preserves the shape while keeping the harness fast.
pub fn paper_second() -> Duration {
    let ms = std::env::var("RMON_PAPER_SECOND_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(50);
    Duration::from_millis(ms.max(1))
}

/// The checking intervals of Table 1, in paper seconds.
pub const TABLE1_INTERVALS: [f64; 6] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0];

/// Formats a duration in fractional paper-seconds.
pub fn as_paper_seconds(d: Duration, paper_second: Duration) -> f64 {
    d.as_secs_f64() / paper_second.as_secs_f64()
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join(" ")
}

/// Prints a rule line of the combined width.
pub fn rule_line(widths: &[usize]) -> String {
    "-".repeat(widths.iter().sum::<usize>() + widths.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_second_has_default() {
        assert!(paper_second() >= Duration::from_millis(1));
    }

    #[test]
    fn paper_second_conversion() {
        let ps = Duration::from_millis(50);
        assert!((as_paper_seconds(Duration::from_millis(25), ps) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn row_formatting_pads() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "a   bb  ");
        assert_eq!(rule_line(&[3, 4]).len(), 8);
    }
}
