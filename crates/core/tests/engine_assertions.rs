//! Integration tests for the §5 assertion extension: user-supplied
//! state assertions declared on the monitor are evaluated at every
//! checkpoint.

use rmon_core::detect::Detector;
use rmon_core::{
    CondId, DetectorConfig, MonitorId, MonitorSpec, MonitorState, Nanos, Pid, PidProc, ProcName,
    RuleId, StateAssertion,
};
use std::collections::HashMap;
use std::sync::Arc;

const M: MonitorId = MonitorId::new(0);

fn detector_with(assertions: Vec<StateAssertion>) -> Detector {
    let mut bb = MonitorSpec::bounded_buffer("buf", 4);
    bb.spec.assertions = assertions;
    let mut det = Detector::new(DetectorConfig::without_timeouts());
    det.register_empty(M, Arc::new(bb.spec), Nanos::ZERO);
    det
}

fn snapshot(eq: usize, avail: u64) -> HashMap<MonitorId, MonitorState> {
    let mut s = MonitorState::with_resources(2, avail);
    for i in 0..eq {
        s.entry_queue.push(PidProc::new(Pid::new(i as u32), ProcName::new(0)));
    }
    // Make the snapshot self-consistent for the general lists: the
    // queued processes must have blocked-enter events… instead, start
    // the detector from this state (register handles initialization),
    // so only the assertions fire. Here we rely on resync semantics:
    // the first checkpoint compares against the replayed (empty) state
    // and the assertion independently.
    let mut map = HashMap::new();
    map.insert(M, s);
    map
}

#[test]
fn satisfied_assertions_stay_silent() {
    let mut det = detector_with(vec![
        StateAssertion::EntryQueueAtMost(4),
        StateAssertion::AvailableAtMost(4),
        StateAssertion::PopulationAtMost(10),
    ]);
    let snaps = snapshot(0, 4);
    let report = det.checkpoint(Nanos::new(10), &[], &snaps);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn violated_capacity_assertion_fires() {
    let mut det = detector_with(vec![StateAssertion::AvailableAtMost(4)]);
    // Observed R# exceeds the declared capacity: a corrupted counter.
    let snaps = snapshot(0, 9);
    let report = det.checkpoint(Nanos::new(10), &[], &snaps);
    assert!(report.violates_any(&[RuleId::UserAssertion]), "{report}");
    let v = report.by_rule(RuleId::UserAssertion).next().expect("one assertion violation");
    assert!(v.message.contains("R#"), "{}", v.message);
}

#[test]
fn assertion_violations_fire_every_checkpoint_while_state_is_bad() {
    let mut det = detector_with(vec![StateAssertion::AvailableAtLeast(1)]);
    let snaps = snapshot(0, 0);
    let r1 = det.checkpoint(Nanos::new(10), &[], &snaps);
    let r2 = det.checkpoint(Nanos::new(20), &[], &snaps);
    assert!(r1.violates_any(&[RuleId::UserAssertion]));
    assert!(r2.violates_any(&[RuleId::UserAssertion]), "assertions are stateless per checkpoint");
}

#[test]
fn cond_queue_assertion_checks_named_queue_only() {
    let mut det =
        detector_with(vec![StateAssertion::CondQueueAtMost { cond: CondId::new(0), at_most: 0 }]);
    let mut s = MonitorState::with_resources(2, 4);
    // Queue 1 backlog is fine; queue 0 backlog violates.
    s.cond_queues[1].push(PidProc::new(Pid::new(7), ProcName::new(1)));
    let mut snaps = HashMap::new();
    snaps.insert(M, s.clone());
    // Note: a waiter in CQ[1] without matching events also trips ST-2
    // on the first checkpoint; the assertion must NOT fire though.
    let report = det.checkpoint(Nanos::new(10), &[], &snaps);
    assert!(!report.violates_any(&[RuleId::UserAssertion]), "{report}");

    s.cond_queues[0].push(PidProc::new(Pid::new(8), ProcName::new(0)));
    snaps.insert(M, s);
    let report = det.checkpoint(Nanos::new(20), &[], &snaps);
    assert!(report.violates_any(&[RuleId::UserAssertion]), "{report}");
}

#[test]
fn assertion_rule_is_classified_as_st() {
    assert!(RuleId::UserAssertion.is_st());
    assert_eq!(RuleId::UserAssertion.algorithm(), Some(1));
    assert_eq!(RuleId::UserAssertion.code(), "ASSERT");
}
