//! Robustness properties of the core building blocks: parsers never
//! panic on arbitrary input, replay never panics on arbitrary event
//! soups (it reports instead), and detection is monotone (adding a
//! violation-free suffix never erases earlier findings).

use proptest::prelude::*;
use rmon_core::detect::Detector;
use rmon_core::{
    CondId, DetectorConfig, Event, EventKind, GeneralLists, MonitorId, MonitorSpec, Nanos,
    PathExpr, Pid, ProcName, VClock,
};
use std::collections::HashMap;
use std::sync::Arc;

const M: MonitorId = MonitorId::new(0);

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        any::<bool>().prop_map(|granted| EventKind::Enter { granted }),
        (0u16..3).prop_map(|c| EventKind::Wait { cond: CondId::new(c) }),
        ((0u16..3), any::<bool>(), any::<bool>()).prop_map(|(c, some, resumed)| {
            EventKind::SignalExit { cond: some.then_some(CondId::new(c)), resumed_waiter: resumed }
        }),
        Just(EventKind::Terminate),
    ]
}

fn arb_events(max: usize) -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(((0u32..4), (0u16..2), arb_event_kind()), 0..max).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (pid, proc_idx, kind))| Event {
                seq: (i + 1) as u64,
                time: Nanos::new((i as u64 + 1) * 10),
                monitor: M,
                pid: Pid::new(pid),
                proc_name: ProcName::new(proc_idx),
                kind,
                vc: VClock::UNSET,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The path-expression parser never panics, whatever the input.
    #[test]
    fn path_parser_total(src in "\\PC*") {
        let _ = PathExpr::parse(&src);
    }

    /// Parse → display → parse is a fixed point for valid expressions.
    #[test]
    fn path_parser_display_roundtrip(
        src in "(path )?[abc]([;|][abc]){0,4}[*+?]{0,2}( end)?"
    ) {
        if let Ok(p1) = PathExpr::parse(&src) {
            let p2 = PathExpr::parse(p1.source()).expect("display output reparses");
            prop_assert_eq!(p1, p2);
        }
    }

    /// Replaying *arbitrary* (mostly invalid) event soups through the
    /// checking lists never panics — malformed histories produce
    /// violations, not crashes.
    #[test]
    fn checking_lists_total_on_event_soup(events in arb_events(40)) {
        let spec = MonitorSpec::bounded_buffer("buf", 2).spec;
        let mut lists = GeneralLists::new(M, spec.cond_count());
        let mut out = Vec::new();
        for e in &events {
            lists.apply(&spec, e, &mut out);
        }
        // Sanity: population equals the net of enters/exits processed
        // structurally (no process is silently duplicated into two
        // lists at once).
        let population = lists.enter_q().len()
            + lists.wait_cond().iter().map(|q| q.len()).sum::<usize>()
            + lists.running().len();
        prop_assert!(population <= events.len());
    }

    /// The full engine is total on event soups too, with or without
    /// snapshots.
    #[test]
    fn engine_total_on_event_soup(events in arb_events(40), with_snapshot in any::<bool>()) {
        let spec = Arc::new(MonitorSpec::bounded_buffer("buf", 2).spec);
        let mut det = Detector::new(DetectorConfig::without_timeouts());
        det.register_empty(M, Arc::clone(&spec), Nanos::ZERO);
        let mut snaps = HashMap::new();
        if with_snapshot {
            let mut s = rmon_core::MonitorState::new(spec.cond_count());
            s.available = spec.capacity;
            snaps.insert(M, s);
        }
        let report = det.checkpoint(Nanos::from_millis(1), &events, &snaps);
        prop_assert_eq!(report.events_checked as usize, events.len());
    }

    /// Detection is monotone under windowing: splitting the same event
    /// sequence across two checkpoints never *loses* the detection (a
    /// faulty prefix stays faulty regardless of where the checkpoint
    /// boundary falls).
    #[test]
    fn detection_survives_window_splits(events in arb_events(24), split in 0usize..24) {
        let spec = Arc::new(MonitorSpec::bounded_buffer("buf", 2).spec);
        let whole = {
            let mut det = Detector::new(DetectorConfig::without_timeouts());
            det.register_empty(M, Arc::clone(&spec), Nanos::ZERO);
            !det.checkpoint(Nanos::from_millis(1), &events, &HashMap::new()).is_clean()
        };
        let split = split.min(events.len());
        let parts = {
            let mut det = Detector::new(DetectorConfig::without_timeouts());
            det.register_empty(M, Arc::clone(&spec), Nanos::ZERO);
            let a = det.checkpoint(Nanos::from_millis(1), &events[..split], &HashMap::new());
            let b = det.checkpoint(Nanos::from_millis(2), &events[split..], &HashMap::new());
            !a.is_clean() || !b.is_clean()
        };
        // Without snapshots the engine carries its lists across the
        // boundary, so the split run sees exactly the same stream.
        prop_assert_eq!(whole, parts);
    }
}
