//! Durable oplog interface: sink traits and the portable record codec.
//!
//! The paper's prototype keeps every recorded window and fault report in
//! memory — fine for an experiment, fatal for a fleet that should run
//! for weeks. This module defines the *interface* half of the durable
//! story: what a runtime streams out ([`EventSink`] / [`ViolationSink`])
//! and the byte-exact record encoding those streams use. The *engine*
//! half — append-only segmented files, CRC framing, torn-tail recovery,
//! rotation/retention — lives in the `rmon-storage` crate, which
//! implements both traits over its on-disk oplog; `docs/STORAGE.md`
//! specifies the format. Keeping the traits here lets `rmon-rt` journal
//! through `Arc<dyn EventSink>` without depending on any storage engine
//! (tests use the in-memory [`MemorySink`]).
//!
//! ## Record stream semantics
//!
//! A journal is a totally ordered sequence of [`Record`]s with a
//! **commit protocol**: [`Record::Checkpoint`] is the commit marker.
//! A runtime appends, per checkpoint barrier, `Events(window)` then
//! `Realtime(new verdicts)` then `Checkpoint { .. }` — in that order —
//! so a crash anywhere mid-sequence leaves a clean committed prefix:
//! readers (see `rmon-storage`'s replayer) discard trailing `Events` /
//! `Realtime` records not followed by a `Checkpoint`. [`Record::Epoch`]
//! marks a runtime (re)attaching to the journal after a restart:
//! sequence numbers and monitor ids restart from zero behind it, so a
//! replayer resets its detector state at each epoch boundary.
//!
//! The codec is hand-rolled little-endian binary (the workspace's
//! vendored `serde` shim is derive-markers only) and deliberately
//! simple: fixed-width integers, `u32`-length-prefixed strings and
//! vectors, one tag byte per enum. [`encode_record`] / [`decode_record`]
//! round-trip exactly; [`crc32`] is the IEEE checksum the storage layer
//! frames records with.

use crate::event::{Event, EventKind};
use crate::fault::FaultKind;
use crate::ids::{CondId, MonitorId, Pid, PidProc, ProcName};
use crate::rule::RuleId;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::vclock::VClock;
use crate::violation::{FaultReport, PredictedViolation, Violation};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Mutex;

// ---------------------------------------------------------------------
// Sink traits
// ---------------------------------------------------------------------

/// Receives the event-side journal stream of a runtime: epoch markers,
/// monitor registrations and drained event windows.
///
/// Implementations must be safe to share across threads (the runtime
/// holds them in an `Arc`); appends happen at checkpoint barriers and
/// registration time, never on the per-event hot path. All methods
/// return `io::Result` so a durable implementation can surface disk
/// errors; the runtime counts failures rather than panicking.
pub trait EventSink: Send + Sync + fmt::Debug {
    /// Marks a runtime (re)attaching to the journal: event sequence
    /// numbers and monitor ids restart from zero after this record.
    fn append_epoch(&self, now: Nanos) -> io::Result<()>;

    /// Records a monitor registration. The journal stores the monitor's
    /// *name*; the declaration itself is code, re-supplied at replay
    /// time (see `rmon-storage`'s `SpecResolver`).
    fn append_register(&self, monitor: MonitorId, name: &str, now: Nanos) -> io::Result<()>;

    /// Appends one drained recorder window (events in global `seq`
    /// order). Part of a checkpoint commit sequence; not yet committed
    /// until the matching [`ViolationSink::append_checkpoint`] lands.
    fn append_events(&self, events: &[Event]) -> io::Result<()>;

    /// Flushes buffered appends to durable storage (fsync for a file
    /// engine). A no-op by default.
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Receives the verdict-side journal stream of a runtime: real-time
/// (Algorithm-3) violations and checkpoint reports with their observed
/// snapshots.
pub trait ViolationSink: Send + Sync + fmt::Debug {
    /// Appends real-time violations drained since the last checkpoint.
    /// Written between a window's `Events` record and its `Checkpoint`
    /// record, so the verdicts commit together with their events.
    fn append_realtime(&self, violations: &[Violation]) -> io::Result<()>;

    /// Appends the checkpoint commit marker: the checking time, the
    /// observed snapshots the Algorithm-1/2 comparison ran against, and
    /// the resulting report.
    fn append_checkpoint(
        &self,
        now: Nanos,
        snapshots: &HashMap<MonitorId, MonitorState>,
        report: &FaultReport,
    ) -> io::Result<()>;
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One journal record — the unit the storage layer frames and the
/// replayer consumes. See the module docs for the stream semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A runtime (re)attached to the journal (process start/restart).
    Epoch {
        /// The attaching runtime's clock at attach time.
        time: Nanos,
    },
    /// A monitor was registered.
    Register {
        /// The id the runtime assigned (unique within its epoch).
        monitor: MonitorId,
        /// The declared monitor name, for spec resolution at replay.
        name: String,
        /// Registration time.
        time: Nanos,
    },
    /// One drained recorder window, in global `seq` order.
    Events(Vec<Event>),
    /// Real-time (calling-order) violations drained at a checkpoint.
    Realtime(Vec<Violation>),
    /// The checkpoint commit marker.
    Checkpoint {
        /// Checking time `t`.
        now: Nanos,
        /// Observed snapshots, sorted by monitor id (the codec sorts,
        /// so equal checkpoints encode to equal bytes).
        snapshots: Vec<(MonitorId, MonitorState)>,
        /// The report the live checkpoint produced.
        report: FaultReport,
    },
}

impl Record {
    /// The record's wire tag (first payload byte).
    pub fn tag(&self) -> u8 {
        match self {
            Record::Epoch { .. } => TAG_EPOCH,
            Record::Register { .. } => TAG_REGISTER,
            Record::Events(_) => TAG_EVENTS,
            Record::Realtime(_) => TAG_REALTIME,
            Record::Checkpoint { .. } => TAG_CHECKPOINT,
        }
    }
}

const TAG_EPOCH: u8 = 1;
const TAG_REGISTER: u8 = 2;
const TAG_EVENTS: u8 = 3;
const TAG_REALTIME: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;

// ---------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — the framing checksum
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// The IEEE CRC-32 checksum (the one zlib/PNG use) of `bytes` — what
/// the storage layer's record framing carries.
///
/// # Examples
///
/// ```
/// // Standard test vector.
/// assert_eq!(rmon_core::oplog::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Decode errors
// ---------------------------------------------------------------------

/// A record payload failed to decode (truncated, unknown tag, or an
/// out-of-range enum index) — corruption the CRC framing did not catch,
/// or a format-version mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong, for diagnostics.
    pub detail: String,
    /// Byte offset within the payload where decoding stopped.
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oplog record decode error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn err(&self, detail: impl Into<String>) -> DecodeError {
        DecodeError { detail: detail.into(), offset: self.pos }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(format!("need {n} bytes, have {}", self.buf.len() - self.pos)));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// A length prefix, sanity-capped so corrupt bytes cannot ask for
    /// absurd allocations: each element is at least `min_elem` bytes,
    /// so a valid count never exceeds the remaining payload.
    fn len(&mut self, min_elem: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        let cap = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem.max(1)) > cap {
            return Err(self.err(format!("length {n} exceeds remaining {cap} bytes")));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid utf-8 string"))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(self.err(format!("bad option tag {t}"))),
        }
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError {
                detail: format!("{} trailing bytes", self.buf.len() - self.pos),
                offset: self.pos,
            });
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

// ---------------------------------------------------------------------
// Stable enum indices
// ---------------------------------------------------------------------

/// ST rules occupy indices `0..17`, FD rules `256..267` — disjoint
/// ranges so either table can grow without renumbering the other.
fn rule_index(rule: RuleId) -> u16 {
    if let Some(i) = RuleId::ST_RULES.iter().position(|&r| r == rule) {
        i as u16
    } else {
        let i = RuleId::FD_RULES.iter().position(|&r| r == rule).expect("every rule is ST or FD");
        256 + i as u16
    }
}

fn rule_from_index(ix: u16) -> Option<RuleId> {
    if ix < 256 {
        RuleId::ST_RULES.get(ix as usize).copied()
    } else {
        RuleId::FD_RULES.get(ix as usize - 256).copied()
    }
}

fn fault_index(fault: FaultKind) -> u8 {
    FaultKind::ALL.iter().position(|&f| f == fault).expect("taxonomy is closed") as u8
}

fn fault_from_index(ix: u8) -> Option<FaultKind> {
    FaultKind::ALL.get(ix as usize).copied()
}

// ---------------------------------------------------------------------
// Component codecs
// ---------------------------------------------------------------------

const KIND_ENTER: u8 = 0;
const KIND_WAIT: u8 = 1;
const KIND_SIGNAL_EXIT: u8 = 2;
const KIND_TERMINATE: u8 = 3;

fn put_event(out: &mut Vec<u8>, e: &Event) {
    put_u64(out, e.seq);
    put_u64(out, e.time.as_nanos());
    put_u32(out, e.monitor.index());
    put_u32(out, e.pid.index());
    put_u16(out, e.proc_name.index());
    match e.kind {
        EventKind::Enter { granted } => {
            out.push(KIND_ENTER);
            out.push(granted as u8);
        }
        EventKind::Wait { cond } => {
            out.push(KIND_WAIT);
            put_u16(out, cond.index());
        }
        EventKind::SignalExit { cond, resumed_waiter } => {
            out.push(KIND_SIGNAL_EXIT);
            out.push(resumed_waiter as u8);
            match cond {
                None => out.push(0),
                Some(c) => {
                    out.push(1);
                    put_u16(out, c.index());
                }
            }
        }
        EventKind::Terminate => out.push(KIND_TERMINATE),
    }
    put_vclock(out, &e.vc);
}

/// Vector-clock presence tags (trailing field of every event).
const VC_UNSET: u8 = 0;
const VC_SET: u8 = 1;
const VC_SATURATED: u8 = 2;

fn put_vclock(out: &mut Vec<u8>, vc: &VClock) {
    if !vc.is_set() {
        out.push(VC_UNSET);
        return;
    }
    if vc.is_saturated() {
        out.push(VC_SATURATED);
        return;
    }
    out.push(VC_SET);
    out.push(vc.owner().expect("set clock has an owner") as u8);
    // Canonical form: counters trimmed to the highest non-zero slot.
    let slots = vc.raw_slots();
    let hi = slots.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    out.push(hi as u8);
    for &c in &slots[..hi] {
        put_u32(out, c);
    }
}

fn read_vclock(r: &mut Reader<'_>) -> Result<VClock, DecodeError> {
    match r.u8()? {
        VC_UNSET => Ok(VClock::UNSET),
        VC_SATURATED => Ok(VClock::saturated()),
        VC_SET => {
            let owner = r.u8()? as usize;
            let n = r.u8()? as usize;
            if owner >= VClock::CAPACITY || n > VClock::CAPACITY {
                return Err(r.err(format!("bad vclock shape owner={owner} len={n}")));
            }
            let mut slots = [0u32; VClock::CAPACITY];
            for slot in slots.iter_mut().take(n) {
                *slot = r.u32()?;
            }
            Ok(VClock::from_parts(owner, slots))
        }
        t => Err(r.err(format!("bad vclock tag {t}"))),
    }
}

/// Minimum encoded size of one event (Terminate, no clock): used as
/// the allocation cap for event-vector length prefixes.
const EVENT_MIN_BYTES: usize = 8 + 8 + 4 + 4 + 2 + 1 + 1;

fn read_event(r: &mut Reader<'_>) -> Result<Event, DecodeError> {
    let seq = r.u64()?;
    let time = Nanos::new(r.u64()?);
    let monitor = MonitorId::new(r.u32()?);
    let pid = Pid::new(r.u32()?);
    let proc_name = ProcName::new(r.u16()?);
    let kind = match r.u8()? {
        KIND_ENTER => EventKind::Enter { granted: r.u8()? != 0 },
        KIND_WAIT => EventKind::Wait { cond: CondId::new(r.u16()?) },
        KIND_SIGNAL_EXIT => {
            let resumed_waiter = r.u8()? != 0;
            let cond = match r.u8()? {
                0 => None,
                1 => Some(CondId::new(r.u16()?)),
                t => return Err(r.err(format!("bad cond tag {t}"))),
            };
            EventKind::SignalExit { cond, resumed_waiter }
        }
        KIND_TERMINATE => EventKind::Terminate,
        t => return Err(r.err(format!("bad event kind {t}"))),
    };
    let vc = read_vclock(r)?;
    Ok(Event { seq, time, monitor, pid, proc_name, kind, vc })
}

fn put_violation(out: &mut Vec<u8>, v: &Violation) {
    put_u32(out, v.monitor.index());
    put_u16(out, rule_index(v.rule));
    match v.fault {
        None => out.push(0xFF),
        Some(f) => out.push(fault_index(f)),
    }
    match v.pid {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_u32(out, p.index());
        }
    }
    put_opt_u64(out, v.event_seq);
    put_u64(out, v.detected_at.as_nanos());
    put_str(out, &v.message);
}

/// Minimum encoded size of one violation (all options absent, empty
/// message).
const VIOLATION_MIN_BYTES: usize = 4 + 2 + 1 + 1 + 1 + 8 + 4;

fn read_violation(r: &mut Reader<'_>) -> Result<Violation, DecodeError> {
    let monitor = MonitorId::new(r.u32()?);
    let rule_ix = r.u16()?;
    let rule = rule_from_index(rule_ix).ok_or_else(|| r.err(format!("bad rule {rule_ix}")))?;
    let fault = match r.u8()? {
        0xFF => None,
        ix => Some(fault_from_index(ix).ok_or_else(|| r.err(format!("bad fault {ix}")))?),
    };
    let pid = match r.u8()? {
        0 => None,
        1 => Some(Pid::new(r.u32()?)),
        t => return Err(r.err(format!("bad pid tag {t}"))),
    };
    let event_seq = r.opt_u64()?;
    let detected_at = Nanos::new(r.u64()?);
    let message = r.string()?;
    Ok(Violation { monitor, rule, fault, pid, event_seq, detected_at, message })
}

fn put_violations(out: &mut Vec<u8>, vs: &[Violation]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        put_violation(out, v);
    }
}

fn read_violations(r: &mut Reader<'_>) -> Result<Vec<Violation>, DecodeError> {
    let n = r.len(VIOLATION_MIN_BYTES)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_violation(r)?);
    }
    Ok(out)
}

fn put_pid_proc_list(out: &mut Vec<u8>, list: &[PidProc]) {
    put_u32(out, list.len() as u32);
    for pp in list {
        put_u32(out, pp.pid.index());
        put_u16(out, pp.proc_name.index());
    }
}

fn read_pid_proc_list(r: &mut Reader<'_>) -> Result<Vec<PidProc>, DecodeError> {
    let n = r.len(6)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let pid = Pid::new(r.u32()?);
        let proc_name = ProcName::new(r.u16()?);
        out.push(PidProc::new(pid, proc_name));
    }
    Ok(out)
}

fn put_state(out: &mut Vec<u8>, s: &MonitorState) {
    put_pid_proc_list(out, &s.entry_queue);
    put_u32(out, s.cond_queues.len() as u32);
    for q in &s.cond_queues {
        put_pid_proc_list(out, q);
    }
    put_pid_proc_list(out, &s.running);
    put_opt_u64(out, s.available);
}

fn read_state(r: &mut Reader<'_>) -> Result<MonitorState, DecodeError> {
    let entry_queue = read_pid_proc_list(r)?;
    let conds = r.len(4)?;
    let mut cond_queues = Vec::with_capacity(conds);
    for _ in 0..conds {
        cond_queues.push(read_pid_proc_list(r)?);
    }
    let running = read_pid_proc_list(r)?;
    let available = r.opt_u64()?;
    Ok(MonitorState { entry_queue, cond_queues, running, available })
}

fn put_report(out: &mut Vec<u8>, report: &FaultReport) {
    put_violations(out, &report.violations);
    put_u32(out, report.predicted.len() as u32);
    for p in &report.predicted {
        put_violation(out, &p.violation);
        put_u32(out, p.witness.len() as u32);
        for &seq in &p.witness {
            put_u64(out, seq);
        }
    }
    put_u64(out, report.events_checked);
    put_u64(out, report.window_start.as_nanos());
    put_u64(out, report.window_end.as_nanos());
}

fn read_report(r: &mut Reader<'_>) -> Result<FaultReport, DecodeError> {
    let violations = read_violations(r)?;
    let predictions = r.len(VIOLATION_MIN_BYTES + 4)?;
    let mut predicted = Vec::with_capacity(predictions);
    for _ in 0..predictions {
        let violation = read_violation(r)?;
        let n = r.len(8)?;
        let mut witness = Vec::with_capacity(n);
        for _ in 0..n {
            witness.push(r.u64()?);
        }
        predicted.push(PredictedViolation { violation, witness });
    }
    let events_checked = r.u64()?;
    let window_start = Nanos::new(r.u64()?);
    let window_end = Nanos::new(r.u64()?);
    Ok(FaultReport { violations, predicted, events_checked, window_start, window_end })
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

/// Encodes one record into its wire payload (tag byte + body). The
/// storage layer wraps this in its `[len][crc]` frame; the payload
/// itself carries no length or checksum.
///
/// Encoding is canonical: checkpoint snapshots are sorted by monitor
/// id, so semantically equal records produce identical bytes.
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(record.tag());
    match record {
        Record::Epoch { time } => put_u64(&mut out, time.as_nanos()),
        Record::Register { monitor, name, time } => {
            put_u32(&mut out, monitor.index());
            put_str(&mut out, name);
            put_u64(&mut out, time.as_nanos());
        }
        Record::Events(events) => {
            put_u32(&mut out, events.len() as u32);
            for e in events {
                put_event(&mut out, e);
            }
        }
        Record::Realtime(vs) => put_violations(&mut out, vs),
        Record::Checkpoint { now, snapshots, report } => {
            put_u64(&mut out, now.as_nanos());
            let mut sorted: Vec<&(MonitorId, MonitorState)> = snapshots.iter().collect();
            sorted.sort_by_key(|(id, _)| *id);
            put_u32(&mut out, sorted.len() as u32);
            for (id, state) in sorted {
                put_u32(&mut out, id.index());
                put_state(&mut out, state);
            }
            put_report(&mut out, report);
        }
    }
    out
}

/// Decodes one record payload produced by [`encode_record`]. Trailing
/// bytes, unknown tags and out-of-range indices are errors — a frame
/// whose CRC matched but whose payload does not parse indicates a
/// format mismatch, and the reader should stop at it.
pub fn decode_record(payload: &[u8]) -> Result<Record, DecodeError> {
    let mut r = Reader::new(payload);
    let record = match r.u8()? {
        TAG_EPOCH => Record::Epoch { time: Nanos::new(r.u64()?) },
        TAG_REGISTER => {
            let monitor = MonitorId::new(r.u32()?);
            let name = r.string()?;
            let time = Nanos::new(r.u64()?);
            Record::Register { monitor, name, time }
        }
        TAG_EVENTS => {
            let n = r.len(EVENT_MIN_BYTES)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(read_event(&mut r)?);
            }
            Record::Events(events)
        }
        TAG_REALTIME => Record::Realtime(read_violations(&mut r)?),
        TAG_CHECKPOINT => {
            let now = Nanos::new(r.u64()?);
            let n = r.len(4)?;
            let mut snapshots = Vec::with_capacity(n);
            for _ in 0..n {
                let id = MonitorId::new(r.u32()?);
                let state = read_state(&mut r)?;
                snapshots.push((id, state));
            }
            let report = read_report(&mut r)?;
            Record::Checkpoint { now, snapshots, report }
        }
        t => return Err(r.err(format!("unknown record tag {t}"))),
    };
    r.done()?;
    Ok(record)
}

// ---------------------------------------------------------------------
// Public component codecs
// ---------------------------------------------------------------------
//
// The record codec above is the journal's unit of framing; the wire
// protocol in `rmon-net` reuses `Record` for event batches but its
// control frames also carry bare states, violation lists and fault
// reports. These wrappers expose the component codecs so every byte
// that crosses a socket uses the same canonical encoding the journal
// uses — one codec to fuzz, one format document.

/// Appends the canonical encoding of one [`MonitorState`] to `out`.
pub fn encode_state(out: &mut Vec<u8>, state: &MonitorState) {
    put_state(out, state);
}

/// Decodes a [`MonitorState`] from `payload` at `*pos`, advancing
/// `*pos` past it.
///
/// # Examples
///
/// ```
/// use rmon_core::oplog::{decode_state, encode_state};
/// use rmon_core::MonitorState;
///
/// let mut buf = Vec::new();
/// encode_state(&mut buf, &MonitorState::with_resources(2, 1));
/// let mut pos = 0;
/// let state = decode_state(&buf, &mut pos).unwrap();
/// assert_eq!(state, MonitorState::with_resources(2, 1));
/// assert_eq!(pos, buf.len());
/// ```
pub fn decode_state(payload: &[u8], pos: &mut usize) -> Result<MonitorState, DecodeError> {
    let mut r = Reader { buf: payload, pos: *pos };
    let state = read_state(&mut r)?;
    *pos = r.pos;
    Ok(state)
}

/// Appends the canonical encoding of a violation list to `out`.
pub fn encode_violations(out: &mut Vec<u8>, violations: &[Violation]) {
    put_violations(out, violations);
}

/// Decodes a violation list from `payload` at `*pos`, advancing `*pos`
/// past it.
pub fn decode_violations(payload: &[u8], pos: &mut usize) -> Result<Vec<Violation>, DecodeError> {
    let mut r = Reader { buf: payload, pos: *pos };
    let violations = read_violations(&mut r)?;
    *pos = r.pos;
    Ok(violations)
}

/// Appends the canonical encoding of one [`FaultReport`] to `out`.
pub fn encode_report(out: &mut Vec<u8>, report: &FaultReport) {
    put_report(out, report);
}

/// Decodes a [`FaultReport`] from `payload` at `*pos`, advancing `*pos`
/// past it.
pub fn decode_report(payload: &[u8], pos: &mut usize) -> Result<FaultReport, DecodeError> {
    let mut r = Reader { buf: payload, pos: *pos };
    let report = read_report(&mut r)?;
    *pos = r.pos;
    Ok(report)
}

// ---------------------------------------------------------------------
// MemorySink
// ---------------------------------------------------------------------

/// An in-memory journal capturing decoded [`Record`]s — the test double
/// for both sink traits, and a cheap way to inspect exactly what a
/// runtime would persist without touching disk.
///
/// Every append round-trips through the codec (`encode` + `decode`), so
/// a `MemorySink`-covered path is also codec-covered.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything appended so far, in append order.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("sink lock").clone()
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("sink lock").len()
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, record: Record) -> io::Result<()> {
        let decoded = decode_record(&encode_record(&record))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        debug_assert_eq!(decoded, record, "codec must round-trip");
        self.records.lock().expect("sink lock").push(decoded);
        Ok(())
    }
}

impl EventSink for MemorySink {
    fn append_epoch(&self, now: Nanos) -> io::Result<()> {
        self.push(Record::Epoch { time: now })
    }

    fn append_register(&self, monitor: MonitorId, name: &str, now: Nanos) -> io::Result<()> {
        self.push(Record::Register { monitor, name: name.to_string(), time: now })
    }

    fn append_events(&self, events: &[Event]) -> io::Result<()> {
        self.push(Record::Events(events.to_vec()))
    }
}

impl ViolationSink for MemorySink {
    fn append_realtime(&self, violations: &[Violation]) -> io::Result<()> {
        self.push(Record::Realtime(violations.to_vec()))
    }

    fn append_checkpoint(
        &self,
        now: Nanos,
        snapshots: &HashMap<MonitorId, MonitorState>,
        report: &FaultReport,
    ) -> io::Result<()> {
        let mut snaps: Vec<(MonitorId, MonitorState)> =
            snapshots.iter().map(|(&id, s)| (id, s.clone())).collect();
        snaps.sort_by_key(|(id, _)| *id);
        self.push(Record::Checkpoint { now, snapshots: snaps, report: report.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_violation(seed: u64) -> Violation {
        Violation {
            monitor: MonitorId::new(seed as u32),
            rule: RuleId::St8DuplicateRequest,
            fault: Some(FaultKind::DoubleAcquire),
            pid: Some(Pid::new(7)),
            event_seq: Some(seed),
            detected_at: Nanos::new(seed * 3),
            message: format!("violation {seed}"),
        }
    }

    fn sample_state() -> MonitorState {
        let mut s = MonitorState::with_resources(2, 4);
        s.entry_queue.push(PidProc::new(Pid::new(1), ProcName::new(0)));
        s.cond_queues[1].push(PidProc::new(Pid::new(2), ProcName::new(1)));
        s.running.push(PidProc::new(Pid::new(3), ProcName::new(2)));
        s
    }

    fn sample_records() -> Vec<Record> {
        let m = MonitorId::new(3);
        vec![
            Record::Epoch { time: Nanos::new(5) },
            Record::Register { monitor: m, name: "mailbox".into(), time: Nanos::new(6) },
            Record::Events(vec![
                Event::enter(1, Nanos::new(10), m, Pid::new(1), ProcName::new(0), true),
                Event::wait(2, Nanos::new(11), m, Pid::new(1), ProcName::new(0), CondId::new(1)),
                Event::signal_exit(
                    3,
                    Nanos::new(12),
                    m,
                    Pid::new(2),
                    ProcName::new(1),
                    Some(CondId::new(1)),
                    true,
                ),
                Event::signal_exit(
                    4,
                    Nanos::new(13),
                    m,
                    Pid::new(1),
                    ProcName::new(0),
                    None,
                    false,
                ),
                Event::terminate(5, Nanos::new(14), m, Pid::new(2), ProcName::new(1)),
                // Clock-stamped events: a real stamp and the saturated
                // degenerate, exercising every vclock wire tag.
                Event::enter(6, Nanos::new(15), m, Pid::new(3), ProcName::new(0), false)
                    .with_vc(sample_vclock()),
                Event::terminate(7, Nanos::new(16), m, Pid::new(3), ProcName::new(0))
                    .with_vc(VClock::saturated()),
            ]),
            Record::Realtime(vec![sample_violation(1), sample_violation(2)]),
            Record::Checkpoint {
                now: Nanos::new(99),
                snapshots: vec![(m, sample_state()), (MonitorId::new(9), MonitorState::new(0))],
                report: FaultReport {
                    violations: vec![sample_violation(3)],
                    predicted: vec![PredictedViolation {
                        violation: sample_violation(4),
                        witness: vec![1, 3, 2, 4, 5],
                    }],
                    events_checked: 5,
                    window_start: Nanos::new(1),
                    window_end: Nanos::new(99),
                },
            },
        ]
    }

    fn sample_vclock() -> VClock {
        let mut a = VClock::for_slot(0);
        a.tick();
        let mut b = VClock::for_slot(2);
        b.tick();
        b.tick();
        b.merge(&a);
        b
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn every_record_kind_round_trips() {
        for record in sample_records() {
            let bytes = encode_record(&record);
            let back = decode_record(&bytes).expect("round-trip");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn encoding_is_canonical_for_snapshot_order() {
        let a = Record::Checkpoint {
            now: Nanos::new(1),
            snapshots: vec![
                (MonitorId::new(2), MonitorState::new(0)),
                (MonitorId::new(1), sample_state()),
            ],
            report: FaultReport::default(),
        };
        let b = Record::Checkpoint {
            now: Nanos::new(1),
            snapshots: vec![
                (MonitorId::new(1), sample_state()),
                (MonitorId::new(2), MonitorState::new(0)),
            ],
            report: FaultReport::default(),
        };
        assert_eq!(encode_record(&a), encode_record(&b));
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        for record in sample_records() {
            let bytes = encode_record(&record);
            for cut in 0..bytes.len() {
                assert!(decode_record(&bytes[..cut]).is_err(), "cut at {cut} must not decode");
            }
        }
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        // Flip every byte of every sample encoding: decode must return
        // (Ok with different content is fine for non-structural bytes;
        // panics and absurd allocations are not).
        for record in sample_records() {
            let bytes = encode_record(&record);
            for i in 0..bytes.len() {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 0xA5;
                let _ = decode_record(&corrupt);
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_record(&Record::Epoch { time: Nanos::new(1) });
        bytes.push(0);
        assert!(decode_record(&bytes).is_err());
    }

    #[test]
    fn rule_indices_are_stable_and_disjoint() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in RuleId::ST_RULES.into_iter().chain(RuleId::FD_RULES) {
            let ix = rule_index(rule);
            assert!(seen.insert(ix), "{rule} index {ix} collides");
            assert_eq!(rule_from_index(ix), Some(rule));
        }
        assert_eq!(rule_from_index(17), None, "past the ST table");
        assert_eq!(rule_from_index(256 + 11), None, "past the FD table");
    }

    #[test]
    fn fault_indices_round_trip() {
        for fault in FaultKind::ALL {
            assert_eq!(fault_from_index(fault_index(fault)), Some(fault));
        }
        assert_eq!(fault_from_index(21), None);
    }

    #[test]
    fn memory_sink_captures_both_streams() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        let m = MonitorId::new(0);
        EventSink::append_epoch(&sink, Nanos::new(1)).unwrap();
        EventSink::append_register(&sink, m, "alloc", Nanos::new(2)).unwrap();
        let events = [Event::enter(1, Nanos::new(3), m, Pid::new(1), ProcName::new(0), true)];
        EventSink::append_events(&sink, &events).unwrap();
        ViolationSink::append_realtime(&sink, &[sample_violation(1)]).unwrap();
        let mut snaps = HashMap::new();
        snaps.insert(m, sample_state());
        ViolationSink::append_checkpoint(&sink, Nanos::new(9), &snaps, &FaultReport::default())
            .unwrap();
        let records = sink.records();
        assert_eq!(records.len(), 5);
        assert_eq!(records[0], Record::Epoch { time: Nanos::new(1) });
        assert!(matches!(&records[1], Record::Register { name, .. } if name == "alloc"));
        assert!(matches!(&records[2], Record::Events(evs) if evs.len() == 1));
        assert!(matches!(&records[3], Record::Realtime(vs) if vs.len() == 1));
        assert!(
            matches!(&records[4], Record::Checkpoint { snapshots, .. } if snapshots.len() == 1)
        );
    }
}
