//! The FD-Rules reference checker (§3.2).
//!
//! This module checks a **complete** scheduling-event history directly
//! against the declarative FD-Rules 1–7, independently of the
//! checking-list machinery. The paper argues that the ST-Rules are
//! equivalent to the FD-Rules ("any violation of the FD-Rules 1–7 will
//! lead to a violation of the ST-Rules"); keeping two structurally
//! different implementations lets the test suite check that claim
//! differentially — the incremental engine and this reference must agree
//! on whether a history is clean.
//!
//! Unlike the incremental engine it needs the whole history at once and
//! scans per-process timelines, so it is only suitable for tests,
//! post-mortems and small traces — exactly the role "verification after
//! the fact" plays in the paper's fault-detection strategy discussion.

use crate::config::DetectorConfig;
use crate::event::{Event, EventKind};
use crate::fault::FaultKind;
use crate::ids::{MonitorId, Pid, PidProc};
use crate::rule::RuleId;
use crate::spec::{CondRole, MonitorClass, MonitorSpec, ProcRole};
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::Violation;
use std::collections::{HashMap, VecDeque};

/// Checks one monitor's full event history against FD-Rules 1–7.
///
/// `events` must contain only events of `monitor`, in sequence order.
/// `end_time` is the instant the history was cut (used for the
/// timing rules FD-2/FD-4/FD-7). If `final_state` is given, the
/// replayed end state is compared against it (this is how event-
/// invisible faults such as a lost process become visible to the
/// reference checker).
pub fn check_history(
    monitor: MonitorId,
    spec: &MonitorSpec,
    cfg: &DetectorConfig,
    events: &[Event],
    final_state: Option<&MonitorState>,
    end_time: Nanos,
) -> Vec<Violation> {
    let mut ck = RefCheck::new(monitor, spec, cfg);
    for event in events {
        ck.step(event);
    }
    ck.finish(final_state, end_time);
    ck.out
}

struct RefCheck<'a> {
    monitor: MonitorId,
    spec: &'a MonitorSpec,
    cfg: &'a DetectorConfig,
    out: Vec<Violation>,
    /// Processes currently inside (running) — FD allows observing more
    /// than one to keep checking.
    inside: Vec<PidProc>,
    /// Entry queue with block times.
    eq: VecDeque<(PidProc, Nanos)>,
    /// Condition queues with block times.
    cq: Vec<VecDeque<(PidProc, Nanos)>>,
    /// Grant time per process currently inside the monitor (running or
    /// condition-waiting) — FD-2.
    entered_at: HashMap<Pid, Nanos>,
    /// FD-7: held access rights with acquisition times.
    holds: HashMap<Pid, Nanos>,
    /// FD-6 counters.
    r_total: u64,
    s_total: u64,
    resource_no: i64,
    rmax: i64,
}

impl<'a> RefCheck<'a> {
    fn new(monitor: MonitorId, spec: &'a MonitorSpec, cfg: &'a DetectorConfig) -> Self {
        let rmax = spec.capacity.unwrap_or(0) as i64;
        RefCheck {
            monitor,
            spec,
            cfg,
            out: Vec::new(),
            inside: Vec::new(),
            eq: VecDeque::new(),
            cq: vec![VecDeque::new(); spec.cond_count()],
            entered_at: HashMap::new(),
            holds: HashMap::new(),
            r_total: 0,
            s_total: 0,
            resource_no: rmax,
            rmax,
        }
    }

    fn report(&mut self, rule: RuleId, event: Option<&Event>, time: Nanos, message: String) {
        let mut v = Violation::new(self.monitor, rule, time, message);
        if let Some(e) = event {
            v = v.with_pid(e.pid).with_event(e.seq);
        }
        self.out.push(v);
    }

    fn cond_queue(&mut self, c: usize) -> &mut VecDeque<(PidProc, Nanos)> {
        if c >= self.cq.len() {
            self.cq.resize_with(c + 1, VecDeque::new);
        }
        &mut self.cq[c]
    }

    fn on_eq(&self, pid: Pid) -> bool {
        self.eq.iter().any(|(pp, _)| pp.pid == pid)
    }

    fn on_cq(&self, pid: Pid) -> bool {
        self.cq.iter().any(|q| q.iter().any(|(pp, _)| pp.pid == pid))
    }

    fn is_inside(&self, pid: Pid) -> bool {
        self.inside.iter().any(|pp| pp.pid == pid)
    }

    fn admit_eq_head(&mut self) {
        if let Some((head, _)) = self.eq.pop_front() {
            self.inside.push(head);
        }
    }

    fn step(&mut self, e: &Event) {
        let pid = e.pid;
        let t = e.time;

        // FD-5a/5b: a parked process must not act — acting means it was
        // resumed by something other than the legitimate resumption.
        if self.on_eq(pid) {
            self.report(
                RuleId::Fd5bEntryResume,
                Some(e),
                t,
                format!("{pid} acted while parked on the entry queue"),
            );
        } else if self.on_cq(pid) {
            self.report(
                RuleId::Fd5aCondResume,
                Some(e),
                t,
                format!("{pid} acted while parked on a condition queue"),
            );
        }

        match e.kind {
            EventKind::Enter { granted: true } => {
                // FD-1a: entry only when no process uses the monitor.
                if !self.inside.is_empty() {
                    self.report(
                        RuleId::Fd1aMutualExclusion,
                        Some(e),
                        t,
                        format!("{pid} entered while {:?} inside", self.inside),
                    );
                }
                self.inside.push(e.pid_proc());
                self.entered_at.insert(pid, t);
                self.order_checks(e);
            }
            EventKind::Enter { granted: false } => {
                // FD-3: a request is delayed only when the monitor is in
                // use.
                if self.inside.is_empty() {
                    self.report(
                        RuleId::Fd3FairResponse,
                        Some(e),
                        t,
                        format!("{pid} was blocked although the monitor was free"),
                    );
                }
                self.eq.push_back((e.pid_proc(), t));
                self.order_checks(e);
            }
            EventKind::Wait { cond } => {
                // FD-1d: every process operating inside must have
                // entered.
                if !self.is_inside(pid) {
                    self.report(
                        RuleId::Fd1dEnterObserved,
                        Some(e),
                        t,
                        format!("{pid} invoked Wait without having entered"),
                    );
                } else {
                    self.inside.retain(|pp| pp.pid != pid);
                    self.cond_queue(cond.as_usize()).push_back((e.pid_proc(), t));
                }
                // FD-6: wait-on-full/empty preconditions.
                if self.spec.class == MonitorClass::CommunicationCoordinator {
                    let role = self.spec.proc_role(e.proc_name);
                    let crole = self.spec.cond_role(cond);
                    if role == ProcRole::Send
                        && crole == CondRole::BufferFull
                        && self.resource_no != 0
                    {
                        self.report(
                            RuleId::Fd6ResourceConsistency,
                            Some(e),
                            t,
                            format!("Send delayed with R# = {}", self.resource_no),
                        );
                    }
                    if role == ProcRole::Receive
                        && crole == CondRole::BufferEmpty
                        && self.resource_no != self.rmax
                    {
                        self.report(
                            RuleId::Fd6ResourceConsistency,
                            Some(e),
                            t,
                            format!("Receive delayed with R# = {}", self.resource_no),
                        );
                    }
                }
                // FD-1b: Wait releases the monitor to the entry head.
                self.admit_eq_head();
            }
            EventKind::SignalExit { cond, resumed_waiter } => {
                if !self.is_inside(pid) {
                    self.report(
                        RuleId::Fd1dEnterObserved,
                        Some(e),
                        t,
                        format!("{pid} invoked Signal-Exit without having entered"),
                    );
                }
                // FD-2 bookkeeping: the process left.
                if let Some(&since) = self.entered_at.get(&pid) {
                    if t.saturating_since(since) > self.cfg.t_max {
                        self.report(
                            RuleId::Fd2Nontermination,
                            Some(e),
                            t,
                            format!(
                                "{pid} stayed inside for {} (Tmax = {})",
                                t.saturating_since(since),
                                self.cfg.t_max
                            ),
                        );
                    }
                }
                self.entered_at.remove(&pid);
                self.inside.retain(|pp| pp.pid != pid);

                // FD-6 success counters.
                if self.spec.class == MonitorClass::CommunicationCoordinator {
                    match self.spec.proc_role(e.proc_name) {
                        ProcRole::Send => {
                            self.s_total += 1;
                            self.resource_no -= 1;
                        }
                        ProcRole::Receive => {
                            self.r_total += 1;
                            self.resource_no += 1;
                        }
                        _ => {}
                    }
                    if self.r_total > self.s_total
                        || (self.s_total as i64) > (self.r_total as i64) + self.rmax
                    {
                        self.report(
                            RuleId::Fd6ResourceConsistency,
                            Some(e),
                            t,
                            format!(
                                "counters r = {}, s = {} out of range",
                                self.r_total, self.s_total
                            ),
                        );
                    }
                }

                // FD-7 removal at successful Release.
                if self.spec.proc_role(e.proc_name) == ProcRole::Release {
                    self.holds.remove(&pid);
                }

                // FD-1b/1c: resumption discipline.
                if resumed_waiter {
                    let popped = cond.and_then(|c| self.cond_queue(c.as_usize()).pop_front());
                    match popped {
                        Some((waiter, blocked_at)) => {
                            // FD-4 for the condition wait.
                            if t.saturating_since(blocked_at) > self.cfg.t_max {
                                self.report(
                                    RuleId::Fd4NoStarvation,
                                    Some(e),
                                    t,
                                    format!(
                                        "{} waited {} on a condition (Tmax = {})",
                                        waiter.pid,
                                        t.saturating_since(blocked_at),
                                        self.cfg.t_max
                                    ),
                                );
                            }
                            self.inside.push(waiter);
                        }
                        None => self.report(
                            RuleId::Fd1cCondHandoff,
                            Some(e),
                            t,
                            "Signal-Exit flagged a resumed waiter but no process waits on the condition".into(),
                        ),
                    }
                } else {
                    if let Some(&(head, blocked_at)) = self.eq.front() {
                        if t.saturating_since(blocked_at) > self.cfg.t_io {
                            self.report(
                                RuleId::Fd4NoStarvation,
                                Some(e),
                                t,
                                format!(
                                    "{} waited {} on the entry queue (Tio = {})",
                                    head.pid,
                                    t.saturating_since(blocked_at),
                                    self.cfg.t_io
                                ),
                            );
                        }
                    }
                    self.admit_eq_head();
                }
            }
            EventKind::Terminate => {
                self.report(
                    RuleId::Fd2Nontermination,
                    Some(e),
                    t,
                    format!("{pid} terminated inside the monitor"),
                );
                self.inside.retain(|pp| pp.pid != pid);
                self.entered_at.remove(&pid);
            }
        }
    }

    /// FD-7: per-process call ordering of Request/Release, checked at
    /// the `Enter` of each call.
    fn order_checks(&mut self, e: &Event) {
        match self.spec.proc_role(e.proc_name) {
            ProcRole::Request => {
                if let std::collections::hash_map::Entry::Vacant(slot) = self.holds.entry(e.pid) {
                    slot.insert(e.time);
                } else {
                    self.report(
                        RuleId::Fd7CallOrdering,
                        Some(e),
                        e.time,
                        format!("{} re-acquired a held resource", e.pid),
                    );
                }
            }
            ProcRole::Release if !self.holds.contains_key(&e.pid) => {
                self.report(
                    RuleId::Fd7CallOrdering,
                    Some(e),
                    e.time,
                    format!("{} released a resource it does not hold", e.pid),
                );
            }
            _ => {}
        }
    }

    fn finish(&mut self, final_state: Option<&MonitorState>, end_time: Nanos) {
        // FD-2: processes still inside past Tmax.
        for (&pid, &since) in &self.entered_at {
            if self.is_inside(pid) && end_time.saturating_since(since) > self.cfg.t_max {
                self.out.push(
                    Violation::new(
                        self.monitor,
                        RuleId::Fd2Nontermination,
                        end_time,
                        format!(
                            "{pid} still inside after {} (Tmax = {})",
                            end_time.saturating_since(since),
                            self.cfg.t_max
                        ),
                    )
                    .with_pid(pid)
                    .with_fault(FaultKind::InternalTermination),
                );
            }
        }
        // FD-4: processes still blocked past Tio / Tmax.
        for &(pp, since) in &self.eq {
            if end_time.saturating_since(since) > self.cfg.t_io {
                self.out.push(
                    Violation::new(
                        self.monitor,
                        RuleId::Fd4NoStarvation,
                        end_time,
                        format!(
                            "{} still on the entry queue after {}",
                            pp.pid,
                            end_time.saturating_since(since)
                        ),
                    )
                    .with_pid(pp.pid),
                );
            }
        }
        let cond_waits: Vec<(PidProc, Nanos)> =
            self.cq.iter().flat_map(|q| q.iter().copied()).collect();
        for (pp, since) in cond_waits {
            if end_time.saturating_since(since) > self.cfg.t_max {
                self.out.push(
                    Violation::new(
                        self.monitor,
                        RuleId::Fd4NoStarvation,
                        end_time,
                        format!(
                            "{} still on a condition queue after {}",
                            pp.pid,
                            end_time.saturating_since(since)
                        ),
                    )
                    .with_pid(pp.pid),
                );
            }
        }
        // FD-7: resources held past Tlimit.
        let held: Vec<(Pid, Nanos)> = self.holds.iter().map(|(&p, &t)| (p, t)).collect();
        for (pid, since) in held {
            if end_time.saturating_since(since) > self.cfg.t_limit {
                self.out.push(
                    Violation::new(
                        self.monitor,
                        RuleId::Fd7CallOrdering,
                        end_time,
                        format!(
                            "{pid} has held a resource for {} (Tlimit = {})",
                            end_time.saturating_since(since),
                            self.cfg.t_limit
                        ),
                    )
                    .with_pid(pid)
                    .with_fault(FaultKind::ResourceNeverReleased),
                );
            }
        }
        // Optional final-state comparison (how event-invisible faults
        // such as lost processes surface in the reference checker).
        if let Some(obs) = final_state {
            let replayed_eq: Vec<PidProc> = self.eq.iter().map(|&(pp, _)| pp).collect();
            if replayed_eq != obs.entry_queue {
                self.out.push(Violation::new(
                    self.monitor,
                    RuleId::Fd4NoStarvation,
                    end_time,
                    format!(
                        "replayed EQ {:?} differs from observed EQ {:?}",
                        replayed_eq, obs.entry_queue
                    ),
                ));
            }
            for c in 0..self.cq.len().max(obs.cond_queues.len()) {
                let replayed: Vec<PidProc> = self
                    .cq
                    .get(c)
                    .map(|q| q.iter().map(|&(pp, _)| pp).collect())
                    .unwrap_or_default();
                let observed = obs.cond_queues.get(c).cloned().unwrap_or_default();
                if replayed != observed {
                    self.out.push(Violation::new(
                        self.monitor,
                        RuleId::Fd5aCondResume,
                        end_time,
                        format!("replayed CQ[{c}] {replayed:?} differs from observed {observed:?}"),
                    ));
                }
            }
            if self.inside != obs.running {
                self.out.push(Violation::new(
                    self.monitor,
                    RuleId::Fd1aMutualExclusion,
                    end_time,
                    format!(
                        "replayed inside set {:?} differs from observed running {:?}",
                        self.inside, obs.running
                    ),
                ));
            }
            if let Some(avail) = obs.available {
                if avail as i64 != self.resource_no {
                    self.out.push(Violation::new(
                        self.monitor,
                        RuleId::Fd6ResourceConsistency,
                        end_time,
                        format!("replayed R# = {} differs from observed {avail}", self.resource_no),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CondId;

    const M: MonitorId = MonitorId::new(0);

    fn cfg() -> DetectorConfig {
        DetectorConfig::without_timeouts()
    }

    fn buf() -> crate::spec::BoundedBufferSpec {
        MonitorSpec::bounded_buffer("buf", 2)
    }

    #[test]
    fn clean_send_receive_history_passes() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::signal_exit(
                2,
                Nanos::new(20),
                M,
                Pid::new(1),
                bb.send,
                Some(bb.empty_cond),
                false,
            ),
            Event::enter(3, Nanos::new(30), M, Pid::new(2), bb.receive, true),
            Event::signal_exit(
                4,
                Nanos::new(40),
                M,
                Pid::new(2),
                bb.receive,
                Some(bb.full_cond),
                false,
            ),
        ];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(50));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fd1a_double_entry() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::enter(2, Nanos::new(20), M, Pid::new(2), bb.send, true),
        ];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(30));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd1aMutualExclusion), "{v:?}");
    }

    #[test]
    fn fd1d_wait_without_enter() {
        let bb = buf();
        let events = vec![Event::wait(1, Nanos::new(10), M, Pid::new(1), bb.send, bb.full_cond)];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(20));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd1dEnterObserved), "{v:?}");
    }

    #[test]
    fn fd3_blocked_while_free() {
        let bb = buf();
        let events = vec![Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, false)];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(20));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd3FairResponse), "{v:?}");
    }

    #[test]
    fn fd1c_phantom_signal() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::signal_exit(
                2,
                Nanos::new(20),
                M,
                Pid::new(1),
                bb.send,
                Some(bb.empty_cond),
                true,
            ),
        ];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(30));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd1cCondHandoff), "{v:?}");
    }

    #[test]
    fn fd2_terminate_inside() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::terminate(2, Nanos::new(20), M, Pid::new(1), bb.send),
        ];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(30));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd2Nontermination), "{v:?}");
    }

    #[test]
    fn fd2_stuck_inside_past_tmax() {
        let bb = buf();
        let events = vec![Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true)];
        let tight = DetectorConfig::builder().t_max(Nanos::from_millis(1)).build();
        let v = check_history(M, &bb.spec, &tight, &events, None, Nanos::from_secs(1));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd2Nontermination), "{v:?}");
    }

    #[test]
    fn fd4_starved_on_entry_queue() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::enter(2, Nanos::new(20), M, Pid::new(2), bb.receive, false),
        ];
        let tight = DetectorConfig::builder()
            .t_io(Nanos::from_millis(1))
            .t_max(Nanos::MAX)
            .t_limit(Nanos::MAX)
            .build();
        let v = check_history(M, &bb.spec, &tight, &events, None, Nanos::from_secs(1));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd4NoStarvation), "{v:?}");
    }

    #[test]
    fn fd5b_ghost_event_from_entry_queue() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::enter(2, Nanos::new(20), M, Pid::new(2), bb.receive, false),
            Event::signal_exit(
                3,
                Nanos::new(30),
                M,
                Pid::new(2),
                bb.receive,
                Some(bb.full_cond),
                false,
            ),
        ];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(40));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd5bEntryResume), "{v:?}");
    }

    #[test]
    fn fd6_receive_exceeds_send() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.receive, true),
            Event::signal_exit(
                2,
                Nanos::new(20),
                M,
                Pid::new(1),
                bb.receive,
                Some(bb.full_cond),
                false,
            ),
        ];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(30));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd6ResourceConsistency), "{v:?}");
    }

    #[test]
    fn fd7_release_without_request() {
        let al = MonitorSpec::allocator("res", 1);
        let events = vec![Event::enter(1, Nanos::new(10), M, Pid::new(1), al.release, true)];
        let v = check_history(M, &al.spec, &cfg(), &events, None, Nanos::new(20));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd7CallOrdering), "{v:?}");
    }

    #[test]
    fn fd7_never_released() {
        let al = MonitorSpec::allocator("res", 1);
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), al.request, true),
            Event::signal_exit(2, Nanos::new(20), M, Pid::new(1), al.request, None, false),
        ];
        let tight = DetectorConfig::builder()
            .t_limit(Nanos::from_millis(1))
            .t_max(Nanos::MAX)
            .t_io(Nanos::MAX)
            .build();
        let v = check_history(M, &al.spec, &tight, &events, None, Nanos::from_secs(1));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd7CallOrdering
            && v.fault == Some(FaultKind::ResourceNeverReleased)));
    }

    #[test]
    fn final_state_mismatch_is_reported() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::enter(2, Nanos::new(20), M, Pid::new(2), bb.receive, false),
        ];
        // Observed: P2 vanished from EQ.
        let mut obs = MonitorState::with_resources(2, 2);
        obs.running.push(PidProc::new(Pid::new(1), bb.send));
        let v = check_history(M, &bb.spec, &cfg(), &events, Some(&obs), Nanos::new(30));
        assert!(v.iter().any(|v| v.rule == RuleId::Fd4NoStarvation), "{v:?}");
    }

    #[test]
    fn wait_and_handoff_cycle_is_clean() {
        let bb = buf();
        // Receiver waits on empty; sender enters, deposits, signals.
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.receive, true),
            Event::wait(2, Nanos::new(20), M, Pid::new(1), bb.receive, bb.empty_cond),
            Event::enter(3, Nanos::new(30), M, Pid::new(2), bb.send, true),
            Event::signal_exit(
                4,
                Nanos::new(40),
                M,
                Pid::new(2),
                bb.send,
                Some(bb.empty_cond),
                true,
            ),
            Event::signal_exit(
                5,
                Nanos::new(50),
                M,
                Pid::new(1),
                bb.receive,
                Some(bb.full_cond),
                false,
            ),
        ];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(60));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn out_of_range_cond_does_not_panic() {
        let bb = buf();
        let events = vec![
            Event::enter(1, Nanos::new(10), M, Pid::new(1), bb.send, true),
            Event::wait(2, Nanos::new(20), M, Pid::new(1), bb.send, CondId::new(17)),
        ];
        let v = check_history(M, &bb.spec, &cfg(), &events, None, Nanos::new(30));
        // The wait itself is structurally fine; no panic is the point.
        assert!(v.is_empty(), "{v:?}");
    }
}
