//! The taxonomy of monitor concurrency-control faults (§2.2).
//!
//! The paper identifies **twenty-one** faults on three levels:
//!
//! * **Implementation level** — malfunction of the monitor primitives
//!   themselves: four `Enter` faults, six `Wait` faults, three
//!   `Signal-Exit` faults, and the internal-process-termination fault.
//! * **Monitor procedure level** — procedure operations that leave the
//!   shared resource in an inconsistent state (the four integrity
//!   constraints of the communication-coordinator type).
//! * **User process level** — logic/design errors in *using* the
//!   monitor: violations of the declared partial ordering of procedure
//!   calls (resource-access-right-allocator type).
//!
//! Every fault maps to at least one state-transition rule
//! ([`crate::rule::RuleId`]) whose violation detects it; the registry
//! returned by [`taxonomy`] records that mapping, and the coverage
//! experiment (EXP-COV) validates it empirically.

use crate::rule::RuleId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three levels of the fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultLevel {
    /// Faults in the implementation of the monitor primitives.
    Implementation,
    /// Faults in monitor procedures that corrupt resource state.
    MonitorProcedure,
    /// Faults in user processes' use of the monitor.
    UserProcess,
}

impl fmt::Display for FaultLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultLevel::Implementation => "implementation",
            FaultLevel::MonitorProcedure => "monitor-procedure",
            FaultLevel::UserProcess => "user-process",
        };
        f.write_str(s)
    }
}

/// The 21 concurrency-control fault classes of §2.2.
///
/// Naming: `E*` = Enter procedure faults, `W*` = Wait procedure faults,
/// `X*` = Signal-Exit procedure faults, `T1` = internal termination,
/// `P*` = monitor-procedure-level faults, `U*` = user-process-level
/// faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// I.a.1 — Mutual exclusion is not guaranteed: two or more processes
    /// have entered the monitor at the same time.
    EnterMutualExclusion,
    /// I.a.2 — The requesting process is lost: neither queued on `EQ`
    /// nor admitted.
    EnterProcessLost,
    /// I.a.3 — The requesting process receives no response: queued
    /// indefinitely, or blocked while the monitor is free.
    EnterNoResponse,
    /// I.a.4 — Entry is not observed: a process runs inside the monitor
    /// without having invoked `Enter`.
    EnterNotObserved,
    /// I.b.1 — Synchronization is not guaranteed: the caller of `Wait`
    /// is not blocked and continues to run inside the monitor.
    WaitNotBlocked,
    /// I.b.2 — The calling process is lost: neither queued on the
    /// condition nor running.
    WaitProcessLost,
    /// I.b.3 — Entry waiting processes are not resumed when the caller
    /// of `Wait` blocks.
    WaitEntryNotResumed,
    /// I.b.4 — An entry-waiting process is starved: never resumed,
    /// waits indefinitely.
    WaitEntryStarved,
    /// I.b.5 — Mutual exclusion is not guaranteed: more than one
    /// entry-waiting process resumed when the caller blocks.
    WaitMutualExclusion,
    /// I.b.6 — The monitor is not released although the caller of
    /// `Wait` blocked on the condition queue.
    WaitMonitorNotReleased,
    /// I.c.1 — No waiting process (condition or entry) is resumed when
    /// the caller exits.
    SignalExitNotResumed,
    /// I.c.2 — The caller exits but the monitor is not released.
    SignalExitMonitorNotReleased,
    /// I.c.3 — Mutual exclusion is not guaranteed: more than one
    /// process resumed on exit.
    SignalExitMutualExclusion,
    /// I.d — Internal process termination: the process terminates inside
    /// the monitor and never exits.
    InternalTermination,
    /// II.a — `Send` delayed although the buffer is not full, or not
    /// delayed although it is full.
    SendDelayViolation,
    /// II.b — `Receive` delayed although the buffer is not empty, or
    /// not delayed although it is empty.
    ReceiveDelayViolation,
    /// II.c — Successful `Receive` calls exceed successful `Send`
    /// calls (`r > s`).
    ReceiveExceedsSend,
    /// II.d — Successful `Send` calls exceed buffer capacity plus
    /// successful `Receive` calls (`s > r + Rmax`).
    SendExceedsCapacity,
    /// III.a — Ordering of monitor procedure calls is incorrect: a
    /// process releases a resource it never acquired.
    ReleaseWithoutAcquire,
    /// III.b — Resource is not released: a process never releases a
    /// resource after acquiring it.
    ResourceNeverReleased,
    /// III.c — Process is deadlocked: it re-acquires a resource it
    /// already holds without releasing it first.
    DoubleAcquire,
}

impl FaultKind {
    /// All 21 fault classes, in taxonomy order.
    pub const ALL: [FaultKind; 21] = [
        FaultKind::EnterMutualExclusion,
        FaultKind::EnterProcessLost,
        FaultKind::EnterNoResponse,
        FaultKind::EnterNotObserved,
        FaultKind::WaitNotBlocked,
        FaultKind::WaitProcessLost,
        FaultKind::WaitEntryNotResumed,
        FaultKind::WaitEntryStarved,
        FaultKind::WaitMutualExclusion,
        FaultKind::WaitMonitorNotReleased,
        FaultKind::SignalExitNotResumed,
        FaultKind::SignalExitMonitorNotReleased,
        FaultKind::SignalExitMutualExclusion,
        FaultKind::InternalTermination,
        FaultKind::SendDelayViolation,
        FaultKind::ReceiveDelayViolation,
        FaultKind::ReceiveExceedsSend,
        FaultKind::SendExceedsCapacity,
        FaultKind::ReleaseWithoutAcquire,
        FaultKind::ResourceNeverReleased,
        FaultKind::DoubleAcquire,
    ];

    /// Short identifier used in tables (`E1`…`E4`, `W1`…`W6`,
    /// `X1`…`X3`, `T1`, `P1`…`P4`, `U1`…`U3`).
    pub fn code(self) -> &'static str {
        match self {
            FaultKind::EnterMutualExclusion => "E1",
            FaultKind::EnterProcessLost => "E2",
            FaultKind::EnterNoResponse => "E3",
            FaultKind::EnterNotObserved => "E4",
            FaultKind::WaitNotBlocked => "W1",
            FaultKind::WaitProcessLost => "W2",
            FaultKind::WaitEntryNotResumed => "W3",
            FaultKind::WaitEntryStarved => "W4",
            FaultKind::WaitMutualExclusion => "W5",
            FaultKind::WaitMonitorNotReleased => "W6",
            FaultKind::SignalExitNotResumed => "X1",
            FaultKind::SignalExitMonitorNotReleased => "X2",
            FaultKind::SignalExitMutualExclusion => "X3",
            FaultKind::InternalTermination => "T1",
            FaultKind::SendDelayViolation => "P1",
            FaultKind::ReceiveDelayViolation => "P2",
            FaultKind::ReceiveExceedsSend => "P3",
            FaultKind::SendExceedsCapacity => "P4",
            FaultKind::ReleaseWithoutAcquire => "U1",
            FaultKind::ResourceNeverReleased => "U2",
            FaultKind::DoubleAcquire => "U3",
        }
    }

    /// The taxonomy level of this fault.
    pub fn level(self) -> FaultLevel {
        use FaultKind::*;
        match self {
            EnterMutualExclusion
            | EnterProcessLost
            | EnterNoResponse
            | EnterNotObserved
            | WaitNotBlocked
            | WaitProcessLost
            | WaitEntryNotResumed
            | WaitEntryStarved
            | WaitMutualExclusion
            | WaitMonitorNotReleased
            | SignalExitNotResumed
            | SignalExitMonitorNotReleased
            | SignalExitMutualExclusion
            | InternalTermination => FaultLevel::Implementation,
            SendDelayViolation
            | ReceiveDelayViolation
            | ReceiveExceedsSend
            | SendExceedsCapacity => FaultLevel::MonitorProcedure,
            ReleaseWithoutAcquire | ResourceNeverReleased | DoubleAcquire => {
                FaultLevel::UserProcess
            }
        }
    }

    /// The state-transition rules whose violation detects this fault
    /// (primary rule first).
    pub fn detected_by(self) -> &'static [RuleId] {
        use FaultKind::*;
        use RuleId::*;
        match self {
            EnterMutualExclusion => &[St3RunningUnique, St3RunningAtMostOne],
            EnterProcessLost => &[St1EntrySnapshot, St6EntryTimeout],
            EnterNoResponse => &[St3BlockedWhileFree, St6EntryTimeout],
            EnterNotObserved => &[St3RunningIsCaller],
            WaitNotBlocked => &[St4NoGhostEvents],
            WaitProcessLost => &[St2CondSnapshot, St5InsideTimeout],
            WaitEntryNotResumed => &[St1EntrySnapshot, St6EntryTimeout],
            WaitEntryStarved => &[St3RunningIsCaller, St6EntryTimeout],
            WaitMutualExclusion => &[St3RunningAtMostOne, St3RunningIsCaller],
            WaitMonitorNotReleased => &[St1EntrySnapshot, St6EntryTimeout],
            SignalExitNotResumed => {
                &[St1EntrySnapshot, St2CondSnapshot, St5InsideTimeout, St6EntryTimeout]
            }
            SignalExitMonitorNotReleased => &[St1EntrySnapshot, St6EntryTimeout],
            SignalExitMutualExclusion => &[St3RunningAtMostOne, St3RunningIsCaller],
            InternalTermination => &[St5InsideTimeout],
            SendDelayViolation => &[St7WaitSendBufferFull, St7CountInvariant],
            ReceiveDelayViolation => &[St7WaitReceiveBufferEmpty, St7CountInvariant],
            ReceiveExceedsSend => &[St7CountInvariant],
            SendExceedsCapacity => &[St7CountInvariant],
            ReleaseWithoutAcquire => &[St8ReleaseWithoutRequest, St8CallOrder],
            ResourceNeverReleased => &[St8HoldTimeout],
            DoubleAcquire => &[St8DuplicateRequest, St8CallOrder],
        }
    }

    /// One-line description (paper wording, condensed).
    pub fn description(self) -> &'static str {
        use FaultKind::*;
        match self {
            EnterMutualExclusion => "two or more processes entered the monitor at the same time",
            EnterProcessLost => "requesting process neither queued nor admitted",
            EnterNoResponse => {
                "requesting process queued indefinitely or blocked while monitor is free"
            }
            EnterNotObserved => "process runs inside the monitor without invoking Enter",
            WaitNotBlocked => "caller of Wait not blocked; continues inside the monitor",
            WaitProcessLost => "caller of Wait neither queued on the condition nor running",
            WaitEntryNotResumed => "no entry-queue process resumed when the caller blocked",
            WaitEntryStarved => "an entry-queue process is never resumed",
            WaitMutualExclusion => "more than one entry-queue process resumed on Wait",
            WaitMonitorNotReleased => {
                "caller blocked on the condition but the monitor was not released"
            }
            SignalExitNotResumed => "no waiting process resumed when the caller exited",
            SignalExitMonitorNotReleased => "caller exited but the monitor was not released",
            SignalExitMutualExclusion => "more than one process resumed on exit",
            InternalTermination => "process terminated inside the monitor without exiting",
            SendDelayViolation => "Send delayed iff the buffer is full was violated",
            ReceiveDelayViolation => "Receive delayed iff the buffer is empty was violated",
            ReceiveExceedsSend => "successful Receives exceed successful Sends",
            SendExceedsCapacity => "successful Sends exceed capacity plus successful Receives",
            ReleaseWithoutAcquire => "process releases a resource it never acquired",
            ResourceNeverReleased => "process never releases an acquired resource",
            DoubleAcquire => "process re-acquires a held resource (self-deadlock)",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.description())
    }
}

/// One entry of the taxonomy registry.
#[derive(Debug, Clone)]
pub struct FaultInfo {
    /// The fault class.
    pub kind: FaultKind,
    /// Short code (`E1` …).
    pub code: &'static str,
    /// Taxonomy level.
    pub level: FaultLevel,
    /// Rules whose violation detects the fault.
    pub detected_by: &'static [RuleId],
    /// One-line description.
    pub description: &'static str,
}

/// The complete fault-taxonomy registry, in paper order.
pub fn taxonomy() -> Vec<FaultInfo> {
    FaultKind::ALL
        .iter()
        .map(|&kind| FaultInfo {
            kind,
            code: kind.code(),
            level: kind.level(),
            detected_by: kind.detected_by(),
            description: kind.description(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn taxonomy_has_21_faults() {
        assert_eq!(FaultKind::ALL.len(), 21);
        assert_eq!(taxonomy().len(), 21);
    }

    #[test]
    fn codes_are_unique() {
        let codes: BTreeSet<_> = FaultKind::ALL.iter().map(|f| f.code()).collect();
        assert_eq!(codes.len(), 21);
    }

    #[test]
    fn level_split_matches_paper() {
        let impl_count =
            FaultKind::ALL.iter().filter(|f| f.level() == FaultLevel::Implementation).count();
        let proc_count =
            FaultKind::ALL.iter().filter(|f| f.level() == FaultLevel::MonitorProcedure).count();
        let user_count =
            FaultKind::ALL.iter().filter(|f| f.level() == FaultLevel::UserProcess).count();
        // 4 Enter + 6 Wait + 3 Signal-Exit + 1 termination = 14.
        assert_eq!(impl_count, 14);
        assert_eq!(proc_count, 4);
        assert_eq!(user_count, 3);
    }

    #[test]
    fn every_fault_is_detected_by_some_rule() {
        for f in FaultKind::ALL {
            assert!(!f.detected_by().is_empty(), "{} has no detection rule", f.code());
        }
    }

    #[test]
    fn descriptions_are_nonempty_and_lowercase_style() {
        for f in FaultKind::ALL {
            let d = f.description();
            assert!(!d.is_empty());
            assert!(!d.ends_with('.'), "{d:?} should not end with punctuation");
        }
    }

    #[test]
    fn display_contains_code() {
        let s = FaultKind::DoubleAcquire.to_string();
        assert!(s.starts_with("U3:"), "{s}");
    }

    #[test]
    fn registry_is_consistent_with_methods() {
        for info in taxonomy() {
            assert_eq!(info.code, info.kind.code());
            assert_eq!(info.level, info.kind.level());
            assert_eq!(info.detected_by, info.kind.detected_by());
        }
    }
}
