//! User-supplied state assertions — the paper's §5 extension:
//! *"Extensions can be made to allow predefined and user-supplied
//! assertions to be specified as part of monitor declarations and used
//! for checking the functional operations and external use of the
//! monitors."*
//!
//! A [`StateAssertion`] is a declarative predicate over the observed
//! scheduling state `⟨EQ, CQ[], Running, R#⟩`, declared alongside the
//! monitor and evaluated by the periodic checking routine at every
//! checkpoint. Violations are reported under
//! [`crate::RuleId::UserAssertion`].

use crate::ids::{CondId, MonitorId, Pid};
use crate::rule::RuleId;
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::Violation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A declarative predicate over an observed monitor state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateAssertion {
    /// `|EQ| ≤ n`: bounded entry-queue backlog.
    EntryQueueAtMost(usize),
    /// `|CQ[cond]| ≤ n`: bounded condition-queue backlog.
    CondQueueAtMost {
        /// The condition queue.
        cond: CondId,
        /// The bound.
        at_most: usize,
    },
    /// `R# ≤ n`: the resource counter never exceeds a bound (e.g. the
    /// declared capacity).
    AvailableAtMost(u64),
    /// `R# ≥ n`: a floor on the resource counter (e.g. a reserve that
    /// must never be exhausted).
    AvailableAtLeast(u64),
    /// Total processes captured by the snapshot stays bounded.
    PopulationAtMost(usize),
    /// A specific process must never appear inside this monitor
    /// (confinement).
    ExcludesPid(Pid),
}

impl StateAssertion {
    /// Evaluates the predicate; `None` when it holds, otherwise a
    /// human-readable description of the failure.
    pub fn check(&self, state: &MonitorState) -> Option<String> {
        match *self {
            StateAssertion::EntryQueueAtMost(n) => (state.entry_len() > n).then(|| {
                format!("entry queue holds {} processes (asserted ≤ {n})", state.entry_len())
            }),
            StateAssertion::CondQueueAtMost { cond, at_most } => {
                let len = state.cond_len(cond.as_usize());
                (len > at_most)
                    .then(|| format!("{cond} holds {len} processes (asserted ≤ {at_most})"))
            }
            StateAssertion::AvailableAtMost(n) => state
                .available
                .and_then(|a| (a > n).then(|| format!("R# = {a} exceeds asserted maximum {n}"))),
            StateAssertion::AvailableAtLeast(n) => state
                .available
                .and_then(|a| (a < n).then(|| format!("R# = {a} below asserted minimum {n}"))),
            StateAssertion::PopulationAtMost(n) => (state.population() > n)
                .then(|| format!("{} processes captured (asserted ≤ {n})", state.population())),
            StateAssertion::ExcludesPid(pid) => state
                .contains(pid)
                .then(|| format!("{pid} appears in a monitor it is excluded from")),
        }
    }

    /// Evaluates against a snapshot, producing a violation on failure.
    pub fn check_into(
        &self,
        monitor: MonitorId,
        state: &MonitorState,
        now: Nanos,
        out: &mut Vec<Violation>,
    ) {
        if let Some(message) = self.check(state) {
            out.push(Violation::new(
                monitor,
                RuleId::UserAssertion,
                now,
                format!("assertion {self} failed: {message}"),
            ));
        }
    }
}

impl fmt::Display for StateAssertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StateAssertion::EntryQueueAtMost(n) => write!(f, "|EQ| ≤ {n}"),
            StateAssertion::CondQueueAtMost { cond, at_most } => {
                write!(f, "|CQ[{cond}]| ≤ {at_most}")
            }
            StateAssertion::AvailableAtMost(n) => write!(f, "R# ≤ {n}"),
            StateAssertion::AvailableAtLeast(n) => write!(f, "R# ≥ {n}"),
            StateAssertion::PopulationAtMost(n) => write!(f, "population ≤ {n}"),
            StateAssertion::ExcludesPid(p) => write!(f, "excludes {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PidProc, ProcName};

    fn state_with(eq: usize, avail: Option<u64>) -> MonitorState {
        let mut s = MonitorState::new(2);
        for i in 0..eq {
            s.entry_queue.push(PidProc::new(Pid::new(i as u32), ProcName::new(0)));
        }
        s.available = avail;
        s
    }

    #[test]
    fn entry_queue_bound() {
        let a = StateAssertion::EntryQueueAtMost(2);
        assert!(a.check(&state_with(2, None)).is_none());
        assert!(a.check(&state_with(3, None)).is_some());
    }

    #[test]
    fn cond_queue_bound() {
        let a = StateAssertion::CondQueueAtMost { cond: CondId::new(1), at_most: 0 };
        let mut s = state_with(0, None);
        assert!(a.check(&s).is_none());
        s.cond_queues[1].push(PidProc::new(Pid::new(9), ProcName::new(0)));
        assert!(a.check(&s).is_some());
    }

    #[test]
    fn available_bounds() {
        let hi = StateAssertion::AvailableAtMost(4);
        let lo = StateAssertion::AvailableAtLeast(1);
        assert!(hi.check(&state_with(0, Some(4))).is_none());
        assert!(hi.check(&state_with(0, Some(5))).is_some());
        assert!(lo.check(&state_with(0, Some(1))).is_none());
        assert!(lo.check(&state_with(0, Some(0))).is_some());
        // Monitors without a counter trivially satisfy both.
        assert!(hi.check(&state_with(0, None)).is_none());
        assert!(lo.check(&state_with(0, None)).is_none());
    }

    #[test]
    fn population_and_exclusion() {
        let pop = StateAssertion::PopulationAtMost(1);
        assert!(pop.check(&state_with(1, None)).is_none());
        assert!(pop.check(&state_with(2, None)).is_some());
        let ex = StateAssertion::ExcludesPid(Pid::new(0));
        assert!(ex.check(&state_with(1, None)).is_some());
        assert!(ex.check(&state_with(0, None)).is_none());
    }

    #[test]
    fn check_into_produces_user_assertion_violations() {
        let a = StateAssertion::EntryQueueAtMost(0);
        let mut out = Vec::new();
        a.check_into(MonitorId::new(3), &state_with(1, None), Nanos::new(9), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RuleId::UserAssertion);
        assert!(out[0].message.contains("|EQ| ≤ 0"), "{}", out[0].message);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(StateAssertion::AvailableAtLeast(2).to_string(), "R# ≥ 2");
        assert_eq!(StateAssertion::PopulationAtMost(7).to_string(), "population ≤ 7");
    }
}
