//! Crate-level error type.

use crate::ids::MonitorId;
use crate::path::PathError;
use std::fmt;

/// Errors returned by fallible `rmon-core` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A path expression failed to parse or compile.
    Path(PathError),
    /// An operation referenced a monitor that was never registered.
    UnknownMonitor(MonitorId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Path(e) => write!(f, "{e}"),
            CoreError::UnknownMonitor(m) => write!(f, "monitor {m} is not registered"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Path(e) => Some(e),
            CoreError::UnknownMonitor(_) => None,
        }
    }
}

impl From<PathError> for CoreError {
    fn from(e: PathError) -> Self {
        CoreError::Path(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = CoreError::from(PathError::Parse { message: "x".into() });
        assert!(e.to_string().contains("syntax error"));
        assert!(e.source().is_some());
        let u = CoreError::UnknownMonitor(MonitorId::new(3));
        assert!(u.to_string().contains("M3"));
        assert!(u.source().is_none());
    }
}
