//! Detector configuration: the timing parameters of §3.2/§3.3.
//!
//! * `Tmax` — the maximum time any process may spend inside a monitor
//!   (running or waiting on a condition); exceeding it indicates
//!   non-termination inside the monitor (FD-2 / ST-5).
//! * `Tio` — the timeout for interpreting deadlock or starvation on the
//!   entry queue (FD-4 / ST-6).
//! * `Tlimit` — the maximum time a process may hold an access right
//!   before `Release` (ST-8c).
//! * `check_interval` (`T`) — how often the periodic checking routine
//!   runs. The paper: *"whenever T is reached the detection routine is
//!   automatically invoked"*, and *"when T = 1, the checking becomes
//!   real-time"*.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Whether (and when) the detector runs the predictive pass over the
/// recorded happens-before partial order (see
/// [`crate::detect::predict`]).
///
/// Default **off**: prediction adds clock bookkeeping on the recording
/// hot path and an enumeration pass at checkpoints, so it is strictly
/// opt-in (the `recording_only_ratio` budget is measured with it off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PredictMode {
    /// No prediction: only the executed schedule is judged.
    #[default]
    Off,
    /// At every checkpoint, enumerate feasible commutations of the
    /// window's concurrent events and report violations that exist in
    /// an equivalent reordering as [`crate::PredictedViolation`]s.
    Checkpoint,
}

impl PredictMode {
    /// Whether prediction is enabled at all.
    pub fn is_on(self) -> bool {
        self != PredictMode::Off
    }
}

/// Per-monitor instrumentation mode: how long a monitor operation
/// blocks on handing its event to the detection layer.
///
/// The mode forms a small lattice of coupling strength,
/// `Sync ⊐ Hybrid(t) ⊐ Async`:
///
/// * [`Sync`](Mode::Sync) — the paper's shape: the operation blocks
///   until the event is delivered to the detector. Detection lag is
///   zero, instrumentation overhead is maximal.
/// * [`Hybrid`](Mode::Hybrid) — bounded coupling: block up to the
///   given timeout, then detach and let the event ride the retained
///   buffer (delivery stays guaranteed, only the *wait* is bounded).
/// * [`Async`](Mode::Async) — fire-and-forget: never block the
///   monitor operation; events buffer and drain in the background.
///   Checkpoints still barrier on full delivery, so verdicts are
///   unchanged — only their latency moves.
///
/// The default is `Sync` (paper-faithful). Backends that support
/// per-monitor modes (the `AsyncBackend`) treat the config value as
/// the *base* mode and may tighten individual monitors toward `Sync`
/// when they look close to a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Mode {
    /// Block until the event reaches the detector (paper-faithful).
    #[default]
    Sync,
    /// Never block; events drain in the background.
    Async,
    /// Block up to the timeout, then detach.
    Hybrid(Nanos),
}

impl Mode {
    /// Whether this mode ever blocks the instrumented operation.
    pub fn blocks(self) -> bool {
        !matches!(self, Mode::Async)
    }

    /// The maximum time this mode blocks: `None` for unbounded
    /// ([`Sync`](Mode::Sync)), `Some(ZERO)` for never
    /// ([`Async`](Mode::Async)).
    pub fn bound(self) -> Option<Nanos> {
        match self {
            Mode::Sync => None,
            Mode::Async => Some(Nanos::ZERO),
            Mode::Hybrid(t) => Some(t),
        }
    }
}

/// Timing parameters for the detection algorithms.
///
/// # Examples
///
/// ```
/// use rmon_core::{DetectorConfig, Nanos};
/// let cfg = DetectorConfig::builder()
///     .t_max(Nanos::from_millis(100))
///     .t_io(Nanos::from_millis(200))
///     .t_limit(Nanos::from_millis(300))
///     .check_interval(Nanos::from_millis(50))
///     .build();
/// assert_eq!(cfg.t_max, Nanos::from_millis(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Maximum time inside a monitor (`Tmax`).
    pub t_max: Nanos,
    /// Entry-queue starvation timeout (`Tio`).
    pub t_io: Nanos,
    /// Maximum resource hold time (`Tlimit`).
    pub t_limit: Nanos,
    /// Periodic checking interval (`T`).
    pub check_interval: Nanos,
    /// Predictive-detection mode (default [`PredictMode::Off`]).
    pub predict: PredictMode,
    /// Base instrumentation mode (default [`Mode::Sync`],
    /// paper-faithful). Only mode-aware backends consult it; the
    /// inline detector is synchronous by construction.
    pub mode: Mode,
    /// Reject monitor registrations whose spec has Error-level static
    /// diagnostics (`RML0xx`, see [`crate::spec::analyze`]).
    ///
    /// Default **off** for drop-in compatibility with dynamically
    /// assembled specs; specs built by [`monitor_spec!`](crate::monitor_spec)
    /// are vetted at construction regardless. With the gate on,
    /// [`Detector::register`](crate::detect::Detector::register) panics
    /// on an Error-level spec (use
    /// [`try_register`](crate::detect::Detector::try_register) to
    /// handle the report instead).
    pub strict_specs: bool,
}

impl DetectorConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> DetectorConfigBuilder {
        DetectorConfigBuilder { cfg: DetectorConfig::default() }
    }

    /// A configuration where every timer is effectively disabled — used
    /// when only structural rules (not timing rules) should fire, e.g.
    /// in differential tests against the reference checker on traces
    /// without meaningful timestamps.
    pub fn without_timeouts() -> Self {
        DetectorConfig {
            t_max: Nanos::MAX,
            t_io: Nanos::MAX,
            t_limit: Nanos::MAX,
            check_interval: Nanos::from_millis(100),
            predict: PredictMode::Off,
            mode: Mode::Sync,
            strict_specs: false,
        }
    }
}

impl Default for DetectorConfig {
    /// Defaults sized for tests and simulations: `Tmax` 100 ms,
    /// `Tio` 200 ms, `Tlimit` 500 ms, checking every 50 ms.
    fn default() -> Self {
        DetectorConfig {
            t_max: Nanos::from_millis(100),
            t_io: Nanos::from_millis(200),
            t_limit: Nanos::from_millis(500),
            check_interval: Nanos::from_millis(50),
            predict: PredictMode::Off,
            mode: Mode::Sync,
            strict_specs: false,
        }
    }
}

/// Builder for [`DetectorConfig`].
#[derive(Debug, Clone)]
pub struct DetectorConfigBuilder {
    cfg: DetectorConfig,
}

impl DetectorConfigBuilder {
    /// Sets `Tmax`.
    pub fn t_max(mut self, v: Nanos) -> Self {
        self.cfg.t_max = v;
        self
    }

    /// Sets `Tio`.
    pub fn t_io(mut self, v: Nanos) -> Self {
        self.cfg.t_io = v;
        self
    }

    /// Sets `Tlimit`.
    pub fn t_limit(mut self, v: Nanos) -> Self {
        self.cfg.t_limit = v;
        self
    }

    /// Sets the checking interval `T`.
    pub fn check_interval(mut self, v: Nanos) -> Self {
        self.cfg.check_interval = v;
        self
    }

    /// Sets the predictive-detection mode.
    pub fn predict(mut self, v: PredictMode) -> Self {
        self.cfg.predict = v;
        self
    }

    /// Sets the base instrumentation mode.
    pub fn mode(mut self, v: Mode) -> Self {
        self.cfg.mode = v;
        self
    }

    /// Enables or disables the strict spec gate (reject Error-level
    /// specs at registration).
    pub fn strict_specs(mut self, v: bool) -> Self {
        self.cfg.strict_specs = v;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> DetectorConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ordered_sensibly() {
        let c = DetectorConfig::default();
        assert!(c.t_max < c.t_io, "a process should time out inside before entry starvation");
        assert!(c.check_interval < c.t_max);
    }

    #[test]
    fn builder_overrides_fields() {
        let c = DetectorConfig::builder()
            .t_max(Nanos::from_secs(1))
            .t_io(Nanos::from_secs(2))
            .t_limit(Nanos::from_secs(3))
            .check_interval(Nanos::from_millis(10))
            .build();
        assert_eq!(c.t_max, Nanos::from_secs(1));
        assert_eq!(c.t_io, Nanos::from_secs(2));
        assert_eq!(c.t_limit, Nanos::from_secs(3));
        assert_eq!(c.check_interval, Nanos::from_millis(10));
    }

    #[test]
    fn predict_defaults_off_and_builder_enables() {
        assert_eq!(DetectorConfig::default().predict, PredictMode::Off);
        assert!(!DetectorConfig::without_timeouts().predict.is_on());
        let c = DetectorConfig::builder().predict(PredictMode::Checkpoint).build();
        assert!(c.predict.is_on());
    }

    #[test]
    fn mode_defaults_sync_and_exposes_its_bound() {
        assert_eq!(DetectorConfig::default().mode, Mode::Sync);
        assert_eq!(DetectorConfig::without_timeouts().mode, Mode::Sync);
        assert!(Mode::Sync.blocks());
        assert!(!Mode::Async.blocks());
        assert!(Mode::Hybrid(Nanos::from_millis(1)).blocks());
        assert_eq!(Mode::Sync.bound(), None);
        assert_eq!(Mode::Async.bound(), Some(Nanos::ZERO));
        assert_eq!(Mode::Hybrid(Nanos::from_millis(1)).bound(), Some(Nanos::from_millis(1)));
        let c = DetectorConfig::builder().mode(Mode::Async).build();
        assert_eq!(c.mode, Mode::Async);
    }

    #[test]
    fn strict_specs_defaults_off_and_builder_enables() {
        assert!(!DetectorConfig::default().strict_specs);
        assert!(!DetectorConfig::without_timeouts().strict_specs);
        assert!(DetectorConfig::builder().strict_specs(true).build().strict_specs);
    }

    #[test]
    fn without_timeouts_disables_timers() {
        let c = DetectorConfig::without_timeouts();
        assert_eq!(c.t_max, Nanos::MAX);
        assert_eq!(c.t_io, Nanos::MAX);
        assert_eq!(c.t_limit, Nanos::MAX);
    }
}
