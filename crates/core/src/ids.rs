//! Identifier newtypes used throughout the detector.
//!
//! The paper's history information identifies each scheduling event by the
//! process (`Pid`), the monitor procedure (`Pname`) and, for `Wait` /
//! `Signal-Exit`, the condition variable (`Cond`). We model each of those
//! as a cheap copyable newtype ([`Pid`], [`ProcName`], [`CondId`]) plus a
//! [`MonitorId`] to multiplex several monitors over one event stream.
//!
//! Procedure and condition *names* (human-readable strings and their
//! semantic roles) live in the monitor specification
//! ([`crate::spec::MonitorSpec`]); events carry only the indices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A process identifier (the paper's `Pid`).
///
/// In the simulator this indexes the process table; in the real-thread
/// runtime it is assigned by the process registry.
///
/// # Examples
///
/// ```
/// use rmon_core::Pid;
/// let p = Pid::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Pid(u32);

impl Pid {
    /// Creates a process identifier from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Pid(index)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize` for table lookups.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Pid {
    #[inline]
    fn from(v: u32) -> Self {
        Pid(v)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A monitor identifier.
///
/// One detector instance can watch several monitors; every event carries
/// the identifier of the monitor it happened in.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MonitorId(u32);

impl MonitorId {
    /// Creates a monitor identifier from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        MonitorId(index)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize` for table lookups.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for MonitorId {
    #[inline]
    fn from(v: u32) -> Self {
        MonitorId(v)
    }
}

impl fmt::Display for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Index of a monitor procedure within its monitor's specification
/// (the paper's `Pname`).
///
/// The semantic role of the procedure (Send-like, Receive-like, …) is
/// resolved through [`crate::spec::MonitorSpec::procedure`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcName(u16);

impl ProcName {
    /// Creates a procedure-name index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        ProcName(index)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the index as `usize` for table lookups.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for ProcName {
    #[inline]
    fn from(v: u16) -> Self {
        ProcName(v)
    }
}

impl fmt::Display for ProcName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Index of a condition variable within its monitor's specification
/// (the paper's `Cond`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CondId(u16);

impl CondId {
    /// Creates a condition-variable index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        CondId(index)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the index as `usize` for table lookups.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for CondId {
    #[inline]
    fn from(v: u16) -> Self {
        CondId(v)
    }
}

impl fmt::Display for CondId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cond#{}", self.0)
    }
}

/// A `(Pid, ProcName)` pair — the element type of the paper's checking
/// lists (`Pid(Pr)` in §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PidProc {
    /// The calling process.
    pub pid: Pid,
    /// The monitor procedure it is executing.
    pub proc_name: ProcName,
}

impl PidProc {
    /// Creates a `(process, procedure)` pair.
    #[inline]
    pub const fn new(pid: Pid, proc_name: ProcName) -> Self {
        PidProc { pid, proc_name }
    }
}

impl fmt::Display for PidProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.pid, self.proc_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_roundtrip_and_display() {
        let p = Pid::new(42);
        assert_eq!(p.index(), 42);
        assert_eq!(p.as_usize(), 42);
        assert_eq!(Pid::from(42u32), p);
        assert_eq!(p.to_string(), "P42");
    }

    #[test]
    fn monitor_id_roundtrip_and_display() {
        let m = MonitorId::new(7);
        assert_eq!(m.index(), 7);
        assert_eq!(MonitorId::from(7u32), m);
        assert_eq!(m.to_string(), "M7");
    }

    #[test]
    fn proc_name_roundtrip() {
        let pr = ProcName::new(2);
        assert_eq!(pr.index(), 2);
        assert_eq!(ProcName::from(2u16), pr);
        assert_eq!(pr.to_string(), "proc#2");
    }

    #[test]
    fn cond_id_roundtrip() {
        let c = CondId::new(1);
        assert_eq!(c.index(), 1);
        assert_eq!(CondId::from(1u16), c);
        assert_eq!(c.to_string(), "cond#1");
    }

    #[test]
    fn pid_proc_display() {
        let pp = PidProc::new(Pid::new(1), ProcName::new(0));
        assert_eq!(pp.to_string(), "P1(proc#0)");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(Pid::new(1) < Pid::new(2));
        assert!(MonitorId::new(0) < MonitorId::new(1));
    }

    #[test]
    fn ids_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pid>();
        assert_send_sync::<MonitorId>();
        assert_send_sync::<ProcName>();
        assert_send_sync::<CondId>();
        assert_send_sync::<PidProc>();
    }
}
