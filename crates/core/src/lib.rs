//! # rmon-core — run-time fault detection for monitor-based concurrency
//!
//! A from-scratch Rust implementation of the detection model of
//! *"Run-time Fault Detection in Monitor Based Concurrent Programming"*
//! (Cao, Cheung & Chan, DSN 2001).
//!
//! The crate is execution-agnostic: it consumes a stream of scheduling
//! [`Event`]s (`Enter` / `Wait` / `Signal-Exit`) plus observed
//! [`MonitorState`] snapshots, and detects violations of the paper's
//! concurrency-control rules. Two sibling crates provide the
//! substrates that *produce* those streams — `rmon-sim` (a
//! deterministic simulator whose monitor kernel can be fault-injected)
//! and `rmon-rt` (a real-thread robust-monitor runtime).
//!
//! ## Model
//!
//! * [`spec::MonitorSpec`] — the augmented monitor declaration: class
//!   (communication coordinator / resource allocator / operation
//!   manager), procedures with semantic roles, condition variables,
//!   capacity `Rmax`, and a declared call order as a [`PathExpr`].
//! * [`Event`] / [`MonitorState`] — the scheduling events and states of
//!   §3.1 that make up the history information.
//! * [`FaultKind`] — the 21-fault taxonomy of §2.2, with its mapping to
//!   detection rules ([`taxonomy`]).
//! * [`detect::Detector`] — the incremental checking routine: real-time
//!   calling-order checks ([`detect::Detector::observe`]) plus periodic
//!   checkpoints ([`detect::Detector::checkpoint`]) running the paper's
//!   Algorithms 1–3 over the checking lists.
//! * [`reference::check_history`] — an independent, declarative
//!   implementation of FD-Rules 1–7 over complete histories, used for
//!   differential testing of the incremental engine.
//!
//! ## Example
//!
//! ```
//! use rmon_core::detect::Detector;
//! use rmon_core::{DetectorConfig, Event, MonitorId, MonitorSpec, MonitorState, Nanos, Pid};
//! use std::collections::HashMap;
//! use std::sync::Arc;
//!
//! // Declare a bounded buffer (communication-coordinator monitor).
//! let bb = MonitorSpec::bounded_buffer("mailbox", 4);
//! let m = MonitorId::new(0);
//!
//! // Register it with the detector.
//! let mut det = Detector::new(DetectorConfig::without_timeouts());
//! det.register_empty(m, Arc::new(bb.spec.clone()), Nanos::ZERO);
//!
//! // A producer deposits one item …
//! let history = vec![
//!     Event::enter(1, Nanos::new(10), m, Pid::new(1), bb.send, true),
//!     Event::signal_exit(2, Nanos::new(20), m, Pid::new(1), bb.send, Some(bb.empty_cond), false),
//! ];
//!
//! // … and the periodic check finds the history consistent with the
//! // observed state (three free slots).
//! let mut snapshots = HashMap::new();
//! snapshots.insert(m, MonitorState::with_resources(2, 3));
//! let report = det.checkpoint(Nanos::new(30), &history, &snapshots);
//! assert!(report.is_clean());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assertion;
mod config;
pub mod detect;
mod error;
pub mod event;
mod fault;
mod history;
pub mod hlc;
mod ids;
mod lists;
pub mod oplog;
pub mod path;
pub mod reference;
mod rule;
pub mod spec;
mod state;
mod time;
pub mod vclock;
mod violation;

pub use assertion::StateAssertion;
pub use config::{DetectorConfig, DetectorConfigBuilder, Mode, PredictMode};
pub use error::CoreError;
pub use event::{Event, EventKind};
pub use fault::{taxonomy, FaultInfo, FaultKind, FaultLevel};
pub use history::HistoryDb;
pub use hlc::{Hlc, HlcStamp};
pub use ids::{CondId, MonitorId, Pid, PidProc, ProcName};
pub use lists::{GeneralLists, OrderState, ResourceState};
pub use oplog::{EventSink, MemorySink, ViolationSink};
pub use path::{CompiledPath, OrderViolation, PathError, PathExpr, PathTracker};
pub use rule::RuleId;
pub use spec::{
    analyze::analyze, analyze_all, analyze_fleet, AllocatorSpec, BoundedBufferSpec, CondRole,
    CondSpec, DiagCode, Diagnostic, LintReport, ManagerSpec, MonitorClass, MonitorSpec,
    MonitorSpecBuilder, ProcRole, ProcedureSpec, Severity,
};
pub use state::MonitorState;
pub use time::Nanos;
pub use vclock::VClock;
pub use violation::{FaultReport, PredictedViolation, Violation};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Event>();
        assert_send_sync::<MonitorState>();
        assert_send_sync::<MonitorSpec>();
        assert_send_sync::<FaultReport>();
        assert_send_sync::<detect::Detector>();
        assert_send_sync::<HistoryDb>();
        assert_send_sync::<DetectorConfig>();
    }

    #[test]
    fn taxonomy_rules_are_all_st_rules() {
        for info in taxonomy() {
            for rule in info.detected_by {
                assert!(rule.is_st(), "{} mapped to non-ST rule {rule}", info.code);
            }
        }
    }
}
