//! Hybrid logical clocks for merging cross-worker event order.
//!
//! The distributed detection service (`rmon-net`) receives event
//! batches from N independent worker processes, each stamping events
//! with its own monotone [`Nanos`] clock. Detection itself needs only
//! per-session FIFO order (the engine's watermarks are per
//! `(monitor, pid)` — see `crate::detect::service`), but the *fleet*
//! still wants one timeline that respects causality across workers:
//! service-side checkpoint times must not run backwards relative to
//! any event already ingested, and operators want a bounded notion of
//! clock skew between workers.
//!
//! [`Hlc`] is a standard hybrid logical clock (Kulkarni et al., "Logical
//! Physical Clocks"): a stamp is a `(physical, logical)` pair where
//! `physical` tracks the largest wall/virtual time seen and `logical`
//! breaks ties among stamps sharing that physical time. Stamps are
//! totally ordered, monotone per clock, and [`Hlc::observe`] makes a
//! receive causally follow the send — unlike [`crate::VClock`] (which
//! captures the *partial* order for prediction), an HLC deliberately
//! produces a total order that is *consistent with* happens-before.
//!
//! # Examples
//!
//! ```
//! use rmon_core::hlc::Hlc;
//! use rmon_core::Nanos;
//!
//! let mut sender = Hlc::new();
//! let mut receiver = Hlc::new();
//!
//! // The sender stamps a message at its local time 100.
//! let sent = sender.tick(Nanos::new(100));
//! // The receiver's wall clock lags (time 40), but observing the
//! // message still orders the receive after the send.
//! let received = receiver.observe(sent, Nanos::new(40));
//! assert!(received > sent);
//! ```

use crate::time::Nanos;
use std::fmt;

/// One hybrid-logical-clock stamp: the largest physical time the
/// stamping clock had seen, plus a logical tie-breaker. The derived
/// lexicographic `Ord` (physical first, then logical) *is* the HLC
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HlcStamp {
    /// Physical component: the max of the clock's local time and every
    /// observed remote stamp's physical time.
    pub physical: Nanos,
    /// Logical component: increments to order stamps that share a
    /// physical time; resets to zero when physical advances.
    pub logical: u32,
}

impl HlcStamp {
    /// The zero stamp (what a fresh clock has seen).
    pub const ZERO: HlcStamp = HlcStamp { physical: Nanos::ZERO, logical: 0 };

    /// A stamp at `physical` with a zero logical component.
    pub const fn at(physical: Nanos) -> HlcStamp {
        HlcStamp { physical, logical: 0 }
    }
}

impl fmt::Display for HlcStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.physical, self.logical)
    }
}

/// A hybrid logical clock: issues monotone [`HlcStamp`]s from a local
/// [`Nanos`] clock ([`Hlc::tick`]) and merges stamps received from
/// other clocks ([`Hlc::observe`]). Not internally synchronized — wrap
/// it in a mutex to share across threads (the net service holds one
/// per fleet).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hlc {
    last: HlcStamp,
}

impl Hlc {
    /// A fresh clock that has seen nothing (its next stamp strictly
    /// follows [`HlcStamp::ZERO`]).
    pub fn new() -> Hlc {
        Hlc::default()
    }

    /// The last stamp issued or observed.
    pub fn last(&self) -> HlcStamp {
        self.last
    }

    /// Issues the next stamp for a local event at local time `now`:
    /// strictly greater than every stamp this clock has issued or
    /// observed, and `>= HlcStamp::at(now)`.
    pub fn tick(&mut self, now: Nanos) -> HlcStamp {
        if now > self.last.physical {
            self.last = HlcStamp::at(now);
        } else {
            self.last.logical = self.last.logical.saturating_add(1);
        }
        self.last
    }

    /// Merges a stamp received from another clock and issues the stamp
    /// of the receive: strictly greater than both `remote` and every
    /// stamp this clock has issued or observed, and `>=
    /// HlcStamp::at(now)`.
    pub fn observe(&mut self, remote: HlcStamp, now: Nanos) -> HlcStamp {
        let physical = self.last.physical.max(remote.physical).max(now);
        let logical = if physical == self.last.physical && physical == remote.physical {
            self.last.logical.max(remote.logical).saturating_add(1)
        } else if physical == self.last.physical {
            self.last.logical.saturating_add(1)
        } else if physical == remote.physical {
            remote.logical.saturating_add(1)
        } else {
            0
        };
        self.last = HlcStamp { physical, logical };
        self.last
    }

    /// How far ahead of local time `now` the clock's physical component
    /// has been pushed by observed remote stamps — the fleet's apparent
    /// clock skew, zero when this clock's own time dominates.
    pub fn skew(&self, now: Nanos) -> Nanos {
        self.last.physical.saturating_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_strictly_monotone_even_with_a_stuck_clock() {
        let mut hlc = Hlc::new();
        let mut prev = HlcStamp::ZERO;
        for _ in 0..100 {
            let s = hlc.tick(Nanos::new(50)); // clock never advances
            assert!(s > prev);
            assert_eq!(s.physical, Nanos::new(50));
            prev = s;
        }
        // A real time advance resets the logical component.
        let s = hlc.tick(Nanos::new(51));
        assert_eq!(s, HlcStamp::at(Nanos::new(51)));
    }

    #[test]
    fn observe_orders_receive_after_send() {
        let mut a = Hlc::new();
        let mut b = Hlc::new();
        let sent = a.tick(Nanos::new(1_000));
        // Receiver's clock is far behind the sender's.
        let recv = b.observe(sent, Nanos::new(10));
        assert!(recv > sent, "receive must follow send: {recv:?} vs {sent:?}");
        // And the receiver's next local stamp follows the receive.
        assert!(b.tick(Nanos::new(11)) > recv);
    }

    #[test]
    fn observe_tracks_the_max_of_all_inputs() {
        let mut hlc = Hlc::new();
        hlc.tick(Nanos::new(500));
        // Local time dominates a stale remote stamp.
        let s = hlc.observe(HlcStamp::at(Nanos::new(20)), Nanos::new(600));
        assert_eq!(s, HlcStamp::at(Nanos::new(600)));
        // A remote stamp ahead of local time dominates (skew visible).
        let s = hlc.observe(HlcStamp { physical: Nanos::new(900), logical: 3 }, Nanos::new(601));
        assert_eq!(s, HlcStamp { physical: Nanos::new(900), logical: 4 });
        assert_eq!(hlc.skew(Nanos::new(601)), Nanos::new(299));
        assert_eq!(hlc.skew(Nanos::new(1_000)), Nanos::ZERO);
    }

    #[test]
    fn equal_physical_times_merge_logical_components() {
        let mut hlc = Hlc::new();
        hlc.tick(Nanos::new(100)); // last = (100, 0)
        let s = hlc.observe(HlcStamp { physical: Nanos::new(100), logical: 7 }, Nanos::new(100));
        assert_eq!(s, HlcStamp { physical: Nanos::new(100), logical: 8 });
    }

    #[test]
    fn stamps_order_lexicographically() {
        let a = HlcStamp { physical: Nanos::new(5), logical: 9 };
        let b = HlcStamp { physical: Nanos::new(6), logical: 0 };
        let c = HlcStamp { physical: Nanos::new(6), logical: 1 };
        assert!(a < b && b < c);
        assert_eq!(HlcStamp::ZERO, HlcStamp::default());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(HlcStamp { physical: Nanos::new(42), logical: 3 }.to_string(), "42ns+3");
    }
}
