//! Vector clocks over the monitor-mediated happens-before relation.
//!
//! The recorder serializes one *total* order (a single sequence
//! counter), but the paper's scheduling events only constrain a
//! *partial* order: two critical sections of the same monitor are
//! ordered, two blocked entry attempts of different threads are not.
//! [`VClock`] captures that partial order so the predictive pass
//! (`crate::detect::predict`) can reason about feasible reorderings of
//! the recorded schedule.
//!
//! ## Representation
//!
//! A clock is a fixed array of [`VClock::CAPACITY`] counters, one per
//! *slot* (a slot is a thread, assigned on first recorded event), plus
//! the owner slot of the thread that stamped it. Keeping the clock
//! `Copy` with a fixed footprint lets [`crate::Event`] carry it by
//! value through the lock-free recording pipeline (whose segment chunks
//! store events in `MaybeUninit` slots and k-way-merge them by `seq`).
//!
//! Three degenerate states keep the type total:
//!
//! * **unset** ([`VClock::UNSET`]) — the event was recorded without
//!   clock attachment (the default; prediction is opt-in). Unset clocks
//!   compare as *ordered by sequence number* everywhere, which is
//!   always sound: the executed total order is a linear extension of
//!   happens-before, so treating it as the partial order itself merely
//!   forbids every commutation.
//! * **saturated** ([`VClock::saturated`]) — the thread population
//!   outgrew [`VClock::CAPACITY`]. An overflowing thread's events
//!   degrade to "ordered with everything", the same sound fallback.
//! * **set** — a real stamp: the owning slot has been ticked at least
//!   once, so `clock.get(owner) ≥ 1`.
//!
//! ## Laws
//!
//! [`VClock::merge`] is the least upper bound of the slot-wise lattice:
//! idempotent, commutative and associative, with `UNSET` as identity
//! and `saturated` as absorbing top. `a ≤ b` iff every slot of `a` is
//! `≤` the corresponding slot of `b` ([`VClock::le`]); the property
//! suite in `tests/property.rs` checks these laws over arbitrary
//! clocks.

use std::cmp::Ordering;
use std::fmt;

/// Owner tag of an unset clock.
const OWNER_NONE: u8 = u8::MAX;
/// Owner tag of a saturated clock (slot population overflow).
const OWNER_SATURATED: u8 = u8::MAX - 1;

/// A fixed-capacity vector clock stamped on recorded events.
///
/// See the [module docs](self) for representation and laws.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VClock {
    /// Per-slot event counters.
    slots: [u32; VClock::CAPACITY],
    /// Slot of the stamping thread, or one of the degenerate tags.
    owner: u8,
}

impl VClock {
    /// Number of thread slots a clock can track. Threads beyond this
    /// population saturate (soundly losing commutation freedom, never
    /// ordering guarantees).
    pub const CAPACITY: usize = 8;

    /// The unset clock: no stamp attached.
    pub const UNSET: VClock = VClock { slots: [0; VClock::CAPACITY], owner: OWNER_NONE };

    /// The saturated clock: ordered with everything.
    pub const fn saturated() -> VClock {
        VClock { slots: [0; VClock::CAPACITY], owner: OWNER_SATURATED }
    }

    /// A fresh zero clock owned by `slot` (not yet ticked). Slots at or
    /// beyond [`Self::CAPACITY`] yield a saturated clock.
    pub fn for_slot(slot: usize) -> VClock {
        if slot >= Self::CAPACITY {
            return Self::saturated();
        }
        VClock { slots: [0; Self::CAPACITY], owner: slot as u8 }
    }

    /// Whether a stamp is attached (set or saturated — anything but
    /// [`Self::UNSET`]).
    pub fn is_set(&self) -> bool {
        self.owner != OWNER_NONE
    }

    /// Whether the clock is the saturated (ordered-with-everything)
    /// degenerate.
    pub fn is_saturated(&self) -> bool {
        self.owner == OWNER_SATURATED
    }

    /// The owning slot of a set clock; `None` for unset / saturated.
    pub fn owner(&self) -> Option<usize> {
        (self.owner < Self::CAPACITY as u8).then_some(self.owner as usize)
    }

    /// The counter of `slot` (0 when out of range).
    pub fn get(&self, slot: usize) -> u32 {
        self.slots.get(slot).copied().unwrap_or(0)
    }

    /// Advances the owner's counter by one (the stamp of one event).
    /// No-op on unset and saturated clocks.
    pub fn tick(&mut self) {
        if let Some(slot) = self.owner() {
            self.slots[slot] = self.slots[slot].saturating_add(1);
        }
    }

    /// Least upper bound: slot-wise max, keeping the receiver's
    /// identity. Merging a saturated clock in saturates; merging a
    /// fresh [`Self::UNSET`] clock is the identity (its counters are
    /// all zero). An ownerless receiver stays ownerless but still
    /// accumulates counters — the shape of a *monitor* clock, which
    /// gathers the stamps of every releasing thread without ever
    /// stamping events itself.
    pub fn merge(&mut self, other: &VClock) {
        if self.is_saturated() {
            return;
        }
        if other.is_saturated() {
            *self = Self::saturated();
            return;
        }
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// The merged (least-upper-bound) clock of `a` and `b`.
    pub fn merged(a: &VClock, b: &VClock) -> VClock {
        let mut out = *a;
        out.merge(b);
        out
    }

    /// Componentwise `≤`. Degenerate operands order conservatively:
    /// anything involving an unset or saturated clock answers `true`
    /// (callers must fall back to sequence order — see
    /// [`crate::detect::predict`]).
    pub fn le(&self, other: &VClock) -> bool {
        if !self.is_set() || !other.is_set() || self.is_saturated() || other.is_saturated() {
            return true;
        }
        self.slots.iter().zip(other.slots.iter()).all(|(a, b)| a <= b)
    }

    /// The partial order of *set, unsaturated* clocks: `Less`/`Greater`
    /// for strictly ordered clocks, `Equal` for identical counters,
    /// `None` for concurrent ones — and `None` whenever either operand
    /// is degenerate (no counter information to compare).
    pub fn partial_cmp(&self, other: &VClock) -> Option<Ordering> {
        if !self.is_set() || !other.is_set() || self.is_saturated() || other.is_saturated() {
            return None;
        }
        let mut le = true;
        let mut ge = true;
        for (a, b) in self.slots.iter().zip(other.slots.iter()) {
            le &= a <= b;
            ge &= a >= b;
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Whether two set clocks are concurrent (neither `≤` the other).
    /// Degenerate operands are never concurrent.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        self.partial_cmp(other).is_none()
            && self.is_set()
            && other.is_set()
            && !self.is_saturated()
            && !other.is_saturated()
    }

    /// Raw slot counters (for the oplog codec).
    pub fn raw_slots(&self) -> &[u32; VClock::CAPACITY] {
        &self.slots
    }

    /// Rebuilds a set clock from codec fields. `slot` values at or
    /// beyond capacity yield the saturated clock.
    pub fn from_parts(owner: usize, slots: [u32; VClock::CAPACITY]) -> VClock {
        if owner >= Self::CAPACITY {
            return Self::saturated();
        }
        VClock { slots, owner: owner as u8 }
    }
}

impl Default for VClock {
    fn default() -> Self {
        Self::UNSET
    }
}

impl fmt::Debug for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_set() {
            return f.write_str("vc(unset)");
        }
        if self.is_saturated() {
            return f.write_str("vc(saturated)");
        }
        let hi = self.slots.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
        write!(f, "vc[{}]{:?}", self.owner, &self.slots[..hi.max(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(owner: usize, counts: &[u32]) -> VClock {
        let mut slots = [0u32; VClock::CAPACITY];
        slots[..counts.len()].copy_from_slice(counts);
        VClock::from_parts(owner, slots)
    }

    #[test]
    fn unset_is_default_and_identity() {
        assert_eq!(VClock::default(), VClock::UNSET);
        assert!(!VClock::UNSET.is_set());
        let a = clock(0, &[3, 1]);
        assert_eq!(VClock::merged(&a, &VClock::UNSET), a);
        let mut adopted = VClock::UNSET;
        adopted.merge(&a);
        assert_eq!(adopted.raw_slots(), a.raw_slots());
        assert_eq!(adopted.owner(), None, "identity is not adopted");
    }

    #[test]
    fn tick_advances_owner_slot_only() {
        let mut c = VClock::for_slot(2);
        c.tick();
        c.tick();
        assert_eq!(c.get(2), 2);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.owner(), Some(2));
    }

    #[test]
    fn merge_is_lub() {
        let a = clock(0, &[3, 0, 5]);
        let b = clock(1, &[1, 4, 2]);
        let m = VClock::merged(&a, &b);
        assert_eq!(m.get(0), 3);
        assert_eq!(m.get(1), 4);
        assert_eq!(m.get(2), 5);
        assert_eq!(m.owner(), Some(0), "merge keeps the receiver's identity");
        // Lattice laws (the property suite fuzzes these).
        assert_eq!(VClock::merged(&a, &a), a);
        assert_eq!(VClock::merged(&a, &b).raw_slots(), VClock::merged(&b, &a).raw_slots());
    }

    #[test]
    fn partial_order_and_concurrency() {
        let a = clock(0, &[1, 0]);
        let b = clock(0, &[2, 1]);
        let c = clock(1, &[0, 2]);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp(&a), Some(Ordering::Greater));
        assert!(a.le(&b) && !b.le(&a));
        assert!(b.concurrent_with(&c) && c.concurrent_with(&b));
        assert!(!a.concurrent_with(&a));
    }

    #[test]
    fn saturation_is_absorbing_and_orders_with_everything() {
        assert_eq!(VClock::for_slot(VClock::CAPACITY), VClock::saturated());
        let a = clock(0, &[1]);
        let mut s = VClock::saturated();
        s.tick(); // no-op
        assert!(s.is_saturated());
        assert_eq!(VClock::merged(&a, &s), VClock::saturated());
        assert_eq!(VClock::merged(&s, &a), VClock::saturated());
        assert!(s.le(&a) && a.le(&s), "degenerates order conservatively");
        assert_eq!(s.partial_cmp(&a), None);
        assert!(!s.concurrent_with(&a), "degenerates are never concurrent");
    }

    #[test]
    fn debug_is_compact() {
        assert_eq!(format!("{:?}", VClock::UNSET), "vc(unset)");
        assert_eq!(format!("{:?}", VClock::saturated()), "vc(saturated)");
        let mut c = VClock::for_slot(1);
        c.tick();
        assert_eq!(format!("{c:?}"), "vc[1][0, 1]");
    }
}
