//! The checking lists of §3.3.1 and their state-transition semantics
//! (§3.3.2).
//!
//! The paper derives faults *indirectly*: events are viewed as functions
//! mapping one consistent monitor state into another, and the detector
//! replays the recorded event sequence over lists initialized from the
//! state at the last checking time. Any step that breaks an ST-Rule, or
//! any mismatch between the replayed lists and the observed state at the
//! current checking time, reveals a concurrency-control fault.
//!
//! Three state groups mirror the paper's three algorithms:
//!
//! * [`GeneralLists`] — Enter-Q-List, Wait-Cond-Lists, Running-List and
//!   the per-process timers (Algorithm-1, ST-1..6);
//! * [`ResourceState`] — Resource-No and the `r`/`s` success counters
//!   (Algorithm-2, ST-7);
//! * [`OrderState`] — the Request-List and the path-expression call-order
//!   trackers (Algorithm-3, ST-8; checked in real time).

use crate::config::DetectorConfig;
use crate::event::{Event, EventKind};
use crate::fault::FaultKind;
use crate::ids::{MonitorId, Pid, PidProc, ProcName};
use crate::path::CompiledPath;
use crate::rule::RuleId;
use crate::spec::{CondRole, MonitorClass, MonitorSpec, ProcRole};
use crate::state::MonitorState;
use crate::time::Nanos;
use crate::violation::Violation;
use std::collections::{HashMap, VecDeque};

/// Enter-Q-List, Wait-Cond-Lists and Running-List, plus per-process
/// situation timers (reset whenever a process moves between lists).
///
/// This is the state Algorithm-1 replays events over.
#[derive(Debug, Clone)]
pub struct GeneralLists {
    monitor: MonitorId,
    enter_q: VecDeque<PidProc>,
    wait_cond: Vec<VecDeque<PidProc>>,
    running: Vec<PidProc>,
    /// When each present process entered its *current* list.
    timers: HashMap<Pid, Nanos>,
}

impl GeneralLists {
    /// Empty lists for a monitor with `conds` condition queues.
    pub fn new(monitor: MonitorId, conds: usize) -> Self {
        GeneralLists {
            monitor,
            enter_q: VecDeque::new(),
            wait_cond: vec![VecDeque::new(); conds],
            running: Vec::new(),
            timers: HashMap::new(),
        }
    }

    /// Lists initialized from an observed state `s_p` at the last
    /// checking time (the paper's initialization step).
    pub fn from_state(monitor: MonitorId, conds: usize, state: &MonitorState, now: Nanos) -> Self {
        let mut l = Self::new(monitor, conds);
        l.resync(state, now);
        l
    }

    /// The replayed entry queue.
    pub fn enter_q(&self) -> &VecDeque<PidProc> {
        &self.enter_q
    }

    /// The replayed condition queues.
    pub fn wait_cond(&self) -> &[VecDeque<PidProc>] {
        &self.wait_cond
    }

    /// The replayed running list (correct executions keep it ≤ 1).
    pub fn running(&self) -> &[PidProc] {
        &self.running
    }

    /// The situation timer for `pid`, if present in any list.
    pub fn timer(&self, pid: Pid) -> Option<Nanos> {
        self.timers.get(&pid).copied()
    }

    fn cond_queue_mut(&mut self, cond: usize) -> &mut VecDeque<PidProc> {
        if cond >= self.wait_cond.len() {
            // Malformed traces may name more conditions than declared;
            // grow gracefully — the spec mismatch shows up elsewhere.
            self.wait_cond.resize_with(cond + 1, VecDeque::new);
        }
        &mut self.wait_cond[cond]
    }

    fn in_enter_q(&self, pid: Pid) -> bool {
        self.enter_q.iter().any(|pp| pp.pid == pid)
    }

    fn in_wait_cond(&self, pid: Pid) -> bool {
        self.wait_cond.iter().any(|q| q.iter().any(|pp| pp.pid == pid))
    }

    fn remove_running(&mut self, pid: Pid) -> Option<PidProc> {
        let idx = self.running.iter().position(|pp| pp.pid == pid)?;
        Some(self.running.remove(idx))
    }

    /// Hands the monitor to the head of the entry queue (the replayed
    /// equivalent of releasing the monitor).
    fn admit_entry_head(&mut self, now: Nanos) {
        if let Some(head) = self.enter_q.pop_front() {
            self.timers.insert(head.pid, now);
            self.running.push(head);
        }
    }

    /// Replays one event over the lists, appending any ST-1..4
    /// violations detected *during* the step (timer and snapshot checks
    /// happen separately at checkpoints).
    pub fn apply(&mut self, spec: &MonitorSpec, event: &Event, out: &mut Vec<Violation>) {
        let pid = event.pid;
        let now = event.time;
        let caller = event.pid_proc();

        // ST-4: the process issuing an event must not currently be
        // parked on the entry queue or a condition queue.
        if self.in_enter_q(pid) {
            out.push(
                Violation::new(
                    self.monitor,
                    RuleId::St4NoGhostEvents,
                    now,
                    format!("{pid} issued {} while parked on the entry queue", event.kind.tag()),
                )
                .with_pid(pid)
                .with_event(event.seq)
                .with_fault(FaultKind::EnterNotObserved),
            );
        } else if self.in_wait_cond(pid) {
            out.push(
                Violation::new(
                    self.monitor,
                    RuleId::St4NoGhostEvents,
                    now,
                    format!("{pid} issued {} while parked on a condition queue", event.kind.tag()),
                )
                .with_pid(pid)
                .with_event(event.seq)
                .with_fault(FaultKind::WaitNotBlocked),
            );
        }

        match event.kind {
            EventKind::Enter { granted: false } => {
                // ST-3d: a process may be blocked only while the monitor
                // is in use.
                if self.running.len() != 1 {
                    out.push(
                        Violation::new(
                            self.monitor,
                            RuleId::St3BlockedWhileFree,
                            now,
                            format!(
                                "{pid} blocked on entry while {} process(es) were inside",
                                self.running.len()
                            ),
                        )
                        .with_pid(pid)
                        .with_event(event.seq)
                        .with_fault(FaultKind::EnterNoResponse),
                    );
                }
                self.enter_q.push_back(caller);
                self.timers.insert(pid, now);
            }
            EventKind::Enter { granted: true } => {
                self.running.push(caller);
                self.timers.insert(pid, now);
                // ST-3c: after a granted Enter the caller must be the
                // only process inside.
                if self.running.len() != 1 {
                    out.push(
                        Violation::new(
                            self.monitor,
                            RuleId::St3RunningUnique,
                            now,
                            format!(
                                "after Enter by {pid} the monitor holds {} processes",
                                self.running.len()
                            ),
                        )
                        .with_pid(pid)
                        .with_event(event.seq)
                        .with_fault(FaultKind::EnterMutualExclusion),
                    );
                }
            }
            EventKind::Wait { cond } => {
                self.check_caller_running(event, FaultKind::WaitMutualExclusion, out);
                if self.remove_running(pid).is_none() {
                    // Caller was not inside; the ST-3b report above
                    // covers it. Nothing to move.
                } else {
                    self.timers.insert(pid, now);
                    self.cond_queue_mut(cond.as_usize()).push_back(caller);
                }
                let _ = spec;
                // Wait releases the monitor: the entry-queue head (if
                // any) is resumed.
                self.admit_entry_head(now);
            }
            EventKind::SignalExit { cond, resumed_waiter } => {
                self.check_caller_running(event, FaultKind::SignalExitMutualExclusion, out);
                if self.remove_running(pid).is_some() {
                    self.timers.remove(&pid);
                }
                if resumed_waiter {
                    let popped = cond.and_then(|c| self.cond_queue_mut(c.as_usize()).pop_front());
                    match popped {
                        Some(waiter) => {
                            self.timers.insert(waiter.pid, now);
                            self.running.push(waiter);
                        }
                        None => out.push(
                            Violation::new(
                                self.monitor,
                                RuleId::St2CondSnapshot,
                                now,
                                format!(
                                    "Signal-Exit by {pid} claims a resumed waiter but the \
                                     replayed condition queue is empty"
                                ),
                            )
                            .with_pid(pid)
                            .with_event(event.seq),
                        ),
                    }
                } else {
                    self.admit_entry_head(now);
                }
            }
            EventKind::Terminate => {
                out.push(
                    Violation::new(
                        self.monitor,
                        RuleId::St5InsideTimeout,
                        now,
                        format!("{pid} terminated inside the monitor without exiting"),
                    )
                    .with_pid(pid)
                    .with_event(event.seq)
                    .with_fault(FaultKind::InternalTermination),
                );
                // The dead owner will never release: remove it from the
                // replayed lists so checkpoints mirror observed reality.
                if self.remove_running(pid).is_some() {
                    self.timers.remove(&pid);
                }
            }
        }

        // ST-3a: at any time at most one process is inside the monitor.
        if self.running.len() > 1 {
            let fault = match event.kind {
                EventKind::Enter { .. } => FaultKind::EnterMutualExclusion,
                EventKind::Wait { .. } => FaultKind::WaitMutualExclusion,
                EventKind::SignalExit { .. } => FaultKind::SignalExitMutualExclusion,
                EventKind::Terminate => FaultKind::InternalTermination,
            };
            out.push(
                Violation::new(
                    self.monitor,
                    RuleId::St3RunningAtMostOne,
                    now,
                    format!("Running-List holds {} processes", self.running.len()),
                )
                .with_event(event.seq)
                .with_fault(fault),
            );
        }
    }

    /// ST-3b: the process performing `Wait`/`Signal-Exit` must be the
    /// unique running process.
    fn check_caller_running(
        &self,
        event: &Event,
        crowd_fault: FaultKind,
        out: &mut Vec<Violation>,
    ) {
        let pid = event.pid;
        let caller_inside = self.running.iter().any(|pp| pp.pid == pid);
        if self.running.len() == 1 && caller_inside {
            return;
        }
        let fault = if caller_inside { crowd_fault } else { FaultKind::EnterNotObserved };
        out.push(
            Violation::new(
                self.monitor,
                RuleId::St3RunningIsCaller,
                event.time,
                format!(
                    "{pid} performed {} but Running-List was {:?}",
                    event.kind.tag(),
                    self.running
                ),
            )
            .with_pid(pid)
            .with_event(event.seq)
            .with_fault(fault),
        );
    }

    /// ST-5 / ST-6 timer checks at a checkpoint.
    pub fn check_timers(&self, cfg: &DetectorConfig, now: Nanos, out: &mut Vec<Violation>) {
        for pp in &self.enter_q {
            if let Some(&since) = self.timers.get(&pp.pid) {
                if now.saturating_since(since) > cfg.t_io {
                    out.push(
                        Violation::new(
                            self.monitor,
                            RuleId::St6EntryTimeout,
                            now,
                            format!(
                                "{} has waited on the entry queue for {} (Tio = {})",
                                pp.pid,
                                now.saturating_since(since),
                                cfg.t_io
                            ),
                        )
                        .with_pid(pp.pid),
                    );
                }
            }
        }
        for pp in &self.running {
            if let Some(&since) = self.timers.get(&pp.pid) {
                if now.saturating_since(since) > cfg.t_max {
                    out.push(
                        Violation::new(
                            self.monitor,
                            RuleId::St5InsideTimeout,
                            now,
                            format!(
                                "{} has been running inside the monitor for {} (Tmax = {})",
                                pp.pid,
                                now.saturating_since(since),
                                cfg.t_max
                            ),
                        )
                        .with_pid(pp.pid)
                        .with_fault(FaultKind::InternalTermination),
                    );
                }
            }
        }
        for q in &self.wait_cond {
            for pp in q {
                if let Some(&since) = self.timers.get(&pp.pid) {
                    if now.saturating_since(since) > cfg.t_max {
                        out.push(
                            Violation::new(
                                self.monitor,
                                RuleId::St5InsideTimeout,
                                now,
                                format!(
                                    "{} has waited on a condition queue for {} (Tmax = {})",
                                    pp.pid,
                                    now.saturating_since(since),
                                    cfg.t_max
                                ),
                            )
                            .with_pid(pp.pid)
                            .with_fault(FaultKind::SignalExitNotResumed),
                        );
                    }
                }
            }
        }
    }

    /// ST-1 / ST-2 / running-snapshot comparison at a checkpoint: the
    /// replayed lists must equal the observed state `s_t`.
    pub fn compare_snapshot(&self, observed: &MonitorState, now: Nanos, out: &mut Vec<Violation>) {
        let replayed_eq: Vec<PidProc> = self.enter_q.iter().copied().collect();
        if replayed_eq != observed.entry_queue {
            out.push(Violation::new(
                self.monitor,
                RuleId::St1EntrySnapshot,
                now,
                format!(
                    "replayed Enter-Q-List {:?} differs from observed EQ {:?}",
                    replayed_eq, observed.entry_queue
                ),
            ));
        }
        let conds = self.wait_cond.len().max(observed.cond_queues.len());
        for c in 0..conds {
            let replayed: Vec<PidProc> =
                self.wait_cond.get(c).map(|q| q.iter().copied().collect()).unwrap_or_default();
            let obs = observed.cond_queues.get(c).cloned().unwrap_or_default();
            if replayed != obs {
                out.push(Violation::new(
                    self.monitor,
                    RuleId::St2CondSnapshot,
                    now,
                    format!(
                        "replayed Wait-Cond-List[{c}] {replayed:?} differs from observed \
                         CQ[{c}] {obs:?}"
                    ),
                ));
            }
        }
        if self.running != observed.running {
            out.push(Violation::new(
                self.monitor,
                RuleId::St1EntrySnapshot,
                now,
                format!(
                    "replayed Running-List {:?} differs from observed Running {:?}",
                    self.running, observed.running
                ),
            ));
        }
        if observed.running.len() > 1 {
            out.push(
                Violation::new(
                    self.monitor,
                    RuleId::St3RunningAtMostOne,
                    now,
                    format!(
                        "observed snapshot shows {} processes inside the monitor",
                        observed.running.len()
                    ),
                )
                .with_fault(FaultKind::EnterMutualExclusion),
            );
        }
    }

    /// Re-bases the lists on an observed snapshot (after reporting a
    /// checkpoint). Timers of processes that remain in the *same* list
    /// are preserved, so long-running starvation keeps accumulating;
    /// everything else restarts at `now`.
    pub fn resync(&mut self, observed: &MonitorState, now: Nanos) {
        let mut timers = HashMap::new();
        let carry = |pid: Pid, was_here: bool, timers: &mut HashMap<Pid, Nanos>| {
            let t = if was_here { self.timers.get(&pid).copied().unwrap_or(now) } else { now };
            timers.insert(pid, t);
        };
        for pp in &observed.entry_queue {
            carry(pp.pid, self.in_enter_q(pp.pid), &mut timers);
        }
        for (c, q) in observed.cond_queues.iter().enumerate() {
            for pp in q {
                let was =
                    self.wait_cond.get(c).is_some_and(|rq| rq.iter().any(|x| x.pid == pp.pid));
                carry(pp.pid, was, &mut timers);
            }
        }
        for pp in &observed.running {
            let was = self.running.iter().any(|x| x.pid == pp.pid);
            carry(pp.pid, was, &mut timers);
        }
        self.enter_q = observed.entry_queue.iter().copied().collect();
        let conds = self.wait_cond.len().max(observed.cond_queues.len());
        self.wait_cond = (0..conds)
            .map(|c| {
                observed.cond_queues.get(c).map(|q| q.iter().copied().collect()).unwrap_or_default()
            })
            .collect();
        self.running = observed.running.clone();
        self.timers = timers;
    }
}

/// Resource-No and the `r`/`s` success counters of Algorithm-2
/// (communication-coordinator monitors only).
#[derive(Debug, Clone)]
pub struct ResourceState {
    monitor: MonitorId,
    /// Free capacity (`Resource-No`); signed so faulty histories can
    /// drive it out of range without wrapping.
    resource_no: i64,
    /// Capacity `Rmax`.
    rmax: i64,
    /// Cumulative successful sends (`s`).
    s_total: u64,
    /// Cumulative successful receives (`r`).
    r_total: u64,
    /// Window counters for the ST-7b checkpoint equation.
    s_window: u64,
    r_window: u64,
}

impl ResourceState {
    /// Initial state for a coordinator with capacity `rmax` and
    /// initially `available` free slots.
    pub fn new(monitor: MonitorId, rmax: u64, available: u64) -> Self {
        ResourceState {
            monitor,
            resource_no: available as i64,
            rmax: rmax as i64,
            s_total: 0,
            r_total: 0,
            s_window: 0,
            r_window: 0,
        }
    }

    /// Current Resource-No (free capacity).
    pub fn resource_no(&self) -> i64 {
        self.resource_no
    }

    /// Cumulative successful `(r, s)` counts.
    pub fn counts(&self) -> (u64, u64) {
        (self.r_total, self.s_total)
    }

    /// Replays one event (ST-7 checks).
    pub fn apply(&mut self, spec: &MonitorSpec, event: &Event, out: &mut Vec<Violation>) {
        if spec.class != MonitorClass::CommunicationCoordinator {
            return;
        }
        let role = spec.proc_role(event.proc_name);
        match event.kind {
            EventKind::Wait { cond } => {
                let cond_role = spec.cond_role(cond);
                // ST-7c: a sender may be delayed only when the buffer is
                // full (no free capacity).
                if role == ProcRole::Send
                    && cond_role == CondRole::BufferFull
                    && self.resource_no != 0
                {
                    out.push(
                        Violation::new(
                            self.monitor,
                            RuleId::St7WaitSendBufferFull,
                            event.time,
                            format!(
                                "{} delayed on Send while Resource-No = {} (buffer not full)",
                                event.pid, self.resource_no
                            ),
                        )
                        .with_pid(event.pid)
                        .with_event(event.seq)
                        .with_fault(FaultKind::SendDelayViolation),
                    );
                }
                // ST-7d: a receiver may be delayed only when the buffer
                // is empty (all capacity free).
                if role == ProcRole::Receive
                    && cond_role == CondRole::BufferEmpty
                    && self.resource_no != self.rmax
                {
                    out.push(
                        Violation::new(
                            self.monitor,
                            RuleId::St7WaitReceiveBufferEmpty,
                            event.time,
                            format!(
                                "{} delayed on Receive while Resource-No = {} of {} \
                                 (buffer not empty)",
                                event.pid, self.resource_no, self.rmax
                            ),
                        )
                        .with_pid(event.pid)
                        .with_event(event.seq)
                        .with_fault(FaultKind::ReceiveDelayViolation),
                    );
                }
            }
            EventKind::SignalExit { .. } => {
                // A Send/Receive completes (is "successful") when the
                // process exits the monitor through Signal-Exit.
                match role {
                    ProcRole::Send => {
                        self.s_total += 1;
                        self.s_window += 1;
                        self.resource_no -= 1;
                    }
                    ProcRole::Receive => {
                        self.r_total += 1;
                        self.r_window += 1;
                        self.resource_no += 1;
                    }
                    _ => {}
                }
                self.check_count_invariant(event.time, Some(event.seq), out);
            }
            _ => {}
        }
    }

    /// ST-7a: `0 ≤ r ≤ s ≤ r + Rmax`.
    fn check_count_invariant(&self, now: Nanos, seq: Option<u64>, out: &mut Vec<Violation>) {
        if self.r_total > self.s_total {
            let mut v = Violation::new(
                self.monitor,
                RuleId::St7CountInvariant,
                now,
                format!(
                    "successful receives r = {} exceed successful sends s = {}",
                    self.r_total, self.s_total
                ),
            )
            .with_fault(FaultKind::ReceiveExceedsSend);
            if let Some(s) = seq {
                v = v.with_event(s);
            }
            out.push(v);
        }
        if (self.s_total as i64) > (self.r_total as i64) + self.rmax {
            let mut v = Violation::new(
                self.monitor,
                RuleId::St7CountInvariant,
                now,
                format!(
                    "successful sends s = {} exceed r + Rmax = {} + {}",
                    self.s_total, self.r_total, self.rmax
                ),
            )
            .with_fault(FaultKind::SendExceedsCapacity);
            if let Some(s) = seq {
                v = v.with_event(s);
            }
            out.push(v);
        }
    }

    /// ST-7b at a checkpoint: the observed free capacity must equal the
    /// replayed `R#(p) + r − s`.
    pub fn compare_snapshot(&self, observed: &MonitorState, now: Nanos, out: &mut Vec<Violation>) {
        if let Some(avail) = observed.available {
            if avail as i64 != self.resource_no {
                out.push(Violation::new(
                    self.monitor,
                    RuleId::St7CountInvariant,
                    now,
                    format!(
                        "observed R# = {avail} differs from replayed Resource-No = {} \
                         (window r = {}, s = {})",
                        self.resource_no, self.r_window, self.s_window
                    ),
                ));
            }
        }
    }

    /// Re-bases on an observed snapshot and starts a new window.
    pub fn resync(&mut self, observed: &MonitorState) {
        if let Some(avail) = observed.available {
            self.resource_no = avail as i64;
        }
        self.s_window = 0;
        self.r_window = 0;
    }
}

/// The Request-List and path-expression call-order trackers of
/// Algorithm-3 (resource-access-right-allocator monitors; user-process
/// level faults are checked in real time).
#[derive(Debug, Clone)]
pub struct OrderState {
    monitor: MonitorId,
    /// Processes currently holding (or awaiting) an access right, with
    /// acquisition time: the paper's Request-List.
    request_list: Vec<(Pid, Nanos)>,
    compiled: Option<CompiledPath>,
    /// NFA state sets per process.
    order_states: HashMap<Pid, Vec<bool>>,
}

impl OrderState {
    /// Builds the order state for a monitor, compiling its declared
    /// call-order path expression if it has one.
    ///
    /// A path expression naming undeclared procedures is ignored (the
    /// spec constructors guarantee well-formedness; hand-built specs
    /// fail softly).
    pub fn new(monitor: MonitorId, spec: &MonitorSpec) -> Self {
        let compiled =
            spec.call_order.as_ref().and_then(|p| p.compile(|name| spec.proc_by_name(name)).ok());
        OrderState { monitor, request_list: Vec::new(), compiled, order_states: HashMap::new() }
    }

    /// The current Request-List.
    pub fn request_list(&self) -> &[(Pid, Nanos)] {
        &self.request_list
    }

    fn holds(&self, pid: Pid) -> bool {
        self.request_list.iter().any(|(p, _)| *p == pid)
    }

    /// Applies one event (real-time checks ST-8a/b and the generalized
    /// path-expression order ST-8*).
    pub fn apply(&mut self, spec: &MonitorSpec, event: &Event, out: &mut Vec<Violation>) {
        let pid = event.pid;
        let role = spec.proc_role(event.proc_name);
        match event.kind {
            EventKind::Enter { .. } => {
                // Generalized call-order check on every call attempt.
                if let Some(compiled) = &self.compiled {
                    let states =
                        self.order_states.entry(pid).or_insert_with(|| compiled.initial_states());
                    if compiled.advance_states(states, event.proc_name).is_err() {
                        let fault = match role {
                            ProcRole::Request => Some(FaultKind::DoubleAcquire),
                            ProcRole::Release => Some(FaultKind::ReleaseWithoutAcquire),
                            _ => None,
                        };
                        let mut v = Violation::new(
                            self.monitor,
                            RuleId::St8CallOrder,
                            event.time,
                            format!(
                                "call to {} by {pid} violates the declared call order {}",
                                spec.proc_display(event.proc_name),
                                spec.call_order
                                    .as_ref()
                                    .map(|p| p.source().to_string())
                                    .unwrap_or_default()
                            ),
                        )
                        .with_pid(pid)
                        .with_event(event.seq);
                        if let Some(f) = fault {
                            v = v.with_fault(f);
                        }
                        out.push(v);
                    }
                }
                match role {
                    ProcRole::Request => {
                        // ST-8a: no process may appear twice.
                        if self.holds(pid) {
                            out.push(
                                Violation::new(
                                    self.monitor,
                                    RuleId::St8DuplicateRequest,
                                    event.time,
                                    format!("{pid} requested an access right it already holds"),
                                )
                                .with_pid(pid)
                                .with_event(event.seq)
                                .with_fault(FaultKind::DoubleAcquire),
                            );
                        } else {
                            self.request_list.push((pid, event.time));
                        }
                    }
                    // ST-8b: a releasing process must hold a right.
                    ProcRole::Release if !self.holds(pid) => {
                        out.push(
                            Violation::new(
                                self.monitor,
                                RuleId::St8ReleaseWithoutRequest,
                                event.time,
                                format!("{pid} called Release without a preceding Request"),
                            )
                            .with_pid(pid)
                            .with_event(event.seq)
                            .with_fault(FaultKind::ReleaseWithoutAcquire),
                        );
                    }
                    _ => {}
                }
            }
            EventKind::SignalExit { .. } if role == ProcRole::Release => {
                // Removal happens at the *successful* completion of
                // Release.
                if let Some(idx) = self.request_list.iter().position(|(p, _)| *p == pid) {
                    self.request_list.remove(idx);
                }
            }
            _ => {}
        }
    }

    /// Frees a terminated caller's declared-call-order state (its NFA
    /// state set) so long-running detectors don't accumulate state for
    /// every process that ever called. The Request-List entry, if any,
    /// is deliberately **kept**: a process that died holding an access
    /// right must keep tripping the ST-8c hold timer until recovery
    /// intervenes.
    pub fn forget_caller(&mut self, pid: Pid) {
        self.order_states.remove(&pid);
    }

    /// Non-mutating lookahead: would an `Enter` of `proc_name` by
    /// `pid` violate ST-8 right now? Used by runtimes that *prevent*
    /// faulty calls instead of merely reporting them.
    pub fn would_violate(
        &self,
        spec: &MonitorSpec,
        pid: Pid,
        proc_name: ProcName,
    ) -> Option<RuleId> {
        match spec.proc_role(proc_name) {
            ProcRole::Request if self.holds(pid) => return Some(RuleId::St8DuplicateRequest),
            ProcRole::Release if !self.holds(pid) => return Some(RuleId::St8ReleaseWithoutRequest),
            _ => {}
        }
        if let Some(compiled) = &self.compiled {
            let mut states =
                self.order_states.get(&pid).cloned().unwrap_or_else(|| compiled.initial_states());
            if compiled.advance_states(&mut states, proc_name).is_err() {
                return Some(RuleId::St8CallOrder);
            }
        }
        None
    }

    /// ST-8c at a checkpoint: no process may stay in the Request-List
    /// longer than `Tlimit`.
    pub fn check_hold_timeout(&self, cfg: &DetectorConfig, now: Nanos, out: &mut Vec<Violation>) {
        for &(pid, since) in &self.request_list {
            if now.saturating_since(since) > cfg.t_limit {
                out.push(
                    Violation::new(
                        self.monitor,
                        RuleId::St8HoldTimeout,
                        now,
                        format!(
                            "{pid} has held an access right for {} (Tlimit = {})",
                            now.saturating_since(since),
                            cfg.t_limit
                        ),
                    )
                    .with_pid(pid)
                    .with_fault(FaultKind::ResourceNeverReleased),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CondId, ProcName};
    use crate::spec::MonitorSpec;

    const M: MonitorId = MonitorId::new(0);

    fn pp(p: u32, pr: u16) -> PidProc {
        PidProc::new(Pid::new(p), ProcName::new(pr))
    }

    struct Seq {
        n: u64,
        t: u64,
    }

    impl Seq {
        fn new() -> Self {
            Seq { n: 0, t: 0 }
        }
        fn next(&mut self) -> (u64, Nanos) {
            self.n += 1;
            self.t += 10;
            (self.n, Nanos::new(self.t))
        }
        fn enter(&mut self, p: u32, pr: u16, granted: bool) -> Event {
            let (s, t) = self.next();
            Event::enter(s, t, M, Pid::new(p), ProcName::new(pr), granted)
        }
        fn wait(&mut self, p: u32, pr: u16, c: u16) -> Event {
            let (s, t) = self.next();
            Event::wait(s, t, M, Pid::new(p), ProcName::new(pr), CondId::new(c))
        }
        fn exit(&mut self, p: u32, pr: u16, c: Option<u16>, resumed: bool) -> Event {
            let (s, t) = self.next();
            Event::signal_exit(s, t, M, Pid::new(p), ProcName::new(pr), c.map(CondId::new), resumed)
        }
        fn terminate(&mut self, p: u32, pr: u16) -> Event {
            let (s, t) = self.next();
            Event::terminate(s, t, M, Pid::new(p), ProcName::new(pr))
        }
    }

    fn buf_spec() -> MonitorSpec {
        MonitorSpec::bounded_buffer("buf", 2).spec
    }

    fn alloc_spec() -> MonitorSpec {
        MonitorSpec::allocator("res", 1).spec
    }

    fn apply_all(lists: &mut GeneralLists, spec: &MonitorSpec, events: &[Event]) -> Vec<Violation> {
        let mut out = Vec::new();
        for e in events {
            lists.apply(spec, e, &mut out);
        }
        out
    }

    // ----- GeneralLists -------------------------------------------------

    #[test]
    fn correct_enter_exit_sequence_is_clean() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let events = vec![
            s.enter(1, 0, true),
            s.exit(1, 0, Some(1), false),
            s.enter(2, 1, true),
            s.exit(2, 1, Some(0), false),
        ];
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(&mut lists, &spec, &events);
        assert!(v.is_empty(), "{v:?}");
        assert!(lists.running().is_empty());
        assert!(lists.enter_q().is_empty());
    }

    #[test]
    fn blocked_enter_then_handoff_on_exit() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let events = vec![
            s.enter(1, 0, true),
            s.enter(2, 1, false),         // blocked behind P1
            s.exit(1, 0, Some(1), false), // P2 admitted
            s.exit(2, 1, Some(0), false),
        ];
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(&mut lists, &spec, &events);
        assert!(v.is_empty(), "{v:?}");
        assert!(lists.running().is_empty());
    }

    #[test]
    fn wait_moves_to_cond_and_admits_entry_head() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(
            &mut lists,
            &spec,
            &[
                s.enter(1, 1, true),  // receiver enters
                s.enter(2, 0, false), // sender blocked
                s.wait(1, 1, 1),      // receiver waits on empty; sender admitted
            ],
        );
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(lists.running(), &[pp(2, 0)]);
        assert_eq!(lists.wait_cond()[1].front(), Some(&pp(1, 1)));
    }

    #[test]
    fn signal_exit_resumes_cond_waiter() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(
            &mut lists,
            &spec,
            &[
                s.enter(1, 1, true),
                s.wait(1, 1, 1),              // receiver waits on empty
                s.enter(2, 0, true),          // sender enters (monitor free)
                s.exit(2, 0, Some(1), true),  // sender signals empty → P1 resumed
                s.exit(1, 1, Some(0), false), // receiver finishes
            ],
        );
        assert!(v.is_empty(), "{v:?}");
        assert!(lists.running().is_empty());
    }

    #[test]
    fn double_grant_violates_st3() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(&mut lists, &spec, &[s.enter(1, 0, true), s.enter(2, 1, true)]);
        assert!(v.iter().any(|v| v.rule == RuleId::St3RunningUnique));
        assert!(v.iter().any(|v| v.rule == RuleId::St3RunningAtMostOne));
        assert!(v.iter().any(|v| v.fault == Some(FaultKind::EnterMutualExclusion)));
    }

    #[test]
    fn blocked_while_free_violates_st3d() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(&mut lists, &spec, &[s.enter(1, 0, false)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::St3BlockedWhileFree);
        assert_eq!(v[0].fault, Some(FaultKind::EnterNoResponse));
    }

    #[test]
    fn exit_without_enter_violates_st3b() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(&mut lists, &spec, &[s.exit(1, 0, Some(1), false)]);
        assert!(v.iter().any(|v| v.rule == RuleId::St3RunningIsCaller
            && v.fault == Some(FaultKind::EnterNotObserved)));
    }

    #[test]
    fn ghost_event_from_entry_queue_violates_st4() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(
            &mut lists,
            &spec,
            &[
                s.enter(1, 0, true),
                s.enter(2, 1, false),         // P2 parked on EQ
                s.exit(2, 1, Some(0), false), // … yet issues an exit
            ],
        );
        assert!(v.iter().any(|v| v.rule == RuleId::St4NoGhostEvents));
    }

    #[test]
    fn ghost_event_from_cond_queue_diagnoses_wait_not_blocked() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(
            &mut lists,
            &spec,
            &[
                s.enter(1, 0, true),
                s.wait(1, 0, 0),              // P1 waits on full
                s.exit(1, 0, Some(1), false), // … yet continues to exit
            ],
        );
        assert!(v
            .iter()
            .any(|v| v.rule == RuleId::St4NoGhostEvents
                && v.fault == Some(FaultKind::WaitNotBlocked)));
    }

    #[test]
    fn signal_claiming_phantom_waiter_is_flagged() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(&mut lists, &spec, &[s.enter(1, 0, true), s.exit(1, 0, Some(1), true)]);
        assert!(v.iter().any(|v| v.rule == RuleId::St2CondSnapshot));
    }

    #[test]
    fn terminate_inside_reports_immediately() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let v = apply_all(&mut lists, &spec, &[s.enter(1, 0, true), s.terminate(1, 0)]);
        assert!(v.iter().any(|v| v.rule == RuleId::St5InsideTimeout
            && v.fault == Some(FaultKind::InternalTermination)));
        assert!(lists.running().is_empty());
    }

    #[test]
    fn entry_timeout_fires_after_tio() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let _ = apply_all(&mut lists, &spec, &[s.enter(1, 0, true), s.enter(2, 1, false)]);
        let cfg = DetectorConfig::builder()
            .t_io(Nanos::from_millis(1))
            .t_max(Nanos::from_secs(10))
            .build();
        let mut out = Vec::new();
        lists.check_timers(&cfg, Nanos::from_millis(100), &mut out);
        assert!(out
            .iter()
            .any(|v| v.rule == RuleId::St6EntryTimeout && v.pid == Some(Pid::new(2))));
        // Running P1 is within Tmax: no ST-5.
        assert!(!out.iter().any(|v| v.rule == RuleId::St5InsideTimeout));
    }

    #[test]
    fn inside_timeout_fires_after_tmax() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let _ = apply_all(&mut lists, &spec, &[s.enter(1, 0, true)]);
        let cfg = DetectorConfig::builder()
            .t_max(Nanos::from_millis(1))
            .t_io(Nanos::from_secs(10))
            .build();
        let mut out = Vec::new();
        lists.check_timers(&cfg, Nanos::from_millis(100), &mut out);
        assert!(out
            .iter()
            .any(|v| v.rule == RuleId::St5InsideTimeout && v.pid == Some(Pid::new(1))));
    }

    #[test]
    fn cond_wait_timeout_fires_after_tmax() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let _ = apply_all(&mut lists, &spec, &[s.enter(1, 0, true), s.wait(1, 0, 0)]);
        let cfg = DetectorConfig::builder()
            .t_max(Nanos::from_millis(1))
            .t_io(Nanos::from_secs(10))
            .build();
        let mut out = Vec::new();
        lists.check_timers(&cfg, Nanos::from_millis(100), &mut out);
        assert!(out.iter().any(|v| v.rule == RuleId::St5InsideTimeout
            && v.fault == Some(FaultKind::SignalExitNotResumed)));
    }

    #[test]
    fn snapshot_mismatch_detected_and_resync_heals() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        // Replay thinks P2 is on the entry queue …
        let _ = apply_all(&mut lists, &spec, &[s.enter(1, 0, true), s.enter(2, 1, false)]);
        // … but the observed snapshot lost it (fault E2).
        let mut observed = MonitorState::new(2);
        observed.running.push(pp(1, 0));
        let mut out = Vec::new();
        lists.compare_snapshot(&observed, Nanos::from_millis(1), &mut out);
        assert!(out.iter().any(|v| v.rule == RuleId::St1EntrySnapshot));
        lists.resync(&observed, Nanos::from_millis(1));
        let mut out2 = Vec::new();
        lists.compare_snapshot(&observed, Nanos::from_millis(2), &mut out2);
        assert!(out2.is_empty(), "{out2:?}");
    }

    #[test]
    fn snapshot_with_two_running_reports_mutex_violation() {
        let lists = GeneralLists::new(M, 2);
        let mut observed = MonitorState::new(2);
        observed.running.push(pp(1, 0));
        observed.running.push(pp(2, 1));
        let mut out = Vec::new();
        lists.compare_snapshot(&observed, Nanos::ZERO, &mut out);
        assert!(out.iter().any(|v| v.rule == RuleId::St3RunningAtMostOne));
    }

    #[test]
    fn resync_preserves_timer_for_still_queued_process() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut lists = GeneralLists::new(M, 2);
        let _ = apply_all(&mut lists, &spec, &[s.enter(1, 0, true), s.enter(2, 1, false)]);
        let t_start = lists.timer(Pid::new(2)).unwrap();
        let mut observed = MonitorState::new(2);
        observed.running.push(pp(1, 0));
        observed.entry_queue.push(pp(2, 1));
        lists.resync(&observed, Nanos::from_millis(50));
        assert_eq!(lists.timer(Pid::new(2)), Some(t_start), "timer must carry over");
        assert_eq!(lists.timer(Pid::new(1)), Some(Nanos::new(10)));
    }

    #[test]
    fn from_state_initializes_all_lists() {
        let mut observed = MonitorState::new(1);
        observed.entry_queue.push(pp(1, 0));
        observed.cond_queues[0].push(pp(2, 1));
        observed.running.push(pp(3, 0));
        let lists = GeneralLists::from_state(M, 1, &observed, Nanos::new(7));
        assert_eq!(lists.enter_q().front(), Some(&pp(1, 0)));
        assert_eq!(lists.wait_cond()[0].front(), Some(&pp(2, 1)));
        assert_eq!(lists.running(), &[pp(3, 0)]);
        assert_eq!(lists.timer(Pid::new(1)), Some(Nanos::new(7)));
    }

    // ----- ResourceState ------------------------------------------------

    #[test]
    fn send_receive_bookkeeping() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut rs = ResourceState::new(M, 2, 2);
        let mut out = Vec::new();
        // send completes: one slot consumed.
        for e in [s.enter(1, 0, true), s.exit(1, 0, Some(1), false)] {
            rs.apply(&spec, &e, &mut out);
        }
        assert_eq!(rs.resource_no(), 1);
        assert_eq!(rs.counts(), (0, 1));
        // receive completes: slot freed.
        for e in [s.enter(2, 1, true), s.exit(2, 1, Some(0), false)] {
            rs.apply(&spec, &e, &mut out);
        }
        assert_eq!(rs.resource_no(), 2);
        assert_eq!(rs.counts(), (1, 1));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn receive_from_empty_violates_st7a() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut rs = ResourceState::new(M, 2, 2);
        let mut out = Vec::new();
        for e in [s.enter(1, 1, true), s.exit(1, 1, Some(0), false)] {
            rs.apply(&spec, &e, &mut out);
        }
        assert!(out.iter().any(|v| v.rule == RuleId::St7CountInvariant
            && v.fault == Some(FaultKind::ReceiveExceedsSend)));
    }

    #[test]
    fn overfilling_buffer_violates_st7a() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut rs = ResourceState::new(M, 2, 2);
        let mut out = Vec::new();
        for _ in 0..3 {
            let e1 = s.enter(1, 0, true);
            let e2 = s.exit(1, 0, Some(1), false);
            rs.apply(&spec, &e1, &mut out);
            rs.apply(&spec, &e2, &mut out);
        }
        assert!(out.iter().any(|v| v.rule == RuleId::St7CountInvariant
            && v.fault == Some(FaultKind::SendExceedsCapacity)));
    }

    #[test]
    fn sender_delayed_on_nonfull_buffer_violates_st7c() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut rs = ResourceState::new(M, 2, 2);
        let mut out = Vec::new();
        let e1 = s.enter(1, 0, true);
        let w = s.wait(1, 0, 0); // waits on buffer_full while 2 slots free
        rs.apply(&spec, &e1, &mut out);
        rs.apply(&spec, &w, &mut out);
        assert!(out.iter().any(|v| v.rule == RuleId::St7WaitSendBufferFull
            && v.fault == Some(FaultKind::SendDelayViolation)));
    }

    #[test]
    fn receiver_delayed_on_nonempty_buffer_violates_st7d() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut rs = ResourceState::new(M, 2, 1); // one item present
        let mut out = Vec::new();
        let e1 = s.enter(1, 1, true);
        let w = s.wait(1, 1, 1); // waits on buffer_empty though an item exists
        rs.apply(&spec, &e1, &mut out);
        rs.apply(&spec, &w, &mut out);
        assert!(out.iter().any(|v| v.rule == RuleId::St7WaitReceiveBufferEmpty
            && v.fault == Some(FaultKind::ReceiveDelayViolation)));
    }

    #[test]
    fn legit_sender_delay_on_full_buffer_is_clean() {
        let spec = buf_spec();
        let mut s = Seq::new();
        let mut rs = ResourceState::new(M, 2, 0); // buffer full
        let mut out = Vec::new();
        let e1 = s.enter(1, 0, true);
        let w = s.wait(1, 0, 0);
        rs.apply(&spec, &e1, &mut out);
        rs.apply(&spec, &w, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn snapshot_resource_mismatch_detected() {
        let rs = ResourceState::new(M, 2, 2);
        let observed = MonitorState::with_resources(2, 0);
        let mut out = Vec::new();
        rs.compare_snapshot(&observed, Nanos::ZERO, &mut out);
        assert!(out.iter().any(|v| v.rule == RuleId::St7CountInvariant));
        let mut rs2 = rs.clone();
        rs2.resync(&observed);
        assert_eq!(rs2.resource_no(), 0);
    }

    #[test]
    fn non_coordinator_is_ignored() {
        let spec = alloc_spec();
        let mut s = Seq::new();
        let mut rs = ResourceState::new(M, 1, 1);
        let mut out = Vec::new();
        let e = s.enter(1, 0, true);
        rs.apply(&spec, &e, &mut out);
        assert!(out.is_empty());
        assert_eq!(rs.counts(), (0, 0));
    }

    // ----- OrderState -----------------------------------------------------

    #[test]
    fn correct_request_release_cycle_is_clean() {
        let spec = alloc_spec();
        let mut s = Seq::new();
        let mut os = OrderState::new(M, &spec);
        let mut out = Vec::new();
        for e in [
            s.enter(1, 0, true), // request
            s.exit(1, 0, None, false),
            s.enter(1, 1, true), // release
            s.exit(1, 1, Some(0), false),
        ] {
            os.apply(&spec, &e, &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
        assert!(os.request_list().is_empty());
    }

    #[test]
    fn release_without_request_violates_st8b_and_order() {
        let spec = alloc_spec();
        let mut s = Seq::new();
        let mut os = OrderState::new(M, &spec);
        let mut out = Vec::new();
        let e = s.enter(1, 1, true); // release first
        os.apply(&spec, &e, &mut out);
        assert!(out.iter().any(|v| v.rule == RuleId::St8ReleaseWithoutRequest));
        assert!(out
            .iter()
            .any(|v| v.rule == RuleId::St8CallOrder
                && v.fault == Some(FaultKind::ReleaseWithoutAcquire)));
    }

    #[test]
    fn double_request_violates_st8a_and_order() {
        let spec = alloc_spec();
        let mut s = Seq::new();
        let mut os = OrderState::new(M, &spec);
        let mut out = Vec::new();
        for e in [
            s.enter(1, 0, true),
            s.exit(1, 0, None, false),
            s.enter(1, 0, false), // requests again while holding
        ] {
            os.apply(&spec, &e, &mut out);
        }
        assert!(out.iter().any(|v| v.rule == RuleId::St8DuplicateRequest));
        assert!(out
            .iter()
            .any(|v| v.rule == RuleId::St8CallOrder && v.fault == Some(FaultKind::DoubleAcquire)));
    }

    #[test]
    fn hold_timeout_violates_st8c() {
        let spec = alloc_spec();
        let mut s = Seq::new();
        let mut os = OrderState::new(M, &spec);
        let mut out = Vec::new();
        let e = s.enter(1, 0, true);
        os.apply(&spec, &e, &mut out);
        let cfg = DetectorConfig::builder().t_limit(Nanos::from_millis(1)).build();
        os.check_hold_timeout(&cfg, Nanos::from_millis(100), &mut out);
        assert!(out.iter().any(|v| v.rule == RuleId::St8HoldTimeout
            && v.fault == Some(FaultKind::ResourceNeverReleased)));
    }

    #[test]
    fn hold_within_tlimit_is_clean() {
        let spec = alloc_spec();
        let mut s = Seq::new();
        let mut os = OrderState::new(M, &spec);
        let mut out = Vec::new();
        let e = s.enter(1, 0, true);
        os.apply(&spec, &e, &mut out);
        let cfg = DetectorConfig::builder().t_limit(Nanos::from_secs(1)).build();
        os.check_hold_timeout(&cfg, Nanos::from_millis(1), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn two_processes_interleave_requests_cleanly() {
        let spec = alloc_spec();
        let mut s = Seq::new();
        let mut os = OrderState::new(M, &spec);
        let mut out = Vec::new();
        for e in [
            s.enter(1, 0, true),
            s.exit(1, 0, None, false),
            s.enter(2, 0, true), // second unit? (allocator bookkeeping is per-pid)
            s.exit(2, 0, None, false),
            s.enter(2, 1, true),
            s.exit(2, 1, Some(0), false),
            s.enter(1, 1, true),
            s.exit(1, 1, Some(0), false),
        ] {
            os.apply(&spec, &e, &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
        assert!(os.request_list().is_empty());
    }
}
