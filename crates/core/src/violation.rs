//! Violations and fault reports — what the detection routines emit.

use crate::fault::FaultKind;
use crate::ids::{MonitorId, Pid};
use crate::rule::RuleId;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single detected rule violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The monitor in which the violation was detected.
    pub monitor: MonitorId,
    /// The rule that was violated.
    pub rule: RuleId,
    /// Best-effort mapping back to the fault-taxonomy class (§2.2).
    /// `None` when several classes are indistinguishable from the
    /// history alone.
    pub fault: Option<FaultKind>,
    /// The offending process, when attributable.
    pub pid: Option<Pid>,
    /// Sequence number of the event at which the violation was
    /// detected, when attributable to a single event.
    pub event_seq: Option<u64>,
    /// Logical time of detection.
    pub detected_at: Nanos,
    /// Human-readable detail.
    pub message: String,
}

impl Violation {
    /// Creates a violation with the required fields; optional fields are
    /// filled through the `with_*` methods.
    pub fn new(
        monitor: MonitorId,
        rule: RuleId,
        detected_at: Nanos,
        message: impl Into<String>,
    ) -> Self {
        Violation {
            monitor,
            rule,
            fault: None,
            pid: None,
            event_seq: None,
            detected_at,
            message: message.into(),
        }
    }

    /// Attaches the offending process.
    pub fn with_pid(mut self, pid: Pid) -> Self {
        self.pid = Some(pid);
        self
    }

    /// Attaches the triggering event.
    pub fn with_event(mut self, seq: u64) -> Self {
        self.event_seq = Some(seq);
        self
    }

    /// Attaches the diagnosed fault class.
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        self.fault = Some(fault);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}", self.rule, self.monitor, self.message)?;
        if let Some(pid) = self.pid {
            write!(f, " (pid {pid})")?;
        }
        if let Some(seq) = self.event_seq {
            write!(f, " (event l{seq})")?;
        }
        if let Some(fault) = self.fault {
            write!(f, " [fault {}]", fault.code())?;
        }
        Ok(())
    }
}

/// A violation that did **not** occur in the executed schedule but
/// exists in a feasible reordering of it — the output class of the
/// predictive pass ([`crate::detect::predict`]).
///
/// Predicted verdicts are deliberately kept apart from
/// [`FaultReport::violations`]: they are warnings about an equivalent
/// schedule the program *could* have taken, not faults the monitored
/// run exhibited, so [`FaultReport::is_clean`] ignores them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictedViolation {
    /// The violation as it would be reported in the witness schedule.
    pub violation: Violation,
    /// The witness linearization: the checked window's event sequence
    /// numbers, reordered into a legal linear extension of the recorded
    /// happens-before partial order under which the violation fires.
    pub witness: Vec<u64>,
}

impl fmt::Display for PredictedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "predicted {} (witness ", self.violation)?;
        for (i, seq) in self.witness.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "l{seq}")?;
        }
        f.write_str(")")
    }
}

/// The result of one invocation of the detection routines — a batch of
/// violations plus bookkeeping about the checked window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultReport {
    /// All violations found in this checking window.
    pub violations: Vec<Violation>,
    /// Violations found only in feasible reorderings of this window
    /// (empty unless [`crate::PredictMode`] enables the predictive
    /// pass). A distinct verdict class: not counted by
    /// [`Self::is_clean`].
    pub predicted: Vec<PredictedViolation>,
    /// Number of events examined.
    pub events_checked: u64,
    /// Start of the window (last checking time `t_p`).
    pub window_start: Nanos,
    /// End of the window (current checking time `t`).
    pub window_end: Nanos,
}

impl FaultReport {
    /// Whether the window was violation-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations attributed to a specific rule.
    pub fn by_rule(&self, rule: RuleId) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| v.rule == rule)
    }

    /// Whether any violation maps to the given fault class.
    pub fn detects(&self, fault: FaultKind) -> bool {
        self.violations.iter().any(|v| v.fault == Some(fault))
    }

    /// Whether any violation was reported for one of the given rules.
    pub fn violates_any(&self, rules: &[RuleId]) -> bool {
        self.violations.iter().any(|v| rules.contains(&v.rule))
    }

    /// Whether the predictive pass found violations in feasible
    /// reorderings of the window.
    pub fn has_predictions(&self) -> bool {
        !self.predicted.is_empty()
    }

    /// Predicted violations attributed to a specific rule.
    pub fn predicted_by_rule(&self, rule: RuleId) -> impl Iterator<Item = &PredictedViolation> {
        self.predicted.iter().filter(move |p| p.violation.rule == rule)
    }

    /// Merges another report into this one (e.g. per-monitor reports
    /// into a global one).
    pub fn merge(&mut self, other: FaultReport) {
        self.violations.extend(other.violations);
        self.predicted.extend(other.predicted);
        self.events_checked += other.events_checked;
        if other.window_start < self.window_start {
            self.window_start = other.window_start;
        }
        if other.window_end > self.window_end {
            self.window_end = other.window_end;
        }
    }

    /// Restores the canonical violation order every checkpoint entry
    /// point reports in — by offending event, then rule (timer and
    /// snapshot violations, which have no event, sort last). Call after
    /// [`Self::merge`]-assembling a report from parts.
    pub fn sort_canonical(&mut self) {
        self.violations.sort_by_key(|v| (v.event_seq.unwrap_or(u64::MAX), v.rule));
        self.predicted
            .sort_by_key(|p| (p.violation.event_seq.unwrap_or(u64::MAX), p.violation.rule));
    }

    /// Folds per-shard (or per-monitor) reports into one canonical
    /// report: [`Self::merge`] over every part, then
    /// [`Self::sort_canonical`]. The first report seeds the window
    /// bounds, so an empty iterator yields the default report rather
    /// than one with a zeroed window start.
    pub fn merged(reports: impl IntoIterator<Item = FaultReport>) -> FaultReport {
        let mut merged: Option<FaultReport> = None;
        for report in reports {
            match &mut merged {
                Some(m) => m.merge(report),
                None => merged = Some(report),
            }
        }
        let mut report = merged.unwrap_or_default();
        report.sort_canonical();
        report
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault report: {} violation(s) over {} event(s) in [{}, {}]",
            self.violations.len(),
            self.events_checked,
            self.window_start,
            self.window_end
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        for p in &self.predicted {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: RuleId) -> Violation {
        Violation::new(MonitorId::new(0), rule, Nanos::new(5), "boom")
    }

    #[test]
    fn builder_attaches_fields() {
        let v = v(RuleId::St3RunningAtMostOne)
            .with_pid(Pid::new(2))
            .with_event(7)
            .with_fault(FaultKind::EnterMutualExclusion);
        assert_eq!(v.pid, Some(Pid::new(2)));
        assert_eq!(v.event_seq, Some(7));
        assert_eq!(v.fault, Some(FaultKind::EnterMutualExclusion));
        let s = v.to_string();
        assert!(s.contains("ST-3a"), "{s}");
        assert!(s.contains("P2"), "{s}");
        assert!(s.contains("l7"), "{s}");
        assert!(s.contains("E1"), "{s}");
    }

    #[test]
    fn report_queries() {
        let mut r = FaultReport::default();
        assert!(r.is_clean());
        r.violations.push(v(RuleId::St6EntryTimeout).with_fault(FaultKind::EnterNoResponse));
        assert!(!r.is_clean());
        assert_eq!(r.by_rule(RuleId::St6EntryTimeout).count(), 1);
        assert_eq!(r.by_rule(RuleId::St1EntrySnapshot).count(), 0);
        assert!(r.detects(FaultKind::EnterNoResponse));
        assert!(!r.detects(FaultKind::DoubleAcquire));
        assert!(r.violates_any(&[RuleId::St6EntryTimeout]));
        assert!(!r.violates_any(&[RuleId::St8CallOrder]));
    }

    #[test]
    fn merge_combines_windows() {
        let mut a = FaultReport {
            violations: vec![v(RuleId::St1EntrySnapshot)],
            events_checked: 3,
            window_start: Nanos::new(10),
            window_end: Nanos::new(20),
            ..FaultReport::default()
        };
        let b = FaultReport {
            violations: vec![v(RuleId::St2CondSnapshot)],
            predicted: vec![PredictedViolation {
                violation: v(RuleId::St8HoldTimeout),
                witness: vec![2, 1],
            }],
            events_checked: 4,
            window_start: Nanos::new(5),
            window_end: Nanos::new(30),
        };
        a.merge(b);
        assert_eq!(a.violations.len(), 2);
        assert_eq!(a.predicted.len(), 1);
        assert_eq!(a.events_checked, 7);
        assert_eq!(a.window_start, Nanos::new(5));
        assert_eq!(a.window_end, Nanos::new(30));
    }

    #[test]
    fn display_lists_violations() {
        let r = FaultReport {
            violations: vec![v(RuleId::St1EntrySnapshot)],
            events_checked: 1,
            window_start: Nanos::ZERO,
            window_end: Nanos::new(1),
            ..FaultReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("1 violation(s)"), "{s}");
        assert!(s.contains("ST-1"), "{s}");
    }

    #[test]
    fn predicted_is_a_distinct_class() {
        let mut r = FaultReport::default();
        r.predicted.push(PredictedViolation {
            violation: v(RuleId::St8CallOrder).with_event(4),
            witness: vec![1, 4, 2, 3],
        });
        // A prediction does not dirty the executed run's verdict …
        assert!(r.is_clean());
        assert!(r.has_predictions());
        assert_eq!(r.predicted_by_rule(RuleId::St8CallOrder).count(), 1);
        assert_eq!(r.predicted_by_rule(RuleId::St8HoldTimeout).count(), 0);
        // … and renders with its witness linearization.
        let s = r.to_string();
        assert!(s.contains("predicted"), "{s}");
        assert!(s.contains("witness l1 l4 l2 l3"), "{s}");
    }
}
