//! The `monitor_spec!` declarative DSL.
//!
//! One block declares everything the augmented monitor construct (§4)
//! needs: name, class, capacity, procedures with roles, condition
//! variables with roles, the path-expression call order, and state
//! assertions. Conflicts are caught as early as possible:
//!
//! * **compile time** — duplicate procedure/condition names (expanded
//!   into a struct whose fields must be unique, in the style of
//!   smlang-rs's duplicate-transition diagnostics) and unknown
//!   role/class identifiers (resolved as enum variants);
//! * **first use** — everything else runs through the full static
//!   analyzer via [`build_checked`](super::build_checked): Error-level
//!   diagnostics (`RML0xx`, see `docs/DIAGNOSTICS.md`) panic with the
//!   formatted report.

/// Declares a [`MonitorSpec`](crate::MonitorSpec) in one block, with
/// compile-time conflict checking and Error-level `RML0xx` diagnostics
/// at first use.
///
/// Sections appear in this order; `capacity`, `conditions`,
/// `call_order` and `assertions` are optional:
///
/// ```text
/// monitor_spec! {
///     name: <expr>,                      // &str / String
///     class: <MonitorClass variant>,
///     capacity: <expr>,                  // u64 (Rmax)
///     procedures: { <name>: <ProcRole variant>, ... },
///     conditions: { <name>: <CondRole variant>, ... },
///     call_order: <expr>,                // &str path expression
///     assertions: [ <StateAssertion expr>, ... ],
/// }
/// ```
///
/// Procedure and condition indices ([`ProcName`](crate::ProcName) /
/// [`CondId`](crate::CondId)) follow declaration order, exactly like
/// [`MonitorSpec::builder`](crate::MonitorSpec::builder).
///
/// # Examples
///
/// A bounded buffer and an allocator with a declared call order:
///
/// ```
/// use rmon_core::{monitor_spec, MonitorClass, ProcRole, StateAssertion};
///
/// let mailbox = monitor_spec! {
///     name: "mailbox",
///     class: CommunicationCoordinator,
///     capacity: 8,
///     procedures: { send: Send, receive: Receive },
///     conditions: { buffer_full: BufferFull, buffer_empty: BufferEmpty },
///     assertions: [StateAssertion::EntryQueueAtMost(64)],
/// };
/// assert_eq!(mailbox.class, MonitorClass::CommunicationCoordinator);
/// assert_eq!(mailbox.proc_role(mailbox.proc_by_name("send").unwrap()), ProcRole::Send);
///
/// let printer = monitor_spec! {
///     name: "printer",
///     class: ResourceAllocator,
///     capacity: 2,
///     procedures: { acquire: Request, done: Release },
///     conditions: { free: UnitAvailable },
///     call_order: "path (acquire ; done)* end",
/// };
/// assert!(printer.call_order.unwrap().accepts_names(&["acquire", "done"]));
/// ```
///
/// Declaring a procedure twice is a **compile-time** error
/// (`RML001`'s static twin):
///
/// ```compile_fail
/// let bad = rmon_core::monitor_spec! {
///     name: "dup",
///     class: OperationManager,
///     procedures: { operate: Plain, operate: Plain },
/// };
/// ```
///
/// So is a typo'd role (no `ProcRole::Snd` variant exists):
///
/// ```compile_fail
/// let bad = rmon_core::monitor_spec! {
///     name: "typo",
///     class: CommunicationCoordinator,
///     capacity: 4,
///     procedures: { send: Snd, receive: Receive },
/// };
/// ```
///
/// Error-level diagnostics fire at first use — a coordinator without a
/// capacity is rejected (`RML021`):
///
/// ```should_panic
/// let bad = rmon_core::monitor_spec! {
///     name: "no_capacity",
///     class: CommunicationCoordinator,
///     procedures: { send: Send, receive: Receive },
/// };
/// ```
///
/// … as is a call order naming an undeclared procedure (`RML010`):
///
/// ```should_panic
/// let bad = rmon_core::monitor_spec! {
///     name: "ghost_proc",
///     class: ResourceAllocator,
///     capacity: 1,
///     procedures: { request: Request, release: Release },
///     conditions: { unit: UnitAvailable },
///     call_order: "path (request ; free)* end",
/// };
/// ```
#[macro_export]
macro_rules! monitor_spec {
    (
        name: $name:expr,
        class: $class:ident,
        $(capacity: $cap:expr,)?
        procedures: { $($pname:ident : $prole:ident),+ $(,)? }
        $(, conditions: { $($cname:ident : $crole:ident),+ $(,)? })?
        $(, call_order: $order:expr)?
        $(, assertions: [ $($assert:expr),+ $(,)? ])?
        $(,)?
    ) => {{
        {
            // Duplicate names become duplicate struct fields — a
            // compile error pointing at the repeated declaration.
            #[allow(non_camel_case_types, dead_code)]
            struct __RmonProcedureDeclaredTwice { $($pname: ()),+ }
            $(
                #[allow(non_camel_case_types, dead_code)]
                struct __RmonConditionDeclaredTwice { $($cname: ()),+ }
            )?
        }
        let __builder = $crate::MonitorSpec::builder($name, $crate::MonitorClass::$class)
            $(.capacity($cap))?
            $(.procedure(stringify!($pname), $crate::ProcRole::$prole))+
            $($(.condition(stringify!($cname), $crate::CondRole::$crole))+)?
            $($(.assertion($assert))+)?;
        let __order: ::core::option::Option<&str> =
            ::core::option::Option::None$(.or(::core::option::Option::Some($order)))?;
        $crate::spec::build_checked(__builder, __order)
    }};
}

#[cfg(test)]
mod tests {
    use crate::spec::{CondRole, MonitorClass, ProcRole};
    use crate::{MonitorSpec, PathExpr, StateAssertion};

    #[test]
    fn macro_matches_hand_built_spec() {
        let dsl = monitor_spec! {
            name: "pool",
            class: ResourceAllocator,
            capacity: 3,
            procedures: { request: Request, release: Release },
            conditions: { unit_available: UnitAvailable },
            call_order: "path (request ; release)* end",
            assertions: [StateAssertion::AvailableAtLeast(1)],
        };
        let hand = MonitorSpec::builder("pool", MonitorClass::ResourceAllocator)
            .procedure("request", ProcRole::Request)
            .procedure("release", ProcRole::Release)
            .condition("unit_available", CondRole::UnitAvailable)
            .capacity(3)
            .call_order(PathExpr::parse("path (request ; release)* end").unwrap())
            .assertion(StateAssertion::AvailableAtLeast(1))
            .build();
        assert_eq!(dsl, hand);
    }

    #[test]
    fn minimal_manager_block() {
        let spec = monitor_spec! {
            name: "cell",
            class: OperationManager,
            procedures: { operate: Plain },
        };
        assert_eq!(spec.class, MonitorClass::OperationManager);
        assert_eq!(spec.capacity, None);
        assert!(spec.call_order.is_none());
        assert!(spec.assertions.is_empty());
    }

    #[test]
    fn declaration_order_defines_indices() {
        let spec = monitor_spec! {
            name: "buf",
            class: CommunicationCoordinator,
            capacity: 4,
            procedures: { put: Send, take: Receive },
            conditions: { full: BufferFull, empty: BufferEmpty },
        };
        assert_eq!(spec.proc_by_name("put").unwrap().as_usize(), 0);
        assert_eq!(spec.proc_by_name("take").unwrap().as_usize(), 1);
        assert_eq!(spec.cond_by_name("full").unwrap().as_usize(), 0);
        assert_eq!(spec.cond_by_name("empty").unwrap().as_usize(), 1);
    }

    #[test]
    #[should_panic(expected = "RML030")]
    fn unsatisfiable_assertion_panics_at_first_use() {
        let _ = monitor_spec! {
            name: "pool",
            class: ResourceAllocator,
            capacity: 2,
            procedures: { request: Request, release: Release },
            conditions: { unit_available: UnitAvailable },
            call_order: "path (request ; release)* end",
            assertions: [StateAssertion::AvailableAtLeast(5)],
        };
    }

    #[test]
    #[should_panic(expected = "RML016")]
    fn unparsable_call_order_panics_with_rml016() {
        let _ = monitor_spec! {
            name: "pool",
            class: ResourceAllocator,
            capacity: 1,
            procedures: { request: Request, release: Release },
            conditions: { unit_available: UnitAvailable },
            call_order: "path (request ; release* end",
        };
    }
}
