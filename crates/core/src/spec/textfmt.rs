//! A line-oriented text format for monitor specifications (`.mspec`),
//! so fleets of declarations can be linted offline by `rmon-lint`
//! without compiling Rust.
//!
//! ```text
//! # one file holds one fleet; '#' starts a comment
//! monitor mailbox
//!   class coordinator          # coordinator | allocator | manager
//!   capacity 8                 # Rmax
//!   proc send send             # proc <name> <role>
//!   proc receive receive       #   role: send|receive|request|release|plain
//!   cond buffer_full buffer_full
//!   cond buffer_empty buffer_empty
//!   assert entry_queue_at_most 64
//! end
//!
//! monitor printer
//!   class allocator
//!   capacity 2
//!   proc acquire request
//!   proc done release
//!   cond free unit_available
//!   order path (acquire ; done)* end
//! end
//! ```
//!
//! Parsing is deliberately *lenient about semantics*: structural errors
//! (unknown directives, bad numbers) are hard [`TextError`]s, but a
//! call order that fails to parse becomes an `RML016` diagnostic with
//! the order dropped, and an assertion naming an unknown condition maps
//! to an out-of-range [`CondId`] so the analyzer reports
//! `RML032` — malformed *declarations* are exactly what the linter
//! exists to describe, so the front-end preserves them instead of
//! refusing to look.

use crate::assertion::StateAssertion;
use crate::ids::{CondId, Pid};
use crate::path::PathExpr;
use crate::spec::analyze::{DiagCode, Diagnostic, LintReport};
use crate::spec::{CondRole, CondSpec, MonitorClass, MonitorSpec, ProcRole, ProcedureSpec};
use std::fmt;
use std::fmt::Write as _;

/// A structural parse error: line number (1-based) and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

/// A parsed spec file: the declarations plus any front-end diagnostics
/// (today only `RML016` for call orders that fail to parse). Run
/// [`analyze_all`](crate::spec::analyze_all) over `specs` for the full
/// lint.
#[derive(Debug, Clone, Default)]
pub struct SpecFile {
    /// The declarations, in file order.
    pub specs: Vec<MonitorSpec>,
    /// Front-end diagnostics raised while parsing.
    pub diagnostics: LintReport,
}

struct Block {
    spec: MonitorSpec,
    order: Option<(usize, String)>,
    cond_asserts: Vec<String>,
}

fn err(line: usize, message: impl Into<String>) -> TextError {
    TextError { line, message: message.into() }
}

/// Parses a `.mspec` file.
///
/// # Errors
///
/// Returns [`TextError`] on structural errors (unknown directives,
/// malformed numbers, unbalanced `monitor`/`end`). Semantic problems
/// are preserved in the returned specs for the analyzer to describe.
///
/// # Examples
///
/// ```
/// use rmon_core::spec::{analyze_all, textfmt};
/// use std::sync::Arc;
///
/// let file = textfmt::parse_specs(
///     "monitor pool\n  class allocator\n  capacity 2\n\
///      proc request request\n  proc release release\n\
///      cond unit unit_available\n  order path (request ; release)* end\nend\n",
/// )?;
/// assert_eq!(file.specs.len(), 1);
/// let fleet = file
///     .specs
///     .iter()
///     .map(|s| (s.name.clone(), Some(Arc::new(s.clone()))));
/// assert!(analyze_all(fleet).is_clean());
/// # Ok::<(), rmon_core::spec::textfmt::TextError>(())
/// ```
pub fn parse_specs(text: &str) -> Result<SpecFile, TextError> {
    let mut out = SpecFile::default();
    let mut cur: Option<Block> = None;
    for (idx, raw) in text.lines().enumerate() {
        let n = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) = match line.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (line, ""),
        };
        match head {
            "monitor" => {
                if cur.is_some() {
                    return Err(err(n, "nested 'monitor' block (missing 'end'?)"));
                }
                if rest.is_empty() || rest.split_whitespace().count() != 1 {
                    return Err(err(n, "expected 'monitor <name>'"));
                }
                cur = Some(Block {
                    spec: MonitorSpec {
                        name: rest.to_string(),
                        class: MonitorClass::OperationManager,
                        procedures: Vec::new(),
                        conditions: Vec::new(),
                        capacity: None,
                        call_order: None,
                        assertions: Vec::new(),
                    },
                    order: None,
                    cond_asserts: Vec::new(),
                });
            }
            "end" => {
                let block = cur.take().ok_or_else(|| err(n, "'end' outside a monitor block"))?;
                out.specs.push(finish_block(block, &mut out.diagnostics));
            }
            _ => {
                let block =
                    cur.as_mut().ok_or_else(|| err(n, "directive outside a monitor block"))?;
                directive(block, n, head, rest)?;
            }
        }
    }
    if let Some(block) = cur {
        return Err(err(
            text.lines().count(),
            format!("monitor {:?} is missing its 'end'", block.spec.name),
        ));
    }
    Ok(out)
}

fn directive(block: &mut Block, n: usize, head: &str, rest: &str) -> Result<(), TextError> {
    match head {
        "class" => {
            block.spec.class = parse_class(rest)
                .ok_or_else(|| err(n, format!("unknown monitor class {rest:?}")))?;
        }
        "capacity" => {
            let v: u64 = rest.parse().map_err(|_| err(n, format!("bad capacity {rest:?}")))?;
            block.spec.capacity = Some(v);
        }
        "proc" => {
            let (name, role) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(n, "expected 'proc <name> <role>'"))?;
            let role = parse_proc_role(role.trim())
                .ok_or_else(|| err(n, format!("unknown procedure role {:?}", role.trim())))?;
            block.spec.procedures.push(ProcedureSpec { name: name.to_string(), role });
        }
        "cond" => {
            let (name, role) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(n, "expected 'cond <name> <role>'"))?;
            let role = parse_cond_role(role.trim())
                .ok_or_else(|| err(n, format!("unknown condition role {:?}", role.trim())))?;
            block.spec.conditions.push(CondSpec { name: name.to_string(), role });
        }
        "order" => {
            if rest.is_empty() {
                return Err(err(n, "expected 'order <path expression>'"));
            }
            block.order = Some((n, rest.to_string()));
        }
        "assert" => {
            let mut words = rest.split_whitespace();
            let kind = words.next().ok_or_else(|| err(n, "expected 'assert <kind> ...'"))?;
            let mut num = |what: &str| -> Result<u64, TextError> {
                words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err(n, format!("assert {kind}: expected {what}")))
            };
            let a = match kind {
                "entry_queue_at_most" => StateAssertion::EntryQueueAtMost(num("a bound")? as usize),
                "available_at_most" => StateAssertion::AvailableAtMost(num("a bound")?),
                "available_at_least" => StateAssertion::AvailableAtLeast(num("a bound")?),
                "population_at_most" => StateAssertion::PopulationAtMost(num("a bound")? as usize),
                "excludes_pid" => StateAssertion::ExcludesPid(Pid::new(
                    num("a pid")?
                        .try_into()
                        .map_err(|_| err(n, "excludes_pid: pid out of range"))?,
                )),
                "cond_queue_at_most" => {
                    let cond = words
                        .next()
                        .ok_or_else(|| err(n, "expected 'cond_queue_at_most <cond> <bound>'"))?
                        .to_string();
                    let at_most = words
                        .next()
                        .and_then(|w| w.parse::<usize>().ok())
                        .ok_or_else(|| err(n, "cond_queue_at_most: expected a bound"))?;
                    // Resolved against the condition table when the
                    // block closes (conditions may be declared later).
                    block.cond_asserts.push(cond);
                    block
                        .spec
                        .assertions
                        .push(StateAssertion::CondQueueAtMost { cond: CondId::new(0), at_most });
                    return check_trailing(n, kind, words);
                }
                _ => return Err(err(n, format!("unknown assertion kind {kind:?}"))),
            };
            block.spec.assertions.push(a);
            return check_trailing(n, kind, words);
        }
        _ => return Err(err(n, format!("unknown directive {head:?}"))),
    }
    Ok(())
}

fn check_trailing(
    n: usize,
    kind: &str,
    mut words: std::str::SplitWhitespace<'_>,
) -> Result<(), TextError> {
    match words.next() {
        Some(extra) => Err(err(n, format!("assert {kind}: unexpected trailing {extra:?}"))),
        None => Ok(()),
    }
}

fn finish_block(mut block: Block, diags: &mut LintReport) -> MonitorSpec {
    // Resolve condition names in cond_queue_at_most assertions now that
    // the whole table is known; unknown names map to an out-of-range
    // index so the analyzer reports RML032 instead of the parser
    // refusing the file.
    let mut pending = block.cond_asserts.iter();
    for a in &mut block.spec.assertions {
        if let StateAssertion::CondQueueAtMost { cond, .. } = a {
            let name = pending.next().expect("one pending name per cond assert");
            *cond = block
                .spec
                .conditions
                .iter()
                .position(|c| &c.name == name)
                .map_or(CondId::new(block.spec.conditions.len() as u16), |i| CondId::new(i as u16));
        }
    }
    if let Some((line, src)) = block.order {
        match PathExpr::parse(&src) {
            Ok(p) => block.spec.call_order = Some(p),
            Err(e) => diags.diagnostics.push(Diagnostic {
                code: DiagCode::PathSyntax,
                monitor: block.spec.name.clone(),
                message: format!("call order on line {line} does not parse: {e}"),
                context: vec![("line".into(), line.to_string()), ("source".into(), src)],
            }),
        }
    }
    block.spec
}

fn parse_class(tok: &str) -> Option<MonitorClass> {
    match tok {
        "coordinator" | "communication-coordinator" => Some(MonitorClass::CommunicationCoordinator),
        "allocator" | "resource-access-right-allocator" => Some(MonitorClass::ResourceAllocator),
        "manager" | "resource-operation-manager" => Some(MonitorClass::OperationManager),
        _ => None,
    }
}

fn parse_proc_role(tok: &str) -> Option<ProcRole> {
    match tok {
        "send" => Some(ProcRole::Send),
        "receive" => Some(ProcRole::Receive),
        "request" => Some(ProcRole::Request),
        "release" => Some(ProcRole::Release),
        "plain" => Some(ProcRole::Plain),
        _ => None,
    }
}

fn parse_cond_role(tok: &str) -> Option<CondRole> {
    match tok {
        "buffer_full" | "buffer-full" => Some(CondRole::BufferFull),
        "buffer_empty" | "buffer-empty" => Some(CondRole::BufferEmpty),
        "unit_available" | "unit-available" => Some(CondRole::UnitAvailable),
        "plain" => Some(CondRole::Plain),
        _ => None,
    }
}

/// Renders specs back to the text format. Well-formed specs round-trip
/// through [`parse_specs`]; specs with out-of-range assertion indices
/// render a placeholder name and will not re-parse cleanly (by design —
/// they do not lint cleanly either).
pub fn to_text<'a>(specs: impl IntoIterator<Item = &'a MonitorSpec>) -> String {
    let mut out = String::new();
    for spec in specs {
        let _ = writeln!(out, "monitor {}", spec.name);
        let class = match spec.class {
            MonitorClass::CommunicationCoordinator => "coordinator",
            MonitorClass::ResourceAllocator => "allocator",
            MonitorClass::OperationManager => "manager",
        };
        let _ = writeln!(out, "  class {class}");
        if let Some(c) = spec.capacity {
            let _ = writeln!(out, "  capacity {c}");
        }
        for p in &spec.procedures {
            let _ = writeln!(out, "  proc {} {}", p.name, proc_role_token(p.role));
        }
        for c in &spec.conditions {
            let _ = writeln!(out, "  cond {} {}", c.name, cond_role_token(c.role));
        }
        if let Some(order) = &spec.call_order {
            let _ = writeln!(out, "  order {}", order.source());
        }
        for a in &spec.assertions {
            let rendered = match *a {
                StateAssertion::EntryQueueAtMost(n) => format!("entry_queue_at_most {n}"),
                StateAssertion::CondQueueAtMost { cond, at_most } => format!(
                    "cond_queue_at_most {} {at_most}",
                    spec.conditions.get(cond.as_usize()).map_or("<unknown>", |c| c.name.as_str())
                ),
                StateAssertion::AvailableAtMost(n) => format!("available_at_most {n}"),
                StateAssertion::AvailableAtLeast(n) => format!("available_at_least {n}"),
                StateAssertion::PopulationAtMost(n) => format!("population_at_most {n}"),
                StateAssertion::ExcludesPid(p) => format!("excludes_pid {}", p.index()),
            };
            let _ = writeln!(out, "  assert {rendered}");
        }
        let _ = writeln!(out, "end");
    }
    out
}

fn proc_role_token(r: ProcRole) -> &'static str {
    match r {
        ProcRole::Send => "send",
        ProcRole::Receive => "receive",
        ProcRole::Request => "request",
        ProcRole::Release => "release",
        ProcRole::Plain => "plain",
    }
}

fn cond_role_token(r: CondRole) -> &'static str {
    match r {
        CondRole::BufferFull => "buffer_full",
        CondRole::BufferEmpty => "buffer_empty",
        CondRole::UnitAvailable => "unit_available",
        CondRole::Plain => "plain",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::analyze::{analyze, analyze_all, DiagCode};
    use std::sync::Arc;

    const FLEET: &str = "\
# paired channel + a printer pool
monitor mailbox
  class coordinator
  capacity 8
  proc send send
  proc receive receive
  cond buffer_full buffer_full
  cond buffer_empty buffer_empty
  assert entry_queue_at_most 64
end

monitor printer
  class allocator
  capacity 2
  proc acquire request
  proc done release
  cond free unit_available
  order path (acquire ; done)* end
  assert available_at_least 1
  assert cond_queue_at_most free 16
end
";

    #[test]
    fn parses_a_clean_fleet() {
        let file = parse_specs(FLEET).unwrap();
        assert!(file.diagnostics.is_clean());
        assert_eq!(file.specs.len(), 2);
        let printer = &file.specs[1];
        assert_eq!(printer.capacity, Some(2));
        assert_eq!(
            printer.proc_by_name("acquire").map(|p| printer.proc_role(p)),
            Some(ProcRole::Request)
        );
        assert!(printer.call_order.as_ref().unwrap().accepts_names(&["acquire", "done"]));
        let fleet = file.specs.iter().map(|s| (s.name.clone(), Some(Arc::new(s.clone()))));
        assert!(analyze_all(fleet).is_clean());
    }

    #[test]
    fn round_trips_through_to_text() {
        let file = parse_specs(FLEET).unwrap();
        let text = to_text(&file.specs);
        let again = parse_specs(&text).unwrap();
        assert!(again.diagnostics.is_clean());
        assert_eq!(file.specs, again.specs);
    }

    #[test]
    fn bad_order_becomes_rml016_not_a_parse_error() {
        let file =
            parse_specs("monitor m\n  class manager\n  proc op plain\n  order (op\nend\n").unwrap();
        assert_eq!(file.specs.len(), 1);
        assert!(file.specs[0].call_order.is_none());
        assert_eq!(file.diagnostics.diagnostics[0].code, DiagCode::PathSyntax);
        assert!(file.diagnostics.has_errors());
    }

    #[test]
    fn unknown_assert_condition_maps_to_rml032() {
        let file = parse_specs(
            "monitor m\n  class manager\n  proc op plain\n  cond c plain\n\
             assert cond_queue_at_most ghost 1\nend\n",
        )
        .unwrap();
        let report = analyze(&file.specs[0]);
        assert!(report.diagnostics.iter().any(|d| d.code == DiagCode::AssertUnknownCond));
    }

    #[test]
    fn malformed_shapes_are_preserved_for_the_analyzer() {
        // A coordinator with no capacity parses fine — and lints RML021.
        let file = parse_specs(
            "monitor c\n  class coordinator\n  proc send send\n  proc receive receive\nend\n",
        )
        .unwrap();
        let report = analyze(&file.specs[0]);
        assert!(report.diagnostics.iter().any(|d| d.code == DiagCode::CoordinatorCapacity));
    }

    #[test]
    fn structural_errors_are_hard() {
        for (text, what) in [
            ("class manager\n", "directive outside"),
            ("monitor a\nmonitor b\nend\n", "nested"),
            ("end\n", "outside"),
            ("monitor a\n", "missing its 'end'"),
            ("monitor a\n  class widget\nend\n", "unknown monitor class"),
            ("monitor a\n  proc x royal\nend\n", "unknown procedure role"),
            ("monitor a\n  capacity lots\nend\n", "bad capacity"),
            ("monitor a\n  assert vibes 3\nend\n", "unknown assertion kind"),
            ("monitor a\n  assert entry_queue_at_most 1 2\nend\n", "trailing"),
        ] {
            let e = parse_specs(text).expect_err(text);
            assert!(e.to_string().contains(what), "{text:?}: {e}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let file = parse_specs(
            "# header\n\nmonitor m # trailing\n  class manager # yes\n  proc op plain\nend\n",
        )
        .unwrap();
        assert_eq!(file.specs[0].name, "m");
        assert_eq!(file.specs[0].procedures.len(), 1);
    }
}
