//! Monitor specifications — the "visible part" of the augmented monitor
//! construct (§3 and §4 of the paper).
//!
//! The paper requires the user to declare, alongside the monitor body:
//! the monitor's *type* (communication coordinator, resource-access-right
//! allocator, or resource operation manager — §2.1), its procedures and
//! condition variables, the resource capacity `Rmax`, and the partial
//! ordering of procedure calls "in path-expression like notation".
//!
//! [`MonitorSpec`] captures exactly that declaration. The detector never
//! inspects procedure *bodies* (the paper's taxonomy deliberately covers
//! only the observable effects of procedures), so the spec is all the
//! static information it needs.

use crate::assertion::StateAssertion;
use crate::ids::{CondId, ProcName};
use crate::path::PathExpr;
use serde::{Deserialize, Serialize};
use std::fmt;

pub mod analyze;
mod dsl;
pub mod textfmt;

pub use analyze::{analyze_all, analyze_fleet, DiagCode, Diagnostic, LintReport, Severity};

/// Functional classification of monitors (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorClass {
    /// Pairs of processes exchange data through a bounded buffer under
    /// the monitor's mutual exclusion (`Send` / `Receive`). Subject to
    /// the integrity constraints checked by Algorithm-2 (ST-7).
    CommunicationCoordinator,
    /// Processes compete for exclusive access rights (`Request` /
    /// `Release`); the monitor arbitrates but does not mediate use.
    /// Subject to the call-ordering constraints checked in real time by
    /// Algorithm-3 (ST-8).
    ResourceAllocator,
    /// The monitor encapsulates the resource and its operations; user
    /// processes issue single operations and synchronization is
    /// implicit. Only the general rules (ST-1..6) apply.
    OperationManager,
}

impl fmt::Display for MonitorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MonitorClass::CommunicationCoordinator => "communication-coordinator",
            MonitorClass::ResourceAllocator => "resource-access-right-allocator",
            MonitorClass::OperationManager => "resource-operation-manager",
        };
        f.write_str(s)
    }
}

/// Semantic role of a monitor procedure, used by the detection rules.
///
/// Roles decouple rule logic from procedure *names*: a communication
/// coordinator may call its procedures `put`/`take`, declaring them with
/// roles [`ProcRole::Send`] / [`ProcRole::Receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ProcRole {
    /// Deposits one item / consumes one free slot (ST-7 counts `s`).
    Send,
    /// Removes one item / frees one slot (ST-7 counts `r`).
    Receive,
    /// Acquires an access right (ST-8 appends to the Request-List).
    Request,
    /// Releases an access right (ST-8 removes from the Request-List).
    Release,
    /// No special bookkeeping.
    #[default]
    Plain,
}

impl fmt::Display for ProcRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcRole::Send => "send",
            ProcRole::Receive => "receive",
            ProcRole::Request => "request",
            ProcRole::Release => "release",
            ProcRole::Plain => "plain",
        };
        f.write_str(s)
    }
}

/// Semantic role of a condition variable, used by ST-7c/d.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CondRole {
    /// Senders wait here while the buffer is full (`R# = 0`).
    BufferFull,
    /// Receivers wait here while the buffer is empty (`R# = Rmax`).
    BufferEmpty,
    /// Requesters wait here while no unit is available.
    UnitAvailable,
    /// No special bookkeeping.
    #[default]
    Plain,
}

impl fmt::Display for CondRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CondRole::BufferFull => "buffer-full",
            CondRole::BufferEmpty => "buffer-empty",
            CondRole::UnitAvailable => "unit-available",
            CondRole::Plain => "plain",
        };
        f.write_str(s)
    }
}

/// Declaration of one monitor procedure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcedureSpec {
    /// Human-readable name, e.g. `"send"`.
    pub name: String,
    /// Semantic role used by the detection rules.
    pub role: ProcRole,
}

/// Declaration of one condition variable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CondSpec {
    /// Human-readable name, e.g. `"not_full"`.
    pub name: String,
    /// Semantic role used by ST-7c/d.
    pub role: CondRole,
}

/// The full static declaration of a monitor, as the augmented construct
/// of §4 requires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSpec {
    /// Monitor name (for reports).
    pub name: String,
    /// Functional classification (§2.1).
    pub class: MonitorClass,
    /// Declared procedures; [`ProcName`] indexes into this table.
    pub procedures: Vec<ProcedureSpec>,
    /// Declared condition variables; [`CondId`] indexes into this table.
    pub conditions: Vec<CondSpec>,
    /// Maximum number of resources `Rmax` (buffer capacity for a
    /// coordinator, unit count for an allocator). `None` for monitors
    /// without a resource counter.
    pub capacity: Option<u64>,
    /// Declared partial ordering of procedure calls, as a path
    /// expression over procedure names (§3: "the partial ordering of
    /// procedure calls within a monitor be specified in the monitor
    /// declaration").
    pub call_order: Option<PathExpr>,
    /// User-supplied state assertions evaluated at every checkpoint
    /// (the §5 extension).
    pub assertions: Vec<StateAssertion>,
}

impl MonitorSpec {
    /// Starts building a spec of the given class.
    pub fn builder(name: impl Into<String>, class: MonitorClass) -> MonitorSpecBuilder {
        MonitorSpecBuilder {
            spec: MonitorSpec {
                name: name.into(),
                class,
                procedures: Vec::new(),
                conditions: Vec::new(),
                capacity: None,
                call_order: None,
                assertions: Vec::new(),
            },
        }
    }

    /// Canonical communication-coordinator spec: a bounded buffer with
    /// `send`/`receive` procedures and `not_full`/`not_empty` conditions.
    ///
    /// Returns the spec together with the procedure and condition
    /// indices: `(spec, send, receive, full_cond, empty_cond)`.
    pub fn bounded_buffer(name: impl Into<String>, capacity: u64) -> BoundedBufferSpec {
        let spec = crate::monitor_spec! {
            name: name.into(),
            class: CommunicationCoordinator,
            capacity: capacity,
            procedures: { send: Send, receive: Receive },
            conditions: { buffer_full: BufferFull, buffer_empty: BufferEmpty },
        };
        BoundedBufferSpec {
            spec,
            send: ProcName::new(0),
            receive: ProcName::new(1),
            full_cond: CondId::new(0),
            empty_cond: CondId::new(1),
        }
    }

    /// Canonical resource-access-right-allocator spec with the default
    /// call order `path (request ; release)* end`.
    ///
    /// Returns `(spec, request, release, avail_cond)`.
    pub fn allocator(name: impl Into<String>, units: u64) -> AllocatorSpec {
        let spec = crate::monitor_spec! {
            name: name.into(),
            class: ResourceAllocator,
            capacity: units,
            procedures: { request: Request, release: Release },
            conditions: { unit_available: UnitAvailable },
            call_order: "path (request ; release)* end",
        };
        AllocatorSpec {
            spec,
            request: ProcName::new(0),
            release: ProcName::new(1),
            avail_cond: CondId::new(0),
        }
    }

    /// Canonical operation-manager spec with a single `operate`
    /// procedure and no condition variables.
    ///
    /// Returns `(spec, operate)`.
    pub fn operation_manager(name: impl Into<String>) -> ManagerSpec {
        let spec = crate::monitor_spec! {
            name: name.into(),
            class: OperationManager,
            procedures: { operate: Plain },
        };
        ManagerSpec { spec, operate: ProcName::new(0) }
    }

    /// Looks up a procedure declaration; out-of-range indices yield a
    /// placeholder `Plain` declaration so that the detector degrades
    /// gracefully on malformed traces (flagged elsewhere).
    pub fn procedure(&self, p: ProcName) -> ProcedureSpec {
        self.procedures
            .get(p.as_usize())
            .cloned()
            .unwrap_or(ProcedureSpec { name: format!("<unknown {p}>"), role: ProcRole::Plain })
    }

    /// Role of procedure `p` (`Plain` if out of range).
    pub fn proc_role(&self, p: ProcName) -> ProcRole {
        self.procedures.get(p.as_usize()).map_or(ProcRole::Plain, |s| s.role)
    }

    /// Role of condition `c` (`Plain` if out of range).
    pub fn cond_role(&self, c: CondId) -> CondRole {
        self.conditions.get(c.as_usize()).map_or(CondRole::Plain, |s| s.role)
    }

    /// Human-readable procedure name.
    pub fn proc_display(&self, p: ProcName) -> String {
        self.procedures
            .get(p.as_usize())
            .map_or_else(|| format!("<unknown {p}>"), |s| s.name.clone())
    }

    /// Human-readable condition name.
    pub fn cond_display(&self, c: CondId) -> String {
        self.conditions
            .get(c.as_usize())
            .map_or_else(|| format!("<unknown {c}>"), |s| s.name.clone())
    }

    /// Looks up a procedure index by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcName> {
        self.procedures.iter().position(|p| p.name == name).map(|i| ProcName::new(i as u16))
    }

    /// Looks up a condition index by name.
    pub fn cond_by_name(&self, name: &str) -> Option<CondId> {
        self.conditions.iter().position(|c| c.name == name).map(|i| CondId::new(i as u16))
    }

    /// Number of declared condition variables.
    pub fn cond_count(&self) -> usize {
        self.conditions.len()
    }

    /// The canonical empty state for this declaration: all queues
    /// empty, all declared capacity available. The single source of
    /// truth for "freshly created monitor" — registration paths
    /// (inline detector, sharded service, runtime) all start here.
    pub fn empty_state(&self) -> crate::state::MonitorState {
        let mut state = crate::state::MonitorState::new(self.cond_count());
        state.available = self.capacity;
        state
    }
}

/// Builder for [`MonitorSpec`] (non-consuming terminal would not help
/// here; the builder is cheap and single-use).
#[derive(Debug, Clone)]
pub struct MonitorSpecBuilder {
    spec: MonitorSpec,
}

impl MonitorSpecBuilder {
    /// Declares a procedure; declaration order defines [`ProcName`]
    /// indices.
    pub fn procedure(mut self, name: impl Into<String>, role: ProcRole) -> Self {
        self.spec.procedures.push(ProcedureSpec { name: name.into(), role });
        self
    }

    /// Declares a condition variable; declaration order defines
    /// [`CondId`] indices.
    pub fn condition(mut self, name: impl Into<String>, role: CondRole) -> Self {
        self.spec.conditions.push(CondSpec { name: name.into(), role });
        self
    }

    /// Sets the resource capacity `Rmax`.
    pub fn capacity(mut self, rmax: u64) -> Self {
        self.spec.capacity = Some(rmax);
        self
    }

    /// Declares the partial order of procedure calls.
    pub fn call_order(mut self, order: PathExpr) -> Self {
        self.spec.call_order = Some(order);
        self
    }

    /// Declares a user-supplied state assertion (checked at every
    /// checkpoint).
    pub fn assertion(mut self, a: StateAssertion) -> Self {
        self.spec.assertions.push(a);
        self
    }

    /// Finishes the declaration.
    ///
    /// # Panics
    ///
    /// Panics if a procedure or condition name is declared twice:
    /// duplicate names make [`ProcName`]/[`CondId`] resolution by name
    /// ambiguous (call orders, journal replay and the detection rules
    /// all resolve by name), so such a declaration is never usable.
    /// Use [`MonitorSpecBuilder::try_build`] to handle the rejection.
    pub fn build(self) -> MonitorSpec {
        match self.try_build() {
            Ok(spec) => spec,
            Err(report) => panic!("invalid monitor spec:\n{report}"),
        }
    }

    /// Finishes the declaration, rejecting duplicate procedure or
    /// condition names with the corresponding `RML001`/`RML002`
    /// diagnostics instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the duplicate-name [`LintReport`] if any name is
    /// declared twice.
    pub fn try_build(self) -> Result<MonitorSpec, LintReport> {
        let report = analyze::duplicate_name_report(&self.spec);
        if report.has_errors() {
            return Err(report);
        }
        Ok(self.spec)
    }
}

/// Finishes a [`monitor_spec!`](crate::monitor_spec) declaration:
/// parses the optional call order, builds the spec, runs the full
/// static analyzer ([`analyze::analyze`]) and rejects any Error-level
/// diagnostic. This is the macro's runtime back-end; it is public so
/// the macro can expand outside this crate, and usable directly when a
/// spec is assembled dynamically but should still be vetted at
/// construction.
///
/// # Panics
///
/// Panics with the full diagnostic report if the call order does not
/// parse (`RML016`) or the finished spec has Error-level findings.
pub fn build_checked(builder: MonitorSpecBuilder, order: Option<&str>) -> MonitorSpec {
    let mut spec = match builder.try_build() {
        Ok(spec) => spec,
        Err(report) => panic!("monitor_spec! declaration rejected:\n{report}"),
    };
    if let Some(src) = order {
        match PathExpr::parse(src) {
            Ok(p) => spec.call_order = Some(p),
            Err(e) => panic!(
                "monitor_spec! declaration for {:?} rejected:\n  RML016 error [{}] {e}",
                spec.name, spec.name
            ),
        }
    }
    let report = analyze::analyze(&spec);
    if report.has_errors() {
        panic!("monitor_spec! declaration for {:?} rejected:\n{report}", spec.name);
    }
    spec
}

/// A bounded-buffer (communication coordinator) spec with its well-known
/// indices.
#[derive(Debug, Clone)]
pub struct BoundedBufferSpec {
    /// The monitor declaration.
    pub spec: MonitorSpec,
    /// Index of the `send` procedure.
    pub send: ProcName,
    /// Index of the `receive` procedure.
    pub receive: ProcName,
    /// Condition senders wait on while the buffer is full.
    pub full_cond: CondId,
    /// Condition receivers wait on while the buffer is empty.
    pub empty_cond: CondId,
}

/// A resource-allocator spec with its well-known indices.
#[derive(Debug, Clone)]
pub struct AllocatorSpec {
    /// The monitor declaration.
    pub spec: MonitorSpec,
    /// Index of the `request` procedure.
    pub request: ProcName,
    /// Index of the `release` procedure.
    pub release: ProcName,
    /// Condition requesters wait on while no unit is available.
    pub avail_cond: CondId,
}

/// An operation-manager spec with its well-known indices.
#[derive(Debug, Clone)]
pub struct ManagerSpec {
    /// The monitor declaration.
    pub spec: MonitorSpec,
    /// Index of the single `operate` procedure.
    pub operate: ProcName,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_indices_in_order() {
        let spec = MonitorSpec::builder("m", MonitorClass::OperationManager)
            .procedure("a", ProcRole::Plain)
            .procedure("b", ProcRole::Send)
            .condition("c0", CondRole::Plain)
            .build();
        assert_eq!(spec.proc_by_name("a"), Some(ProcName::new(0)));
        assert_eq!(spec.proc_by_name("b"), Some(ProcName::new(1)));
        assert_eq!(spec.proc_by_name("zzz"), None);
        assert_eq!(spec.cond_by_name("c0"), Some(CondId::new(0)));
        assert_eq!(spec.proc_role(ProcName::new(1)), ProcRole::Send);
        assert_eq!(spec.cond_count(), 1);
    }

    #[test]
    fn bounded_buffer_canonical_shape() {
        let bb = MonitorSpec::bounded_buffer("buf", 4);
        assert_eq!(bb.spec.class, MonitorClass::CommunicationCoordinator);
        assert_eq!(bb.spec.capacity, Some(4));
        assert_eq!(bb.spec.proc_role(bb.send), ProcRole::Send);
        assert_eq!(bb.spec.proc_role(bb.receive), ProcRole::Receive);
        assert_eq!(bb.spec.cond_role(bb.full_cond), CondRole::BufferFull);
        assert_eq!(bb.spec.cond_role(bb.empty_cond), CondRole::BufferEmpty);
    }

    #[test]
    fn allocator_has_default_call_order() {
        let al = MonitorSpec::allocator("printer", 1);
        assert_eq!(al.spec.class, MonitorClass::ResourceAllocator);
        assert!(al.spec.call_order.is_some());
        assert_eq!(al.spec.proc_role(al.request), ProcRole::Request);
        assert_eq!(al.spec.proc_role(al.release), ProcRole::Release);
    }

    #[test]
    fn operation_manager_is_minimal() {
        let m = MonitorSpec::operation_manager("shared");
        assert_eq!(m.spec.class, MonitorClass::OperationManager);
        assert_eq!(m.spec.cond_count(), 0);
        assert_eq!(m.spec.capacity, None);
    }

    #[test]
    fn unknown_indices_degrade_gracefully() {
        let m = MonitorSpec::operation_manager("shared");
        assert_eq!(m.spec.proc_role(ProcName::new(99)), ProcRole::Plain);
        assert_eq!(m.spec.cond_role(CondId::new(99)), CondRole::Plain);
        assert!(m.spec.proc_display(ProcName::new(99)).contains("unknown"));
        assert!(m.spec.cond_display(CondId::new(99)).contains("unknown"));
    }

    #[test]
    fn builder_rejects_duplicate_procedure_names() {
        // Regression: the builder used to accept duplicate names
        // silently, making name-based ProcName resolution ambiguous.
        let report = MonitorSpec::builder("m", MonitorClass::OperationManager)
            .procedure("op", ProcRole::Plain)
            .procedure("op", ProcRole::Send)
            .try_build()
            .expect_err("duplicate procedure names must be rejected");
        assert!(report.diagnostics.iter().any(|d| d.code == analyze::DiagCode::DuplicateProc));
    }

    #[test]
    #[should_panic(expected = "RML002")]
    fn build_panics_on_duplicate_condition_names() {
        let _ = MonitorSpec::builder("m", MonitorClass::OperationManager)
            .procedure("op", ProcRole::Plain)
            .condition("c", CondRole::Plain)
            .condition("c", CondRole::Plain)
            .build();
    }

    #[test]
    fn try_build_accepts_well_formed_specs() {
        let spec = MonitorSpec::builder("m", MonitorClass::OperationManager)
            .procedure("op", ProcRole::Plain)
            .try_build()
            .expect("unique names build fine");
        assert_eq!(spec.procedures.len(), 1);
    }

    #[test]
    fn display_of_class_and_roles() {
        assert_eq!(MonitorClass::CommunicationCoordinator.to_string(), "communication-coordinator");
        assert_eq!(ProcRole::Request.to_string(), "request");
        assert_eq!(CondRole::BufferEmpty.to_string(), "buffer-empty");
    }
}
