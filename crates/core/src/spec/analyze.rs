//! Static analysis of monitor specifications — the `speclint` pass.
//!
//! The augmented monitor construct (§3–§4 of the paper) makes the
//! user-declared spec — class, procedure/condition roles, `Rmax`, and
//! the path-expression call order — the *sole* static input to
//! detection. A malformed declaration therefore yields garbage verdicts
//! silently: an allocator whose path never releases, an assertion that
//! can never hold against the declared capacity, a path naming a
//! procedure that does not exist. This module checks a
//! [`MonitorSpec`] (and whole fleets of them)
//! *before* any instrumentation runs, in the spirit of specification
//! languages (CSP_E) and monitor-description optimizers (detectEr) that
//! lean on static analysis of the monitor description to make runtime
//! verdicts trustworthy.
//!
//! Every finding is a coded, severity-ranked [`Diagnostic`]
//! (`RML001`–`RML043`, see `docs/DIAGNOSTICS.md` for the full
//! catalogue): [`Severity::Error`] means detection over this spec is
//! meaningless or inevitably violating, [`Severity::Warn`] means a
//! likely declaration mistake, [`Severity::Lint`] is a style/coverage
//! nudge. [`analyze`] checks one spec; [`analyze_fleet`] adds the
//! cross-monitor checks a `DetectionService` namespace needs (name
//! collisions, paired-coordinator capacity drift).
//!
//! The Error level gates construction in two places: the
//! [`monitor_spec!`](crate::monitor_spec) macro (via
//! [`build_checked`](super::build_checked)) and
//! [`DetectorConfig::strict_specs`](crate::DetectorConfig) at detector
//! registration.

use crate::assertion::StateAssertion;
use crate::path::{CompiledPath, Node, PathExpr};
use crate::spec::{CondRole, MonitorClass, MonitorSpec, ProcRole};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// How bad a diagnostic is. Ordered: `Lint < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Style / coverage nudge; detection still works as declared.
    Lint,
    /// Likely declaration mistake; detection runs but may be blind or
    /// noisy in the flagged respect.
    Warn,
    /// The spec is self-contradictory or guarantees wrong verdicts;
    /// strict gates reject it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Lint => "lint",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

macro_rules! diag_codes {
    ($( $variant:ident = ($code:literal, $sev:ident, $title:literal), )+) => {
        /// Machine-readable diagnostic codes, `RMLxxx`. Severity and a
        /// one-line title are fixed per code; `docs/DIAGNOSTICS.md`
        /// catalogues rationale, examples and fixes.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[allow(missing_docs)] // the titles below are the docs
        pub enum DiagCode {
            $( #[doc = $title] $variant, )+
        }

        impl DiagCode {
            /// The `RMLxxx` code string.
            pub fn as_str(self) -> &'static str {
                match self { $( DiagCode::$variant => $code, )+ }
            }

            /// The fixed severity of this code.
            pub fn severity(self) -> Severity {
                match self { $( DiagCode::$variant => Severity::$sev, )+ }
            }

            /// One-line description of what the code flags.
            pub fn title(self) -> &'static str {
                match self { $( DiagCode::$variant => $title, )+ }
            }

            /// Every defined code, in catalogue order.
            pub fn all() -> &'static [DiagCode] {
                &[ $( DiagCode::$variant, )+ ]
            }
        }
    };
}

diag_codes! {
    DuplicateProc = ("RML001", Error, "duplicate procedure name"),
    DuplicateCond = ("RML002", Error, "duplicate condition name"),
    PathUnknownProc = ("RML010", Error, "call order names an undeclared procedure"),
    PathUnreachableProc = ("RML011", Warn, "declared procedure is unreachable in the call order"),
    PathTrapState = ("RML012", Error, "call order has trap states with no route to completion"),
    PathUnreleasedCompletion =
        ("RML013", Warn, "call order admits a completed sequence holding unreleased rights"),
    PathReleaseBeforeRequest =
        ("RML014", Warn, "call order admits a release before any matching request"),
    PathDuplicateAlt = ("RML015", Lint, "call order has redundant duplicate alternatives"),
    PathSyntax = ("RML016", Error, "call order does not parse"),
    CoordinatorRoles = ("RML020", Error, "communication coordinator lacks Send/Receive roles"),
    CoordinatorCapacity = ("RML021", Error, "communication coordinator has no usable capacity"),
    AllocatorRoles = ("RML022", Warn, "resource allocator has unbalanced Request/Release roles"),
    AllocatorBufferCond = ("RML023", Warn, "resource allocator declares a buffer condition role"),
    AllocatorNoCapacity =
        ("RML024", Lint, "allocator waits on unit availability without a declared capacity"),
    ManagerMachinery =
        ("RML025", Lint, "operation manager declares coordinator/allocator machinery"),
    CoordinatorNoWaitConds =
        ("RML026", Lint, "communication coordinator declares no buffer wait conditions"),
    AssertUnsatisfiable = ("RML030", Error, "assertion can never hold against the declared Rmax"),
    AssertVacuous = ("RML031", Lint, "assertion is implied by the declared Rmax"),
    AssertUnknownCond = ("RML032", Error, "assertion references an undeclared condition"),
    AssertNoCounter =
        ("RML033", Warn, "resource-counter assertion on a monitor without a capacity"),
    FleetNameCollision =
        ("RML040", Error, "fleet name bound to structurally different specs"),
    FleetCapacityMismatch = ("RML041", Warn, "paired coordinator specs disagree on capacity"),
    FleetUnresolved = ("RML042", Warn, "registered monitor name resolves to no known spec"),
    FleetDuplicateRegistration =
        ("RML043", Lint, "same monitor name registered more than once in one epoch"),
}

/// One analyzer finding: a code (which fixes the severity), the monitor
/// it is about, a human message, and machine-readable key/value
/// context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The `RMLxxx` code.
    pub code: DiagCode,
    /// Name of the monitor the finding is about (fleet-level findings
    /// use the colliding name).
    pub monitor: String,
    /// Human-readable description of this particular finding.
    pub message: String,
    /// Machine-readable context pairs, e.g. `("procedure", "release")`.
    pub context: Vec<(String, String)>,
}

impl Diagnostic {
    fn new(code: DiagCode, monitor: &str, message: String) -> Self {
        Diagnostic { code, monitor: monitor.to_string(), message, context: Vec::new() }
    }

    fn with(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.context.push((key.to_string(), value.to_string()));
        self
    }

    /// The severity of this finding (fixed by its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}] {}",
            self.code.as_str(),
            self.severity(),
            self.monitor,
            self.message
        )?;
        for (k, v) in &self.context {
            write!(f, " ({k}={v})")?;
        }
        Ok(())
    }
}

/// The outcome of a lint pass: every diagnostic, severity-ranked
/// (errors first, then warns, then lints — stable within a severity).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// The findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    fn from(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity()));
        LintReport { diagnostics }
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any Error-level finding is present (strict gates reject).
    pub fn has_errors(&self) -> bool {
        self.worst() == Some(Severity::Error)
    }

    /// The most severe finding's severity, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity()).max()
    }

    /// Findings of exactly the given severity.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity() == severity)
    }

    /// Merges another report into this one, keeping the severity order.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        self.diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity()));
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "spec lint: clean");
        }
        writeln!(f, "spec lint: {} finding(s)", self.diagnostics.len())?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Runs every single-spec check over one declaration.
///
/// # Examples
///
/// ```
/// use rmon_core::{analyze, MonitorSpec};
///
/// let good = MonitorSpec::allocator("printer", 1);
/// assert!(analyze(&good.spec).is_clean());
/// ```
pub fn analyze(spec: &MonitorSpec) -> LintReport {
    let mut out = Vec::new();
    check_duplicates(spec, &mut out);
    check_class_roles(spec, &mut out);
    check_assertions(spec, &mut out);
    check_call_order(spec, &mut out);
    LintReport::from(out)
}

// ---------------------------------------------------------------------
// Duplicates (RML001/002)
// ---------------------------------------------------------------------

/// Just the duplicate-name checks, for
/// [`MonitorSpecBuilder::try_build`](super::MonitorSpecBuilder::try_build).
pub(crate) fn duplicate_name_report(spec: &MonitorSpec) -> LintReport {
    let mut out = Vec::new();
    check_duplicates(spec, &mut out);
    LintReport::from(out)
}

fn check_duplicates(spec: &MonitorSpec, out: &mut Vec<Diagnostic>) {
    let mut seen: HashSet<&str> = HashSet::new();
    for p in &spec.procedures {
        if !seen.insert(&p.name) {
            out.push(
                Diagnostic::new(
                    DiagCode::DuplicateProc,
                    &spec.name,
                    format!(
                        "procedure {:?} is declared more than once; \
                         name-based resolution (call orders, replay) is ambiguous",
                        p.name
                    ),
                )
                .with("procedure", &p.name),
            );
        }
    }
    let mut seen: HashSet<&str> = HashSet::new();
    for c in &spec.conditions {
        if !seen.insert(&c.name) {
            out.push(
                Diagnostic::new(
                    DiagCode::DuplicateCond,
                    &spec.name,
                    format!("condition {:?} is declared more than once", c.name),
                )
                .with("condition", &c.name),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Class / role consistency (RML02x)
// ---------------------------------------------------------------------

fn check_class_roles(spec: &MonitorSpec, out: &mut Vec<Diagnostic>) {
    let role = |r: ProcRole| spec.procedures.iter().filter(|p| p.role == r).count();
    let cond = |r: CondRole| spec.conditions.iter().filter(|c| c.role == r).count();
    match spec.class {
        MonitorClass::CommunicationCoordinator => {
            if role(ProcRole::Send) == 0 || role(ProcRole::Receive) == 0 {
                out.push(
                    Diagnostic::new(
                        DiagCode::CoordinatorRoles,
                        &spec.name,
                        format!(
                            "a communication coordinator needs both a Send and a Receive \
                             procedure for the ST-7 integrity checks; found {} Send, {} Receive",
                            role(ProcRole::Send),
                            role(ProcRole::Receive)
                        ),
                    )
                    .with("send", role(ProcRole::Send))
                    .with("receive", role(ProcRole::Receive)),
                );
            }
            match spec.capacity {
                None | Some(0) => out.push(
                    Diagnostic::new(
                        DiagCode::CoordinatorCapacity,
                        &spec.name,
                        format!(
                            "buffer capacity is {}; every Send would overflow and the \
                             R#-conservation checks (ST-7a/b) are meaningless",
                            match spec.capacity {
                                None => "undeclared".to_string(),
                                Some(n) => n.to_string(),
                            }
                        ),
                    )
                    .with("capacity", format!("{:?}", spec.capacity)),
                ),
                Some(_) => {}
            }
            if cond(CondRole::BufferFull) == 0 && cond(CondRole::BufferEmpty) == 0 {
                out.push(Diagnostic::new(
                    DiagCode::CoordinatorNoWaitConds,
                    &spec.name,
                    "no BufferFull/BufferEmpty condition declared: the blocked-sender/receiver \
                     checks (ST-7c/d) cannot apply"
                        .to_string(),
                ));
            }
        }
        MonitorClass::ResourceAllocator => {
            let (rq, rl) = (role(ProcRole::Request), role(ProcRole::Release));
            if (rq == 0) != (rl == 0) || rq == 0 {
                out.push(
                    Diagnostic::new(
                        DiagCode::AllocatorRoles,
                        &spec.name,
                        format!(
                            "an allocator should declare both Request and Release procedures \
                             (ST-8 tracks the Request-List); found {rq} Request, {rl} Release"
                        ),
                    )
                    .with("request", rq)
                    .with("release", rl),
                );
            }
            let buffers = cond(CondRole::BufferFull) + cond(CondRole::BufferEmpty);
            if buffers > 0 {
                out.push(
                    Diagnostic::new(
                        DiagCode::AllocatorBufferCond,
                        &spec.name,
                        "BufferFull/BufferEmpty condition roles are coordinator machinery; \
                         on an allocator the ST-7c/d checks they enable never apply"
                            .to_string(),
                    )
                    .with("buffer_conds", buffers),
                );
            }
            if spec.capacity.is_none() && cond(CondRole::UnitAvailable) > 0 {
                out.push(Diagnostic::new(
                    DiagCode::AllocatorNoCapacity,
                    &spec.name,
                    "a UnitAvailable condition is declared but no capacity: the R# counter the \
                     availability checks compare against does not exist"
                        .to_string(),
                ));
            }
        }
        MonitorClass::OperationManager => {
            let machinery = role(ProcRole::Send)
                + role(ProcRole::Receive)
                + role(ProcRole::Request)
                + role(ProcRole::Release);
            if machinery > 0 || spec.capacity.is_some() {
                out.push(
                    Diagnostic::new(
                        DiagCode::ManagerMachinery,
                        &spec.name,
                        format!(
                            "operation managers are checked by the general rules only \
                             (ST-1..6); {machinery} coordinator/allocator role(s) and \
                             capacity {:?} suggest the class is wrong",
                            spec.capacity
                        ),
                    )
                    .with("special_roles", machinery),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Assertion satisfiability (RML03x)
// ---------------------------------------------------------------------

fn check_assertions(spec: &MonitorSpec, out: &mut Vec<Diagnostic>) {
    for a in &spec.assertions {
        match *a {
            StateAssertion::AvailableAtLeast(n) => match spec.capacity {
                Some(rmax) if n > rmax => out.push(
                    Diagnostic::new(
                        DiagCode::AssertUnsatisfiable,
                        &spec.name,
                        format!(
                            "assertion {a} can never pass a checkpoint: R# starts at \
                             Rmax = {rmax} and ST-7a forbids exceeding it"
                        ),
                    )
                    .with("assertion", a)
                    .with("rmax", rmax),
                ),
                Some(_) => {}
                None => out.push(no_counter(spec, a)),
            },
            StateAssertion::AvailableAtMost(n) => match spec.capacity {
                Some(rmax) if n >= rmax => out.push(
                    Diagnostic::new(
                        DiagCode::AssertVacuous,
                        &spec.name,
                        format!(
                            "assertion {a} is implied by Rmax = {rmax}: the built-in ST-7a \
                             check already reports any state with R# > Rmax"
                        ),
                    )
                    .with("assertion", a)
                    .with("rmax", rmax),
                ),
                Some(_) => {}
                None => out.push(no_counter(spec, a)),
            },
            StateAssertion::CondQueueAtMost { cond, .. } => {
                if cond.as_usize() >= spec.conditions.len() {
                    out.push(
                        Diagnostic::new(
                            DiagCode::AssertUnknownCond,
                            &spec.name,
                            format!(
                                "assertion {a} references condition index {} but only {} \
                                 condition(s) are declared",
                                cond.as_usize(),
                                spec.conditions.len()
                            ),
                        )
                        .with("cond_index", cond.as_usize()),
                    );
                }
            }
            StateAssertion::EntryQueueAtMost(_)
            | StateAssertion::PopulationAtMost(_)
            | StateAssertion::ExcludesPid(_) => {}
        }
    }
}

fn no_counter(spec: &MonitorSpec, a: &StateAssertion) -> Diagnostic {
    Diagnostic::new(
        DiagCode::AssertNoCounter,
        &spec.name,
        format!(
            "assertion {a} is over the resource counter R#, but the spec declares no \
             capacity — the assertion is never evaluated"
        ),
    )
    .with("assertion", a)
}

// ---------------------------------------------------------------------
// Call-order / NFA analysis (RML01x)
// ---------------------------------------------------------------------

fn check_call_order(spec: &MonitorSpec, out: &mut Vec<Diagnostic>) {
    let Some(order) = &spec.call_order else { return };

    // RML010: names in the path that are not declared procedures.
    let mut unknown = false;
    for name in order.names() {
        if spec.proc_by_name(name).is_none() {
            unknown = true;
            out.push(
                Diagnostic::new(
                    DiagCode::PathUnknownProc,
                    &spec.name,
                    format!(
                        "call order {:?} names {name:?}, which is not a declared procedure; \
                         the order can never be tracked",
                        order.source()
                    ),
                )
                .with("procedure", name),
            );
        }
    }

    // RML011: declared procedures the order never allows — every call
    // to one is an immediate ST-8 order violation.
    let in_path: HashSet<&str> = order.names().into_iter().collect();
    for p in &spec.procedures {
        if !in_path.contains(p.name.as_str()) {
            out.push(
                Diagnostic::new(
                    DiagCode::PathUnreachableProc,
                    &spec.name,
                    format!(
                        "procedure {:?} is declared but unreachable in the call order: \
                         every call to it violates the declared order",
                        p.name
                    ),
                )
                .with("procedure", &p.name),
            );
        }
    }

    // RML015: structurally identical alternative branches.
    check_duplicate_alts(spec, order, out);

    // Role-balance analysis over the AST (exact for max/min because
    // alternation choices are independent): RML013/RML014.
    check_balance(spec, order, out);

    // NFA-level trap-state analysis (RML012). Skipped if the path does
    // not compile — RML010 already covers that.
    if !unknown {
        if let Ok(compiled) = order.compile(|n| spec.proc_by_name(n)) {
            check_trap_states(spec, &compiled, out);
        }
    }
}

fn check_duplicate_alts(spec: &MonitorSpec, order: &PathExpr, out: &mut Vec<Diagnostic>) {
    fn walk(node: &Node, spec: &MonitorSpec, order: &PathExpr, out: &mut Vec<Diagnostic>) {
        match node {
            Node::Alt(v) => {
                for (i, a) in v.iter().enumerate() {
                    if v[..i].contains(a) {
                        out.push(
                            Diagnostic::new(
                                DiagCode::PathDuplicateAlt,
                                &spec.name,
                                format!(
                                    "call order {:?} repeats an identical alternative branch; \
                                     the duplicate adds states but no behaviour",
                                    order.source()
                                ),
                            )
                            .with("branch", i),
                        );
                    }
                }
                v.iter().for_each(|c| walk(c, spec, order, out));
            }
            Node::Seq(v) => v.iter().for_each(|c| walk(c, spec, order, out)),
            Node::Star(c) | Node::Plus(c) | Node::Opt(c) => walk(c, spec, order, out),
            Node::Name(_) => {}
        }
    }
    walk(order.ast(), spec, order, out);
}

/// Request/Release balance envelope of a path sub-expression:
/// the achievable range of the *end* balance over complete matches and
/// the achievable minimum over all *prefixes* of complete matches.
/// `i64::MIN`/`i64::MAX` stand for −∞/+∞ (a pumpable loop).
#[derive(Clone, Copy)]
struct Balance {
    end_lo: i64,
    end_hi: i64,
    pre_lo: i64,
}

const NEG_INF: i64 = i64::MIN;
const POS_INF: i64 = i64::MAX;

fn sat_add(a: i64, b: i64) -> i64 {
    if a == NEG_INF || b == NEG_INF {
        NEG_INF
    } else if a == POS_INF || b == POS_INF {
        POS_INF
    } else {
        a + b
    }
}

fn balance_of(node: &Node, delta: &impl Fn(&str) -> i64) -> Balance {
    match node {
        Node::Name(n) => {
            let d = delta(n);
            Balance { end_lo: d, end_hi: d, pre_lo: d.min(0) }
        }
        Node::Seq(v) => {
            let mut acc = Balance { end_lo: 0, end_hi: 0, pre_lo: 0 };
            for child in v {
                let c = balance_of(child, delta);
                acc = Balance {
                    pre_lo: acc.pre_lo.min(sat_add(acc.end_lo, c.pre_lo)),
                    end_lo: sat_add(acc.end_lo, c.end_lo),
                    end_hi: sat_add(acc.end_hi, c.end_hi),
                };
            }
            acc
        }
        Node::Alt(v) => {
            let mut it = v.iter().map(|c| balance_of(c, delta));
            let first = it.next().expect("Alt has at least one child");
            it.fold(first, |a, b| Balance {
                end_lo: a.end_lo.min(b.end_lo),
                end_hi: a.end_hi.max(b.end_hi),
                pre_lo: a.pre_lo.min(b.pre_lo),
            })
        }
        Node::Star(c) | Node::Plus(c) => {
            let b = balance_of(c, delta);
            let once = matches!(node, Node::Plus(_));
            Balance {
                end_lo: if b.end_lo < 0 {
                    NEG_INF
                } else if once {
                    b.end_lo
                } else {
                    0
                },
                end_hi: if b.end_hi > 0 {
                    POS_INF
                } else if once {
                    b.end_hi
                } else {
                    0
                },
                pre_lo: if b.end_lo < 0 { NEG_INF } else { b.pre_lo.min(0) },
            }
        }
        Node::Opt(c) => {
            let b = balance_of(c, delta);
            Balance { end_lo: b.end_lo.min(0), end_hi: b.end_hi.max(0), pre_lo: b.pre_lo.min(0) }
        }
    }
}

fn check_balance(spec: &MonitorSpec, order: &PathExpr, out: &mut Vec<Diagnostic>) {
    let has_rights =
        spec.procedures.iter().any(|p| matches!(p.role, ProcRole::Request | ProcRole::Release));
    if !has_rights {
        return;
    }
    let delta = |name: &str| -> i64 {
        match spec.proc_by_name(name).map(|p| spec.proc_role(p)) {
            Some(ProcRole::Request) => 1,
            Some(ProcRole::Release) => -1,
            _ => 0,
        }
    };
    let b = balance_of(order.ast(), &delta);
    if b.end_hi > 0 {
        out.push(
            Diagnostic::new(
                DiagCode::PathUnreleasedCompletion,
                &spec.name,
                format!(
                    "call order {:?} accepts a completed call sequence with {} more Request \
                     than Release calls: a process can terminate holding access rights \
                     without ever violating the declared order",
                    order.source(),
                    if b.end_hi == POS_INF {
                        "unboundedly".to_string()
                    } else {
                        b.end_hi.to_string()
                    }
                ),
            )
            .with(
                "max_unreleased",
                if b.end_hi == POS_INF { "inf".into() } else { b.end_hi.to_string() },
            ),
        );
    }
    if b.pre_lo < 0 {
        out.push(
            Diagnostic::new(
                DiagCode::PathReleaseBeforeRequest,
                &spec.name,
                format!(
                    "call order {:?} permits a Release before any matching Request: the \
                     declared order and the ST-8 Request-List checks contradict each other",
                    order.source()
                ),
            )
            .with(
                "min_prefix_balance",
                if b.pre_lo == NEG_INF { "-inf".into() } else { b.pre_lo.to_string() },
            ),
        );
    }
}

/// RML012: reachable NFA states from which the accept state is
/// unreachable. A prefix that strands the whole active-state set in
/// such states can never complete — an inevitable ST-8 violation
/// baked into the spec. The Thompson construction used by
/// [`PathExpr::compile`] is trim (every state lies on a start→accept
/// path), so this is a defensive check for any future automaton source;
/// it is exercised directly in unit tests.
pub(crate) fn check_trap_states(
    spec: &MonitorSpec,
    compiled: &CompiledPath,
    out: &mut Vec<Diagnostic>,
) {
    let n = compiled.state_count();
    // Forward reachability from start over ε and symbol edges.
    let mut reachable = vec![false; n];
    let mut stack = vec![compiled.start_state()];
    reachable[compiled.start_state()] = true;
    while let Some(s) = stack.pop() {
        let next = compiled
            .eps_edges(s)
            .iter()
            .copied()
            .chain(compiled.step_edges(s).iter().map(|&(_, t)| t));
        for t in next {
            if !reachable[t] {
                reachable[t] = true;
                stack.push(t);
            }
        }
    }
    // Backward reachability from accept.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in 0..n {
        for &t in compiled.eps_edges(s) {
            rev[t].push(s);
        }
        for &(_, t) in compiled.step_edges(s) {
            rev[t].push(s);
        }
    }
    let mut completes = vec![false; n];
    let mut stack = vec![compiled.accept_state()];
    completes[compiled.accept_state()] = true;
    while let Some(s) = stack.pop() {
        for &p in &rev[s] {
            if !completes[p] {
                completes[p] = true;
                stack.push(p);
            }
        }
    }
    let traps: Vec<usize> = (0..n).filter(|&s| reachable[s] && !completes[s]).collect();
    if !traps.is_empty() {
        out.push(
            Diagnostic::new(
                DiagCode::PathTrapState,
                &spec.name,
                format!(
                    "{} reachable automaton state(s) have no route to completion: once a \
                     process's calls strand it there, it can never satisfy the declared \
                     order again",
                    traps.len()
                ),
            )
            .with("states", traps.iter().map(|s| s.to_string()).collect::<Vec<_>>().join("+")),
        );
    }
}

// ---------------------------------------------------------------------
// Fleet-level checks (RML04x)
// ---------------------------------------------------------------------

/// One monitor registration as a fleet sees it: the name it resolves by
/// and the spec that name resolved to (`None` when resolution failed).
pub type FleetEntry = (String, Option<Arc<MonitorSpec>>);

/// Cross-monitor checks over one registration namespace (a
/// `DetectionService` fleet, one spec file, or one journal epoch):
///
/// * **RML040** — one name bound to structurally different specs:
///   name-based resolution (journal replay, service renaming) would
///   silently check the wrong declaration for one of them.
/// * **RML041** — the special case of paired communication
///   coordinators that differ *only* in capacity (config drift between
///   the two ends of a channel).
/// * **RML042** — names that resolved to no spec: those monitors are
///   not checked at all.
/// * **RML043** — the same name registered more than once with an
///   identical spec (legal, but worth an eyebrow in one namespace).
pub fn analyze_fleet<I>(entries: I) -> LintReport
where
    I: IntoIterator<Item = FleetEntry>,
{
    let mut out = Vec::new();
    let mut by_name: BTreeMap<String, Vec<Option<Arc<MonitorSpec>>>> = BTreeMap::new();
    for (name, spec) in entries {
        by_name.entry(name).or_default().push(spec);
    }
    for (name, specs) in &by_name {
        let resolved: Vec<&Arc<MonitorSpec>> = specs.iter().flatten().collect();
        let unresolved = specs.len() - resolved.len();
        if unresolved > 0 {
            out.push(
                Diagnostic::new(
                    DiagCode::FleetUnresolved,
                    name,
                    format!(
                        "{unresolved} registration(s) of {name:?} resolve to no known spec; \
                         those monitors are not checked"
                    ),
                )
                .with("unresolved", unresolved),
            );
        }
        if let Some(first) = resolved.first() {
            for other in &resolved[1..] {
                if specs_equivalent(first, other) {
                    continue;
                }
                if capacity_only_mismatch(first, other) {
                    out.push(
                        Diagnostic::new(
                            DiagCode::FleetCapacityMismatch,
                            name,
                            format!(
                                "paired coordinator specs for {name:?} declare different \
                                 capacities ({:?} vs {:?}): the two ends of the channel \
                                 disagree on Rmax and one side's ST-7 verdicts are wrong",
                                first.capacity, other.capacity
                            ),
                        )
                        .with("capacity_a", format!("{:?}", first.capacity))
                        .with("capacity_b", format!("{:?}", other.capacity)),
                    );
                } else {
                    out.push(Diagnostic::new(
                        DiagCode::FleetNameCollision,
                        name,
                        format!(
                            "name {name:?} is bound to structurally different specs; \
                             name-based resolution (replay, service renaming) will check \
                             the wrong declaration for one of them"
                        ),
                    ));
                }
            }
            if resolved.len() > 1
                && resolved[1..].iter().all(|other| specs_equivalent(first, other))
            {
                out.push(
                    Diagnostic::new(
                        DiagCode::FleetDuplicateRegistration,
                        name,
                        format!(
                            "{} registrations of {name:?} share one namespace; replay \
                             resolves them to the same declaration (fine if intended)",
                            resolved.len()
                        ),
                    )
                    .with("count", resolved.len()),
                );
            }
        }
    }
    LintReport::from(out)
}

fn specs_equivalent(a: &MonitorSpec, b: &MonitorSpec) -> bool {
    a.class == b.class
        && a.capacity == b.capacity
        && a.procedures == b.procedures
        && a.conditions == b.conditions
        && a.call_order == b.call_order
}

fn capacity_only_mismatch(a: &MonitorSpec, b: &MonitorSpec) -> bool {
    a.class == MonitorClass::CommunicationCoordinator
        && b.class == MonitorClass::CommunicationCoordinator
        && a.capacity != b.capacity
        && a.procedures == b.procedures
        && a.conditions == b.conditions
        && a.call_order == b.call_order
}

/// Convenience: per-spec [`analyze`] over every resolved entry plus the
/// fleet-level checks, in one report. What `rmon-lint` runs over a spec
/// file and what [`DetectionService::lint_fleet`] runs over a live
/// fleet.
///
/// [`DetectionService::lint_fleet`]: https://docs.rs/rmon-net
pub fn analyze_all<I>(entries: I) -> LintReport
where
    I: IntoIterator<Item = FleetEntry>,
{
    let entries: Vec<FleetEntry> = entries.into_iter().collect();
    let mut seen: HashMap<*const MonitorSpec, ()> = HashMap::new();
    let mut report = LintReport::default();
    for (_, spec) in &entries {
        if let Some(spec) = spec {
            // Lint each distinct declaration once even when many
            // registrations share one `Arc`.
            if seen.insert(Arc::as_ptr(spec), ()).is_none() {
                report.merge(analyze(spec));
            }
        }
    }
    report.merge(analyze_fleet(entries));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::StateAssertion;
    use crate::ids::{CondId, ProcName};
    use crate::spec::{CondSpec, ProcedureSpec};

    fn codes(report: &LintReport) -> Vec<DiagCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn raw_allocator(order: &str) -> MonitorSpec {
        MonitorSpec {
            name: "al".into(),
            class: MonitorClass::ResourceAllocator,
            procedures: vec![
                ProcedureSpec { name: "request".into(), role: ProcRole::Request },
                ProcedureSpec { name: "release".into(), role: ProcRole::Release },
            ],
            conditions: vec![CondSpec { name: "unit".into(), role: CondRole::UnitAvailable }],
            capacity: Some(1),
            call_order: Some(PathExpr::parse(order).unwrap()),
            assertions: Vec::new(),
        }
    }

    #[test]
    fn canonical_specs_are_clean() {
        assert!(analyze(&MonitorSpec::bounded_buffer("b", 4).spec).is_clean());
        assert!(analyze(&MonitorSpec::allocator("a", 2).spec).is_clean());
        assert!(analyze(&MonitorSpec::operation_manager("m").spec).is_clean());
    }

    #[test]
    fn duplicate_procedure_and_condition_names() {
        let mut spec = MonitorSpec::operation_manager("m").spec;
        spec.procedures.push(ProcedureSpec { name: "operate".into(), role: ProcRole::Plain });
        spec.conditions.push(CondSpec { name: "c".into(), role: CondRole::Plain });
        spec.conditions.push(CondSpec { name: "c".into(), role: CondRole::Plain });
        let report = analyze(&spec);
        assert!(codes(&report).contains(&DiagCode::DuplicateProc));
        assert!(codes(&report).contains(&DiagCode::DuplicateCond));
        assert!(report.has_errors());
    }

    #[test]
    fn coordinator_missing_roles_and_capacity() {
        let spec = MonitorSpec {
            name: "c".into(),
            class: MonitorClass::CommunicationCoordinator,
            procedures: vec![ProcedureSpec { name: "send".into(), role: ProcRole::Send }],
            conditions: Vec::new(),
            capacity: Some(0),
            call_order: None,
            assertions: Vec::new(),
        };
        let report = analyze(&spec);
        assert!(codes(&report).contains(&DiagCode::CoordinatorRoles));
        assert!(codes(&report).contains(&DiagCode::CoordinatorCapacity));
        assert!(codes(&report).contains(&DiagCode::CoordinatorNoWaitConds));
    }

    #[test]
    fn allocator_role_and_condition_checks() {
        let mut spec = raw_allocator("request*");
        spec.procedures.remove(1); // drop release
        spec.conditions[0].role = CondRole::BufferFull;
        let report = analyze(&spec);
        assert!(codes(&report).contains(&DiagCode::AllocatorRoles));
        assert!(codes(&report).contains(&DiagCode::AllocatorBufferCond));
    }

    #[test]
    fn allocator_unit_cond_without_capacity() {
        let mut spec = raw_allocator("(request ; release)*");
        spec.capacity = None;
        let report = analyze(&spec);
        assert!(codes(&report).contains(&DiagCode::AllocatorNoCapacity));
        assert!(!report.has_errors());
    }

    #[test]
    fn manager_with_machinery_is_linted() {
        let mut spec = MonitorSpec::operation_manager("m").spec;
        spec.capacity = Some(3);
        let report = analyze(&spec);
        assert_eq!(codes(&report), vec![DiagCode::ManagerMachinery]);
        assert_eq!(report.worst(), Some(Severity::Lint));
    }

    #[test]
    fn assertion_satisfiability_against_rmax() {
        let mut spec = MonitorSpec::allocator("a", 2).spec;
        spec.assertions.push(StateAssertion::AvailableAtLeast(3)); // > Rmax: impossible
        spec.assertions.push(StateAssertion::AvailableAtLeast(2)); // == Rmax: fine
        spec.assertions.push(StateAssertion::AvailableAtMost(2)); // implied by ST-7a
        spec.assertions.push(StateAssertion::AvailableAtMost(1)); // meaningful reserve cap
        let report = analyze(&spec);
        assert_eq!(codes(&report), vec![DiagCode::AssertUnsatisfiable, DiagCode::AssertVacuous]);
    }

    #[test]
    fn assertion_on_unknown_condition_and_missing_counter() {
        let mut spec = MonitorSpec::operation_manager("m").spec;
        spec.assertions.push(StateAssertion::CondQueueAtMost { cond: CondId::new(5), at_most: 1 });
        spec.assertions.push(StateAssertion::AvailableAtLeast(1));
        let report = analyze(&spec);
        assert!(codes(&report).contains(&DiagCode::AssertUnknownCond));
        assert!(codes(&report).contains(&DiagCode::AssertNoCounter));
    }

    #[test]
    fn path_unknown_and_unreachable_procedures() {
        let mut spec = raw_allocator("(request ; free)*");
        spec.call_order = Some(PathExpr::parse("(request ; free)*").unwrap());
        let report = analyze(&spec);
        assert!(codes(&report).contains(&DiagCode::PathUnknownProc));
        // `release` is declared but never appears in the order.
        assert!(codes(&report).contains(&DiagCode::PathUnreachableProc));
    }

    #[test]
    fn path_unreleased_completion() {
        let spec = raw_allocator("request ; release? ");
        let report = analyze(&spec);
        assert!(codes(&report).contains(&DiagCode::PathUnreleasedCompletion), "{report}");
        // Balanced order: clean.
        assert!(analyze(&raw_allocator("(request ; release)*")).is_clean());
    }

    #[test]
    fn path_release_before_request() {
        let spec = raw_allocator("release ; request");
        let report = analyze(&spec);
        // Ends balanced (one release, one request) so RML013 stays
        // quiet; the inverted prefix is the finding.
        assert_eq!(codes(&report), vec![DiagCode::PathReleaseBeforeRequest], "{report}");
    }

    #[test]
    fn balance_interval_handles_loops_and_alternation() {
        // Pumpable surplus: (request)* can end +inf held.
        let r = analyze(&raw_allocator("request* ; release?"));
        assert!(codes(&r).contains(&DiagCode::PathUnreleasedCompletion));
        // Alternation where both branches balance: clean.
        let r = analyze(&raw_allocator(
            "((request ; release) | (request ; release ; request ; release))*",
        ));
        assert!(!codes(&r).contains(&DiagCode::PathDuplicateAlt), "{r}");
        assert!(!codes(&r).contains(&DiagCode::PathUnreleasedCompletion), "{r}");
    }

    #[test]
    fn duplicate_alternatives_are_linted() {
        let report = analyze(&raw_allocator("((request ; release) | (request ; release))*"));
        assert_eq!(codes(&report), vec![DiagCode::PathDuplicateAlt]);
    }

    #[test]
    fn trap_states_detected_on_hand_built_automaton() {
        // 0 --request--> 1 (accept), 0 --release--> 2 (trap: no way out).
        let rq = ProcName::new(0);
        let rl = ProcName::new(1);
        let nfa = CompiledPath::from_parts(
            vec![Vec::new(), Vec::new(), Vec::new()],
            vec![vec![(rq, 1), (rl, 2)], Vec::new(), Vec::new()],
            0,
            1,
        );
        let spec = raw_allocator("(request ; release)*");
        let mut out = Vec::new();
        check_trap_states(&spec, &nfa, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, DiagCode::PathTrapState);
        assert!(out[0].context.iter().any(|(k, v)| k == "states" && v == "2"));
    }

    #[test]
    fn parsed_expressions_are_trim() {
        // Thompson NFAs from the parser never have trap states; the
        // analyzer must stay silent on arbitrary parsed shapes.
        for src in ["a", "(a;b)*", "a+ ; (b | c)?", "((a;b)+ ; c)* | d"] {
            let spec = MonitorSpec {
                name: "t".into(),
                class: MonitorClass::OperationManager,
                procedures: ["a", "b", "c", "d"]
                    .iter()
                    .map(|n| ProcedureSpec { name: (*n).into(), role: ProcRole::Plain })
                    .collect(),
                conditions: Vec::new(),
                capacity: None,
                call_order: None,
                assertions: Vec::new(),
            };
            let compiled = PathExpr::parse(src).unwrap().compile(|n| spec.proc_by_name(n)).unwrap();
            let mut out = Vec::new();
            check_trap_states(&spec, &compiled, &mut out);
            assert!(out.is_empty(), "{src}: {out:?}");
        }
    }

    #[test]
    fn fleet_collision_capacity_and_duplicates() {
        let a = Arc::new(MonitorSpec::bounded_buffer("mailbox", 4).spec);
        let b = Arc::new(MonitorSpec::bounded_buffer("mailbox", 8).spec);
        let c = Arc::new(MonitorSpec::allocator("mailbox", 1).spec);
        // Capacity-only drift between paired coordinators.
        let r = analyze_fleet(vec![
            ("mailbox".to_string(), Some(Arc::clone(&a))),
            ("mailbox".to_string(), Some(Arc::clone(&b))),
        ]);
        assert_eq!(codes(&r), vec![DiagCode::FleetCapacityMismatch]);
        // Structurally different: collision.
        let r = analyze_fleet(vec![
            ("mailbox".to_string(), Some(Arc::clone(&a))),
            ("mailbox".to_string(), Some(c)),
        ]);
        assert_eq!(codes(&r), vec![DiagCode::FleetNameCollision]);
        // Identical duplicate: lint only.
        let r = analyze_fleet(vec![
            ("mailbox".to_string(), Some(Arc::clone(&a))),
            ("mailbox".to_string(), Some(a)),
        ]);
        assert_eq!(codes(&r), vec![DiagCode::FleetDuplicateRegistration]);
    }

    #[test]
    fn fleet_unresolved_names_are_flagged() {
        let r = analyze_fleet(vec![("ghost".to_string(), None)]);
        assert_eq!(codes(&r), vec![DiagCode::FleetUnresolved]);
        assert_eq!(r.worst(), Some(Severity::Warn));
    }

    #[test]
    fn analyze_all_merges_spec_and_fleet_findings() {
        let mut bad = MonitorSpec::bounded_buffer("b", 4).spec;
        bad.capacity = Some(0);
        let bad = Arc::new(bad);
        let r = analyze_all(vec![
            ("b".to_string(), Some(Arc::clone(&bad))),
            ("b".to_string(), Some(bad)),
        ]);
        assert!(codes(&r).contains(&DiagCode::CoordinatorCapacity));
        assert!(codes(&r).contains(&DiagCode::FleetDuplicateRegistration));
        // The shared Arc is linted once, not twice.
        assert_eq!(
            r.diagnostics.iter().filter(|d| d.code == DiagCode::CoordinatorCapacity).count(),
            1
        );
    }

    #[test]
    fn report_ordering_and_accessors() {
        let mut spec = MonitorSpec::operation_manager("m").spec;
        spec.capacity = Some(1); // lint
        spec.procedures.push(ProcedureSpec { name: "operate".into(), role: ProcRole::Plain }); // error
        let report = analyze(&spec);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].severity(), Severity::Error);
        assert_eq!(report.at(Severity::Lint).count(), 1);
        assert!(report.to_string().contains("RML001"));
    }

    #[test]
    fn code_table_is_consistent() {
        let mut seen = HashSet::new();
        for &code in DiagCode::all() {
            assert!(seen.insert(code.as_str()), "duplicate code {}", code.as_str());
            assert!(code.as_str().starts_with("RML"));
            assert!(!code.title().is_empty());
        }
        assert_eq!(Severity::Error.max(Severity::Lint), Severity::Error);
    }
}
